#include "engine/mock_llm.h"

#include <cctype>
#include <cstring>

#include "support/logging.h"

namespace xgr::engine {

namespace {
constexpr float kTargetBoost = 16.0f;
constexpr float kDerailBoost = 20.0f;  // beats the target when unmasked
}  // namespace

MockLlm::MockLlm(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                 Options options)
    : tokenizer_(std::move(tokenizer)),
      trie_(std::make_shared<tokenizer::TokenTrie>(*tokenizer_)),
      options_(options) {
  // Distractors: word-like tokens with a leading space — the "Sure, here is
  // the JSON..." failure mode. Deterministic scan, capped.
  Rng rng(options_.seed);
  for (std::int32_t id = 0; id < tokenizer_->VocabSize() &&
                            distractors_.size() < 64;
       ++id) {
    if (tokenizer_->IsSpecial(id)) continue;
    const std::string& bytes = tokenizer_->TokenBytes(id);
    if (bytes.size() >= 4 && bytes[0] == ' ' &&
        std::isalpha(static_cast<unsigned char>(bytes[1]))) {
      if (rng.NextBool(0.25)) distractors_.push_back(id);
    }
  }
  if (distractors_.empty()) distractors_.push_back(0);
  // Dense-path base noise: a deterministic sub-1.0 logit per token, so the
  // unboosted "long tail" has a total order (fused-kernel argmax stays
  // deterministic) while any boost >= 1 still dominates it.
  base_noise_.resize(static_cast<std::size_t>(tokenizer_->VocabSize()));
  Rng noise_rng(options_.seed ^ 0x9E3779B97F4A7C15ull);
  for (float& v : base_noise_) {
    v = static_cast<float>(noise_rng.NextDouble());
  }
  // Closing tokens (single-byte lookups through the trie).
  for (const char* closer :
       {"\"", "'", "}", "]", ")", ">", "<", "/", "=", ";", ":", "\n"}) {
    std::size_t length = 0;
    std::int32_t id = trie_->LongestMatch(std::string_view(closer).substr(0, 1), 0, &length);
    if (id >= 0) closers_.push_back(id);
  }
}

MockLlm::RequestScript MockLlm::MakeScript(const std::string& target,
                                           std::uint64_t request_seed) const {
  RequestScript script;
  script.target = target;
  script.rng = Rng(request_seed);
  return script;
}

SparseLogits MockLlm::ComputeLogits(RequestScript* script) const {
  SparseLogits logits;
  ComputeLogitsSparse(script, &logits);
  return logits;
}

void MockLlm::ComputeLogitsSparse(RequestScript* script,
                                  SparseLogits* out) const {
  out->boosted.clear();
  if (!script->diverged) {
    if (script->matched_bytes >= script->target.size()) {
      out->boosted.emplace_back(tokenizer_->EosId(), kTargetBoost);
      return;
    }
    std::size_t length = 0;
    std::int32_t next = trie_->LongestMatch(script->target, script->matched_bytes, &length);
    XGR_CHECK(next >= 0) << "target text not tokenizable";
    out->boosted.emplace_back(next, kTargetBoost);
    if (options_.derail_probability > 0.0 &&
        script->rng.NextBool(options_.derail_probability)) {
      std::int32_t distractor =
          distractors_[script->rng.NextBounded(distractors_.size())];
      out->boosted.emplace_back(distractor, kDerailBoost);
    }
    return;
  }
  // Derailed: ramble for a few prose tokens, then stop. Structural closers
  // get lower boosts: an unmasked model ignores them (invalid output), while
  // a masked model falls back to them once prose is blocked, closing the
  // structure and reaching a valid EOS.
  if (script->prose_emitted < options_.derail_length) {
    std::int32_t distractor =
        distractors_[script->rng.NextBounded(distractors_.size())];
    out->boosted.emplace_back(distractor, kTargetBoost);
  } else {
    out->boosted.emplace_back(tokenizer_->EosId(), kTargetBoost);
  }
  // Randomized per-step boosts: which closer the model "prefers" varies, so a
  // masked model escapes free-text positions instead of appending the same
  // always-legal character forever.
  for (std::int32_t closer : closers_) {
    out->boosted.emplace_back(
        closer, 9.0f + 4.0f * static_cast<float>(script->rng.NextDouble()));
  }
}

void MockLlm::ComputeLogitsDense(RequestScript* script, SparseLogits* scratch,
                                 float* row) const {
  ComputeLogitsSparse(script, scratch);
  std::memcpy(row, base_noise_.data(), base_noise_.size() * sizeof(float));
  for (const auto& [token, boost] : scratch->boosted) {
    if (token >= 0 &&
        static_cast<std::size_t>(token) < base_noise_.size()) {
      row[token] += boost;
    }
  }
}

std::int32_t MockLlm::DraftTokens(const RequestScript& script,
                                  std::int32_t max_tokens, double noise,
                                  Rng* rng, std::int32_t* out,
                                  std::int32_t* agreed) const {
  std::int32_t count = 0;
  std::int32_t agree = 0;
  bool still_agreeing = true;
  if (!script.diverged) {
    // The head walks the target tail as if every proposal landed, so the
    // post-flip tail resynchronizes to plausible continuations — flipped
    // tokens may be grammar-legal, but model agreement ends at the first
    // flip, which is exactly what the engine's commit rule consumes.
    std::size_t pos = script.matched_bytes;
    while (count < max_tokens && pos < script.target.size()) {
      std::size_t length = 0;
      std::int32_t truth = trie_->LongestMatch(script.target, pos, &length);
      if (truth < 0) break;
      std::int32_t proposal = truth;
      if (noise > 0.0 && rng->NextBool(noise)) {
        proposal = static_cast<std::int32_t>(
            rng->NextBounded(static_cast<std::size_t>(tokenizer_->VocabSize())));
      }
      out[count++] = proposal;
      if (still_agreeing && proposal == truth) {
        ++agree;
      } else {
        still_agreeing = false;
      }
      pos += length;
    }
  }
  if (agreed != nullptr) *agreed = agree;
  return count;
}

void MockLlm::OnTokenSampled(RequestScript* script, std::int32_t token_id) const {
  if (token_id == tokenizer_->EosId()) return;
  const std::string& bytes = tokenizer_->TokenBytes(token_id);
  if (!script->diverged &&
      script->target.compare(script->matched_bytes, bytes.size(), bytes) == 0) {
    script->matched_bytes += bytes.size();
    return;
  }
  script->diverged = true;
  ++script->prose_emitted;
}

}  // namespace xgr::engine
