// Scripted mock LLM (DESIGN.md §1 substitution for the real model).
//
// Each request carries a target completion (a grammar-conforming document
// from the dataset generators). The mock model boosts the next target token
// at every step; with a configurable per-step probability it instead boosts a
// "derail" distractor (a prose-like token), imitating the failure mode the
// paper describes — "the model often includes additional explanations
// alongside the intended code output". Under constrained decoding the
// distractor is masked away and generation stays on target; unconstrained it
// derails, rambles for a few tokens, and ends — producing the syntactically
// invalid outputs Table 4 counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::engine {

// Sparse logits: every token has logit 0 except the boosted ones. All the
// mask/sampling code paths behave exactly as with dense logits.
struct SparseLogits {
  std::vector<std::pair<std::int32_t, float>> boosted;
};

class MockLlm {
 public:
  struct Options {
    double derail_probability = 0.0;  // per decode step
    std::int32_t derail_length = 6;   // prose tokens emitted after derailing
    std::uint64_t seed = 1;
  };

  MockLlm(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
          Options options);

  // Per-request generation state.
  struct RequestScript {
    std::string target;            // intended completion text
    std::size_t matched_bytes = 0; // prefix of target already emitted
    bool diverged = false;
    std::int32_t prose_emitted = 0;
    Rng rng{1};
  };

  RequestScript MakeScript(const std::string& target, std::uint64_t request_seed) const;

  // Logits for the next step of `script`.
  SparseLogits ComputeLogits(RequestScript* script) const;

  // Informs the script that `token_id` was sampled; updates alignment.
  void OnTokenSampled(RequestScript* script, std::int32_t token_id) const;

  const tokenizer::TokenizerInfo& Tokenizer() const { return *tokenizer_; }
  const tokenizer::TokenTrie& Trie() const { return *trie_; }

 private:
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::shared_ptr<const tokenizer::TokenTrie> trie_;
  Options options_;
  std::vector<std::int32_t> distractors_;  // prose-like token ids
  std::vector<std::int32_t> closers_;      // '"', '}', ']', ... for recovery
};

}  // namespace xgr::engine
