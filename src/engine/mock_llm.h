// Scripted mock LLM (DESIGN.md §1 substitution for the real model).
//
// Each request carries a target completion (a grammar-conforming document
// from the dataset generators). The mock model boosts the next target token
// at every step; with a configurable per-step probability it instead boosts a
// "derail" distractor (a prose-like token), imitating the failure mode the
// paper describes — "the model often includes additional explanations
// alongside the intended code output". Under constrained decoding the
// distractor is masked away and generation stays on target; unconstrained it
// derails, rambles for a few tokens, and ends — producing the syntactically
// invalid outputs Table 4 counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::engine {

// Sparse logits: every token has logit 0 except the boosted ones. All the
// mask/sampling code paths behave exactly as with dense logits.
struct SparseLogits {
  std::vector<std::pair<std::int32_t, float>> boosted;
};

class MockLlm {
 public:
  struct Options {
    double derail_probability = 0.0;  // per decode step
    std::int32_t derail_length = 6;   // prose tokens emitted after derailing
    std::uint64_t seed = 1;
  };

  MockLlm(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
          Options options);

  // Per-request generation state.
  struct RequestScript {
    std::string target;            // intended completion text
    std::size_t matched_bytes = 0; // prefix of target already emitted
    bool diverged = false;
    std::int32_t prose_emitted = 0;
    Rng rng{1};
  };

  RequestScript MakeScript(const std::string& target, std::uint64_t request_seed) const;

  // Logits for the next step of `script`.
  SparseLogits ComputeLogits(RequestScript* script) const;

  // Allocation-free variant for the decode hot path: clears and refills
  // `out` (capacity is reused across steps once warm).
  void ComputeLogitsSparse(RequestScript* script, SparseLogits* out) const;

  // Dense-logits variant: writes a full VocabSize()-wide row into `row` —
  // the shared base-noise row (deterministic per-token values in [0, 1),
  // built once at construction) plus the step's sparse boosts. `scratch`
  // receives the boosts as a side effect (same reuse contract as
  // ComputeLogitsSparse). Zero allocations once warm.
  void ComputeLogitsDense(RequestScript* script, SparseLogits* scratch,
                          float* row) const;

  // The dense path's per-token background logits (size VocabSize()).
  const std::vector<float>& BaseNoiseRow() const { return base_noise_; }

  // Informs the script that `token_id` was sampled; updates alignment.
  void OnTokenSampled(RequestScript* script, std::int32_t token_id) const;

  // n-gram draft head for speculative decoding: proposes up to `max_tokens`
  // continuation tokens by greedy-tokenizing the unemitted target tail (the
  // lookup a real n-gram/draft-model head performs), flipping each proposal
  // to a pseudo-random vocabulary token with probability `noise`. Writes
  // proposals to out[0..returned) and returns the count (< max_tokens when
  // the target is nearly exhausted; 0 once the script has diverged —
  // prose-mode steps never draft). `agreed` receives the length of the
  // proposal prefix the target model itself would emit — the quantity the
  // verify forward pass measures; flipped tokens may still be grammar-legal,
  // so grammar acceptance and model agreement diverge independently.
  // Allocation-free: one trie walk per proposed token, no buffers.
  std::int32_t DraftTokens(const RequestScript& script, std::int32_t max_tokens,
                           double noise, Rng* rng, std::int32_t* out,
                           std::int32_t* agreed) const;

  const tokenizer::TokenizerInfo& Tokenizer() const { return *tokenizer_; }
  const tokenizer::TokenTrie& Trie() const { return *trie_; }

 private:
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::shared_ptr<const tokenizer::TokenTrie> trie_;
  Options options_;
  std::vector<std::int32_t> distractors_;  // prose-like token ids
  std::vector<std::int32_t> closers_;      // '"', '}', ']', ... for recovery
  std::vector<float> base_noise_;          // dense path: per-token [0,1) floor
};

}  // namespace xgr::engine
