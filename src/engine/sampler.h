// Masked greedy sampling over sparse logits.
//
// Mirrors Figure 2: invalid tokens get -inf (here: are skipped), the argmax
// of the surviving logits is selected. With sparse logits every non-boosted
// token has logit 0, so the fallback among equally-scored allowed tokens is a
// seeded pseudo-random pick — a stand-in for the long tail of a real
// distribution.
#pragma once

#include <cstdint>

#include "engine/mock_llm.h"
#include "support/dynamic_bitset.h"
#include "support/rng.h"

namespace xgr::engine {

// Greedy sample with a mask. `mask` bit = 1 means allowed.
std::int32_t SampleMasked(const SparseLogits& logits, const DynamicBitset& mask,
                          Rng* rng);

// Greedy sample without a mask (unconstrained generation).
std::int32_t SampleUnmasked(const SparseLogits& logits, std::int32_t vocab_size,
                            Rng* rng);

}  // namespace xgr::engine
