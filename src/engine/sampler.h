// Masked sampling over sparse or dense logits.
//
// Mirrors Figure 2: invalid tokens get -inf (sparse: are skipped; dense:
// are masked inside the fused kernel), the argmax of the surviving logits
// is selected.
//
// Sparse path: every non-boosted token has logit 0, so the fallback among
// equally-scored allowed tokens is a seeded pseudo-random pick — a stand-in
// for the long tail of a real distribution. A boosted token wins only when
// its logit strictly beats that implicit 0-logit floor (a negative-logit
// boost must NOT shadow the unboosted allowed tokens tying at 0).
//
// Dense path: DenseSampler runs the runtime-dispatched fused
// bitmask-apply + softmax + sample kernel (support/simd_kernels.h) over a
// full logits row, with temperature <= 0 meaning greedy argmax.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/mock_llm.h"
#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "support/simd_kernels.h"

namespace xgr::engine {

// Greedy sample with a mask. `mask` bit = 1 means allowed.
std::int32_t SampleMasked(const SparseLogits& logits, const DynamicBitset& mask,
                          Rng* rng);

// Greedy sample without a mask (unconstrained generation).
std::int32_t SampleUnmasked(const SparseLogits& logits, std::int32_t vocab_size,
                            Rng* rng);

// Stateful dense sampler: owns the exp scratch row so the per-step sampling
// call performs zero heap allocations.
class DenseSampler {
 public:
  // Sizes the scratch for `vocab_size`-wide rows; call once per request at
  // admission (re-calling with the same size is a no-op).
  void Prepare(std::size_t vocab_size);

  // Samples from logits[0..vocab_size). mask == nullptr = unconstrained.
  // temperature <= 0 (or NaN) = greedy argmax; otherwise softmax sampling
  // with one uniform draw from `rng`. Returns -1 only when the mask allows
  // no token at all.
  std::int32_t Sample(const float* logits, std::size_t vocab_size,
                      const DynamicBitset* mask, float temperature, Rng* rng);

  const support::simd::FusedSampleStats& LastStats() const { return stats_; }

 private:
  std::vector<float> exp_scratch_;
  support::simd::FusedSampleStats stats_;
};

}  // namespace xgr::engine
