// Batched LLM serving simulator (§3.5 co-design and the end-to-end
// experiments of §4.2 / Appendix B / Appendix C).
//
// The GPU forward pass is a calibrated wait on a worker thread (see
// ModelProfile); grammar mask generation is real CPU work through the
// ConstrainedDecoder interface. Scheduling modes:
//   * serial    — masks are computed after the forward pass returns, on one
//                 thread (how vLLM+Outlines and llama.cpp apply constraints);
//   * overlap   — masks for the step are computed on a thread pool while the
//                 forward pass runs, synchronizing before sampling (§3.5,
//                 Figure 8). Grammar preprocessing likewise overlaps with
//                 prefill.
// Jump-forward decoding (Appendix B) appends forced continuations without
// spending decode steps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/constrained_decoder.h"
#include "engine/mask_shard_planner.h"
#include "engine/mock_llm.h"
#include "engine/model_profile.h"
#include "engine/sampler.h"
#include "runtime/compile_service.h"
#include "support/status.h"
#include "support/worker_team.h"

namespace xgr::engine {

enum class GrammarSchedule : std::uint8_t {
  kNone,     // unconstrained generation
  kSerial,   // mask after forward pass, single-threaded
  kOverlap,  // mask during forward pass, thread pool (§3.5)
};

// How RunContinuous admits a request whose grammar is still compiling
// (ContinuousRequest::pending_grammar not yet ready at its arrival step).
enum class CompileAdmission : std::uint8_t {
  // The request waits *out of batch* — co-scheduled requests keep decoding
  // while the CompileService builds on its own threads — and joins on the
  // first iteration its artifact is ready. Compile latency overlaps decode.
  kDeferred,
  // The request is admitted at its arrival step and the whole decode loop
  // blocks on the build — how a synchronous compile front door behaves.
  // Kept for the bench comparison, not for serving.
  kBlocking,
};

// Tenant service classes for multi-tenant continuous batching: the admission
// loop admits interactive tenants first each iteration, and batch tenants can
// additionally be deferred when their measured mask cost crowds out everyone
// else (see TenantPolicy::max_mask_cost_share).
enum class TenantClass : std::uint8_t {
  kInteractive,  // latency-sensitive; admitted first each iteration
  kBatch,        // throughput traffic; yields to interactive under contention
};

// Per-tenant admission policy for RunContinuous. Requests name their tenant
// (ContinuousRequest::tenant); tenants without a policy — including the empty
// default tenant — run as uncapped interactive traffic, so the single-tenant
// path is unchanged.
struct TenantPolicy {
  TenantClass cls = TenantClass::kInteractive;
  // Maximum concurrent batch slots this tenant's requests may occupy;
  // 0 = unlimited.
  std::int32_t max_slots = 0;
  // Batch-class tenants only: the maximum share of the batch's summed
  // per-request mask-cost EWMA (the same measured-microseconds feedback the
  // cost-aware shard planner consumes, see MaskTask) this tenant's active
  // requests may hold before further admissions defer. Judged on the current
  // measured share, and applied only while at least one other tenant has
  // active work — a lone tenant can never wedge itself out of an idle
  // engine. 0 = unlimited.
  double max_mask_cost_share = 0.0;
};

// Speculative decoding (fig11 territory): the mock LLM's n-gram draft head
// proposes up to `draft_tokens` continuation tokens per step; the grammar
// verifies the whole draft in ONE VerifyDraft transaction fused into the
// mask phase (verify → commit → one mask fill at the commit point), and the
// engine commits the prefix on which grammar and target model agree, then
// samples one correction token under the commit-point mask. Combined with
// jump_forward, deterministic grammar regions commit whole spans without
// drafting at all.
struct SpeculationOptions {
  bool enabled = false;
  // Draft length k proposed per decode step.
  std::int32_t draft_tokens = 4;
  // Probability that the draft head proposes a wrong token at each position
  // (models draft-head/target disagreement; 0 = oracle draft).
  double draft_noise = 0.0;
  // Seed for the per-request draft-noise RNG (mixed with the request seed).
  std::uint64_t seed = 0x5eed;
};

struct EngineOptions {
  ModelProfile profile = ModelProfile::Llama31_8B_H100();
  GrammarSchedule schedule = GrammarSchedule::kOverlap;
  CompileAdmission admission = CompileAdmission::kDeferred;
  bool jump_forward = false;
  // Re-tokenize across the sampled/forced boundary (Appendix B: jump-forward
  // "requires retokenization, which involves rolling back some tokens"). Off
  // = naive append, kept for ablation.
  bool jf_retokenize = true;
  std::int32_t max_new_tokens = 64;
  // Scales every simulated GPU wait (1.0 = calibrated real time). Tests use
  // small values; benchmarks keep 1.0.
  double time_scale = 1.0;
  // Dense-logits decode path: the mock LLM emits a full float row per
  // sequence and sampling runs the runtime-dispatched fused
  // bitmask-apply + softmax + sample kernel (support/simd_kernels.h). The
  // profile's sampling_us wait is skipped — the kernel IS the sampling work.
  bool dense_logits = false;
  // Softmax temperature for the dense path; <= 0 = greedy argmax (the
  // deterministic default the batch-determinism suite relies on).
  float temperature = 0.0f;
  // Worker threads (including the dispatching thread) for batch mask
  // generation; 0 = one per hardware thread. Each engine owns a persistent
  // WorkerTeam, so thread count is a per-engine knob, not a global.
  std::int32_t mask_threads = 0;
  // Optional process-wide allocation counter (see support/alloc_hook.h and
  // benchutil::AllocCountFn). When set, RunBatch reports allocations
  // performed during steady-state decode steps (BatchResult::steady_allocs).
  std::uint64_t (*alloc_count_fn)() = nullptr;
  // RunContinuous: maximum *simulated* ms a request may sit compile-held
  // (its grammar still building) before it is dropped with
  // StatusCode::kDeadlineExceeded instead of waiting forever on a wedged
  // or slow build. 0 = no limit. Applies to both admission modes.
  double compile_deadline_ms = 0.0;
  // RunContinuous: per-tenant admission policies keyed by tenant name.
  // Empty = single-tenant behavior (every request admitted in arrival
  // order, no caps).
  std::map<std::string, TenantPolicy> tenant_policies;
  // Speculative multi-token decoding (see SpeculationOptions). Only
  // grammar-constrained requests speculate; unconstrained requests keep the
  // one-token-per-step path.
  SpeculationOptions speculation;
};

struct EngineRequest {
  // Grammar backend for this request; nullptr = unconstrained.
  std::shared_ptr<baselines::ConstrainedDecoder> decoder;
  std::string target_text;           // the mock model's intended completion
  std::int32_t prompt_tokens = 139;  // paper §4.2: avg input 139 tokens
  std::uint64_t seed = 1;
};

struct RequestResult {
  std::string output_text;
  std::vector<std::int32_t> token_ids;
  bool finished_by_eos = false;
  std::int32_t jump_forward_tokens = 0;
  // Tokens rolled back and re-accepted to keep the context canonically
  // tokenized across jump-forward boundaries.
  std::int32_t retokenized_tokens = 0;
  // Speculative decoding accounting (zero unless EngineOptions::speculation
  // is enabled): draft tokens proposed, draft tokens committed (grammar- AND
  // model-agreed prefix), and decode steps that ran the speculative path.
  // Committed draft tokens + one sampled correction token per step +
  // jump_forward_tokens give tokens-per-step.
  std::int32_t drafted_tokens = 0;
  std::int32_t draft_committed_tokens = 0;
  std::int32_t spec_steps = 0;
};

// Mask-generation counters aggregated over the grammar-constrained requests
// of one run (deltas across the run, summed over requests; all zero for
// unconstrained or non-cache backends). `scratch_rebuilds` vs
// `scratch_reseeds` shows the decode hot path staying on its reusable
// workspace: in steady state rebuilds stay at one per decoder while reseeds
// grow with every context-dependent check.
struct MaskGenAggregate {
  std::int64_t masks_generated = 0;
  std::int64_t scratch_rebuilds = 0;
  std::int64_t scratch_reseeds = 0;
  // Trie-pruned context-dependent checking (see cache::MaskGenStats): tokens
  // resolved, sub-trie bytes attempted, tokens rejected via subtree cut-off,
  // and cut-off events. ctx_tokens_pruned / ctx_tokens_checked is the share
  // of the batch's runtime ctx burden the per-entry sub-tries absorbed.
  std::int64_t ctx_tokens_checked = 0;
  std::int64_t ctx_bytes_checked = 0;
  std::int64_t ctx_tokens_pruned = 0;
  std::int64_t ctx_subtree_cutoffs = 0;
};

// Tag-dispatch segment counters aggregated over the composite agentic
// decoders of one run (see compose::TagDispatchStats; zero when no request
// used one). Run counters are per-run deltas; `prefetch_*` are plan-level
// totals summed once per admitted decoder — they describe how the decoder's
// per-tag artifacts were obtained (registry hit vs compile wait), not work
// done during decoding.
struct TagDispatchAggregate {
  std::int64_t decoders = 0;  // requests that ran on a tag-dispatch decoder
  std::int64_t dispatches = 0;
  std::int64_t segment_switches = 0;
  std::int64_t free_tokens = 0;
  std::int64_t tag_tokens = 0;
  std::int64_t prefetch_submits = 0;
  std::int64_t prefetch_hits = 0;
  std::int64_t prefetch_waits = 0;
};

struct BatchResult {
  std::vector<RequestResult> requests;
  double ttft_ms = 0.0;          // prefill + preprocessing (+ first mask sync)
  double decode_wall_ms = 0.0;   // total decode-loop wall time
  std::int64_t decode_steps = 0;
  std::int64_t total_tokens = 0;  // includes jump-forwarded tokens
  MaskGenAggregate mask_gen;
  TagDispatchAggregate tag_dispatch;
  // Overlap accounting, summed over decode steps: wall time of the mask
  // phase, wall time of the simulated forward pass, and the grammar
  // overhead that escaped the overlap (per step: max(0, mask - gpu) under
  // kOverlap; the full mask wall under kSerial — exactly the quantity
  // Figure 10 plots as added TPOT).
  double mask_wall_ms = 0.0;
  double gpu_wall_ms = 0.0;
  double exposed_overhead_ms = 0.0;
  // Fraction of mask-generation wall time hidden behind the forward pass.
  double OverlapHiddenFraction() const {
    return mask_wall_ms <= 0.0
               ? 1.0
               : 1.0 - exposed_overhead_ms / mask_wall_ms;
  }
  // Allocation audit (only when EngineOptions::alloc_count_fn is set):
  // operator-new calls observed across steady-state decode steps (the
  // first two steps are warm-up: lazy scratch, planner buffers). -1 = not
  // measured.
  std::int64_t steady_allocs = -1;
  std::int64_t steady_steps = 0;
  // Time per output token as the paper reports it: decode wall time divided
  // by tokens generated per request slot.
  double TpotMs() const {
    return total_tokens == 0
               ? 0.0
               : decode_wall_ms /
                     (static_cast<double>(total_tokens) / static_cast<double>(requests.size()));
  }
};

// A request that joins the continuous-batching queue at a given decode step
// (iteration-level scheduling in the style of Orca, which the paper's §5
// serving discussion builds on).
struct ContinuousRequest {
  EngineRequest request;
  std::int64_t arrival_step = 0;  // first decode iteration it may join
  // Async grammar admission: when set (and request.decoder is null), the
  // request's grammar is being built by a runtime::CompileService; the
  // engine constructs an XGrammarDecoder from the finished artifact at
  // admission. See EngineOptions::admission for the scheduling policy.
  std::shared_ptr<runtime::CompileTicket> pending_grammar;
  // Total per-request deadline in *simulated* ms, measured from the first
  // iteration the request is eligible (arrival_step reached). Covers
  // compile wait, capacity queueing, and decoding: an expired request
  // leaves the batch with StatusCode::kDeadlineExceeded — mid-decode it
  // keeps its partial output. 0 = none.
  double deadline_ms = 0.0;
  // Tenant this request bills to (see EngineOptions::tenant_policies).
  // Empty = the anonymous default tenant (uncapped, interactive class).
  std::string tenant;
};

struct ContinuousRequestResult {
  RequestResult result;
  std::int64_t admitted_step = -1;     // iteration the request joined
  std::int64_t first_token_step = -1;  // iteration of its first token
  std::int64_t finish_step = -1;       // iteration it completed
  double ttft_ms = 0.0;                // simulated: admission -> first token
  double completion_ms = 0.0;          // simulated: admission -> finished
  // Simulated time from the request first being held back *because its
  // grammar was still compiling* until admission (or until it was dropped
  // on compile failure). 0 for requests never compile-held — including
  // ones that merely queued for batch capacity, which is not compile wait.
  double compile_wait_ms = 0.0;
  // The pending grammar failed to compile (or was cancelled): the request
  // was dropped without decoding and `result` is empty.
  bool grammar_failed = false;
  // Structured outcome: kOk for a normal completion; kDeadlineExceeded for
  // a deadline drop (admission-side or mid-decode); for grammar_failed, the
  // compile ticket's code (kInvalidGrammar / kPoisoned / kOverloaded / ...).
  StatusCode status = StatusCode::kOk;
  // Human-readable failure detail (the compile error for grammar_failed —
  // threaded through so a dropped request is diagnosable, not just counted).
  std::string error;
};

// Per-tenant accounting for one RunContinuous call. `policy_defers` counts
// iteration-level admission deferrals caused by tenant policy (slot cap or
// mask-cost share) — compile-held skips are not policy defers.
// `peak_mask_cost_us` is the largest summed mask-cost EWMA the tenant's
// active requests held on any single iteration: the signal the cost-share
// cap is judged against.
struct TenantUsage {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;      // finished with status kOk
  std::int64_t dropped = 0;        // deadline / grammar-failure drops
  std::int64_t policy_defers = 0;
  std::int64_t total_tokens = 0;
  double mean_ttft_ms = 0.0;          // over requests that emitted a token
  double mean_compile_wait_ms = 0.0;  // over all submitted requests
  double peak_mask_cost_us = 0.0;
};

struct ContinuousResult {
  std::vector<ContinuousRequestResult> requests;  // in submission order
  // Per-tenant usage, sorted by tenant name. Populated only when the run is
  // tenant-aware (a request named a tenant or a policy was configured).
  std::vector<std::pair<std::string, TenantUsage>> tenants;
  std::int64_t decode_steps = 0;
  std::int64_t total_tokens = 0;
  MaskGenAggregate mask_gen;
  TagDispatchAggregate tag_dispatch;
  // Same overlap accounting as BatchResult, summed over iterations.
  double mask_wall_ms = 0.0;
  double gpu_wall_ms = 0.0;
  double exposed_overhead_ms = 0.0;
  double makespan_ms = 0.0;  // simulated clock at last completion
  double ThroughputTokensPerSec() const {
    return makespan_ms <= 0.0
               ? 0.0
               : static_cast<double>(total_tokens) / (makespan_ms / 1000.0);
  }
};

// One unit of batch mask work: fill `mask` from `decoder`, then fold the
// measured microseconds into the request's EWMA cost estimate (each request
// belongs to exactly one shard per step, so the EWMA update is race-free).
//
// Speculation fuses draft verification into the same unit: when `draft_len`
// >= 0, the worker runs VerifyDraft over draft[0..draft_len), commits
// min(grammar-accepted, `agreed`) tokens, writes the kept count to
// *committed, and only then fills `mask` — one fill per step, at the commit
// point, instead of one per draft token.
struct MaskTask {
  baselines::ConstrainedDecoder* decoder = nullptr;
  DynamicBitset* mask = nullptr;
  float* cost_ewma_us = nullptr;
  const std::int32_t* draft = nullptr;
  std::int32_t draft_len = -1;  // -1 = plain mask fill, no speculation
  std::int32_t agreed = 0;      // model-agreed draft prefix length
  std::int32_t* committed = nullptr;
};

class ServingEngine {
 public:
  ServingEngine(const EngineOptions& options, const MockLlm& llm);
  ~ServingEngine();

  // Runs one static batch to completion (all requests step in lockstep, as in
  // the paper's fixed-batch-size online-serving setting).
  BatchResult RunBatch(const std::vector<EngineRequest>& requests);

  // Continuous batching: requests join at their arrival step (capped at
  // `max_batch_size` concurrent), leave when finished, and the per-step GPU
  // cost tracks the instantaneous batch size. Grammar scheduling (serial /
  // overlap) and jump-forward behave exactly as in RunBatch; admission pays
  // the request's prefill on the joining step (chunked-prefill style).
  ContinuousResult RunContinuous(const std::vector<ContinuousRequest>& requests,
                                 std::int32_t max_batch_size);

 private:
  class SimGpu;  // persistent simulated-GPU thread (defined in the .cc)

  void SimulatedWait(double microseconds) const;
  // Runs the gathered mask_tasks_ (serial, or cost-aware-sharded across the
  // worker team); returns the phase's wall-clock milliseconds.
  double RunMaskTasks(bool parallel);

  EngineOptions options_;
  const MockLlm& llm_;
  std::unique_ptr<SimGpu> gpu_;
  support::WorkerTeam mask_team_;
  // Reused per step: the step's mask work, its cost snapshot, and the LPT
  // plan — all allocation-free once warm.
  std::vector<MaskTask> mask_tasks_;
  std::vector<float> plan_cost_us_;
  MaskShardPlanner planner_;
};

}  // namespace xgr::engine
