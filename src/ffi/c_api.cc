#include "ffi/c_api.h"

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "artifact/artifact_reader.h"
#include "artifact/artifact_writer.h"
#include "baselines/tag_dispatch_decoder.h"
#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "compose/tag_dispatch.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "grammar/regex_to_grammar.h"
#include "pda/compiled_grammar.h"
#include "runtime/compile_service.h"
#include "support/logging.h"
#include "support/status.h"
#include "support/utf8.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"

namespace {

thread_local std::string g_last_error;
thread_local xgr_status g_last_status = XGR_OK;

// StatusCode -> ABI code. Every failure class maps to a distinct negative
// value; unclassified internals stay on the historical XGR_ERROR.
xgr_status ToAbiStatus(xgr::StatusCode code) {
  switch (code) {
    case xgr::StatusCode::kOk:
      return XGR_OK;
    case xgr::StatusCode::kInvalidGrammar:
      return XGR_ERROR_INVALID_GRAMMAR;
    case xgr::StatusCode::kDeadlineExceeded:
      return XGR_ERROR_TIMEOUT;
    case xgr::StatusCode::kOverloaded:
      return XGR_ERROR_OVERLOADED;
    case xgr::StatusCode::kCorruptArtifact:
      return XGR_ERROR_CORRUPT_ARTIFACT;
    case xgr::StatusCode::kCancelled:
      return XGR_ERROR_CANCELLED;
    case xgr::StatusCode::kPoisoned:
      return XGR_ERROR_POISONED;
    case xgr::StatusCode::kQuotaExceeded:
      return XGR_ERROR_QUOTA_EXCEEDED;
    case xgr::StatusCode::kInternal:
      return XGR_ERROR;
  }
  return XGR_ERROR;
}

void SetError(const char* where, const std::exception& error) {
  g_last_error = std::string(where) + ": " + error.what();
  g_last_status = ToAbiStatus(xgr::StatusCodeOf(error));
}

// For hand-rolled (non-exception) error paths: message + explicit code.
void SetErrorRaw(std::string message, xgr_status status = XGR_ERROR) {
  g_last_error = std::move(message);
  g_last_status = status;
}

// Runs `fn`, translating any exception into `error_value` (never lets C++
// exceptions cross the C boundary).
template <typename Fn, typename E>
auto Guarded(const char* where, E error_value, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::exception& error) {
    SetError(where, error);
    return error_value;
  }
}

// Copies `value` into a caller buffer, NUL-terminated, and returns the FULL
// byte length of `value` (callers detect truncation by return >= buf_len).
// A truncated copy never ends mid-UTF-8 sequence: the cut is pulled back to
// the last complete codepoint so C callers can hand the buffer to
// UTF-8-consuming code without validating the tail.
size_t CopyOut(const std::string& value, char* buf, size_t buf_len) {
  if (buf != nullptr && buf_len > 0) {
    size_t n = std::min(buf_len - 1, value.size());
    if (n < value.size()) {
      n = xgr::CompleteUtf8PrefixLength(std::string_view(value.data(), n));
    }
    std::memcpy(buf, value.data(), n);
    buf[n] = '\0';
  }
  return value.size();
}

}  // namespace

// The opaque structs hold shared_ptrs so handle lifetime is independent of
// the handles they were created from.
struct xgr_tokenizer {
  std::shared_ptr<const xgr::tokenizer::TokenizerInfo> info;
};

struct xgr_grammar {
  std::shared_ptr<const xgr::cache::AdaptiveTokenMaskCache> cache;
};

// Generalized over the decoder interface so one handle type serves both the
// grammar-backed matcher and the tag-dispatch composite; XGrammar-specific
// entry points (fork) downcast and error out for other backends.
struct xgr_matcher {
  std::shared_ptr<xgr::baselines::ConstrainedDecoder> decoder;
  std::shared_ptr<const xgr::tokenizer::TokenizerInfo> tokenizer;
};

struct xgr_compile_service {
  std::unique_ptr<xgr::runtime::CompileService> service;
};

struct xgr_compile_ticket {
  xgr::runtime::CompileTicket ticket;
};

extern "C" {

size_t xgr_last_error(char* buf, size_t buf_len) {
  return CopyOut(g_last_error, buf, buf_len);
}

xgr_status xgr_last_status(void) { return g_last_status; }

/* ----- tokenizer --------------------------------------------------------- */

xgr_tokenizer* xgr_tokenizer_create(const char* const* token_bytes,
                                    const size_t* token_lens,
                                    int32_t vocab_size, int32_t eos_id) {
  return Guarded("xgr_tokenizer_create", static_cast<xgr_tokenizer*>(nullptr), [&]() -> xgr_tokenizer* {
    XGR_CHECK(token_bytes != nullptr && token_lens != nullptr);
    XGR_CHECK(vocab_size > 0) << "empty vocabulary";
    XGR_CHECK(eos_id >= 0 && eos_id < vocab_size) << "eos_id out of range";
    xgr::tokenizer::Vocabulary vocab;
    vocab.tokens.reserve(static_cast<std::size_t>(vocab_size));
    for (int32_t i = 0; i < vocab_size; ++i) {
      vocab.tokens.emplace_back(token_bytes[i], token_lens[i]);
    }
    vocab.eos_id = eos_id;
    vocab.special_ids = {eos_id};
    return new xgr_tokenizer{
        std::make_shared<xgr::tokenizer::TokenizerInfo>(std::move(vocab))};
  });
}

xgr_tokenizer* xgr_tokenizer_create_synthetic(int32_t vocab_size,
                                              uint64_t seed) {
  return Guarded("xgr_tokenizer_create_synthetic", static_cast<xgr_tokenizer*>(nullptr), [&]() -> xgr_tokenizer* {
    return new xgr_tokenizer{std::make_shared<xgr::tokenizer::TokenizerInfo>(
        xgr::tokenizer::BuildSyntheticVocab({vocab_size, seed}))};
  });
}

int32_t xgr_tokenizer_vocab_size(const xgr_tokenizer* tokenizer) {
  return tokenizer == nullptr ? 0 : tokenizer->info->VocabSize();
}

int32_t xgr_tokenizer_eos_id(const xgr_tokenizer* tokenizer) {
  return tokenizer == nullptr ? -1 : tokenizer->info->EosId();
}

void xgr_tokenizer_destroy(xgr_tokenizer* tokenizer) { delete tokenizer; }

/* ----- compiled grammar --------------------------------------------------- */

namespace {

xgr_grammar* CompileGrammar(const char* where, const xgr::grammar::Grammar& g,
                            const xgr_tokenizer* tokenizer) {
  return Guarded(where, static_cast<xgr_grammar*>(nullptr), [&]() -> xgr_grammar* {
    XGR_CHECK(tokenizer != nullptr) << "null tokenizer";
    auto pda = xgr::pda::CompiledGrammar::Compile(g);
    auto cache =
        xgr::cache::AdaptiveTokenMaskCache::Build(pda, tokenizer->info);
    return new xgr_grammar{std::move(cache)};
  });
}

}  // namespace

xgr_grammar* xgr_grammar_compile_ebnf(const char* ebnf_text,
                                      const char* root_rule,
                                      const xgr_tokenizer* tokenizer) {
  return Guarded("xgr_grammar_compile_ebnf", static_cast<xgr_grammar*>(nullptr), [&]() -> xgr_grammar* {
    XGR_CHECK(ebnf_text != nullptr);
    xgr::grammar::Grammar g = xgr::grammar::ParseEbnfOrThrow(
        ebnf_text, root_rule != nullptr ? root_rule : "root");
    return CompileGrammar("xgr_grammar_compile_ebnf", g, tokenizer);
  });
}

xgr_grammar* xgr_grammar_compile_json_schema(const char* schema_json,
                                             const xgr_tokenizer* tokenizer) {
  return Guarded("xgr_grammar_compile_json_schema", static_cast<xgr_grammar*>(nullptr), [&]() -> xgr_grammar* {
    XGR_CHECK(schema_json != nullptr);
    xgr::grammar::Grammar g =
        xgr::grammar::JsonSchemaTextToGrammar(schema_json);
    return CompileGrammar("xgr_grammar_compile_json_schema", g, tokenizer);
  });
}

xgr_grammar* xgr_grammar_compile_regex(const char* pattern,
                                       const xgr_tokenizer* tokenizer) {
  return Guarded("xgr_grammar_compile_regex", static_cast<xgr_grammar*>(nullptr), [&]() -> xgr_grammar* {
    XGR_CHECK(pattern != nullptr);
    xgr::grammar::Grammar g = xgr::grammar::RegexToGrammar(pattern);
    return CompileGrammar("xgr_grammar_compile_regex", g, tokenizer);
  });
}

xgr_grammar* xgr_grammar_compile_builtin_json(const xgr_tokenizer* tokenizer) {
  return CompileGrammar("xgr_grammar_compile_builtin_json",
                        xgr::grammar::BuiltinJsonGrammar(), tokenizer);
}

void xgr_grammar_destroy(xgr_grammar* grammar) { delete grammar; }

/* ----- zero-copy artifacts ------------------------------------------------ */

xgr_status xgr_artifact_save(const xgr_grammar* grammar, const char* path,
                             const char* content_key) {
  return Guarded("xgr_artifact_save", XGR_ERROR, [&]() -> xgr_status {
    XGR_CHECK(grammar != nullptr) << "null grammar";
    XGR_CHECK(path != nullptr) << "null path";
    xgr::artifact::WriteFlatArtifactFile(
        path, *grammar->cache, content_key != nullptr ? content_key : "");
    return XGR_OK;
  });
}

xgr_grammar* xgr_artifact_load(const char* path,
                               const xgr_tokenizer* tokenizer,
                               const char* expect_content_key) {
  return Guarded("xgr_artifact_load", static_cast<xgr_grammar*>(nullptr),
                 [&]() -> xgr_grammar* {
    XGR_CHECK(path != nullptr) << "null path";
    XGR_CHECK(tokenizer != nullptr) << "null tokenizer";
    xgr::artifact::LoadOptions options;
    if (expect_content_key != nullptr) {
      options.expect_content_key = expect_content_key;
    }
    return new xgr_grammar{
        xgr::artifact::LoadFlatArtifactFile(path, tokenizer->info, options)};
  });
}

/* ----- async compilation -------------------------------------------------- */

xgr_compile_service* xgr_compile_service_create(const xgr_tokenizer* tokenizer,
                                                int32_t num_threads,
                                                size_t memory_budget_bytes,
                                                const char* disk_cache_dir) {
  return Guarded("xgr_compile_service_create",
                 static_cast<xgr_compile_service*>(nullptr),
                 [&]() -> xgr_compile_service* {
    XGR_CHECK(tokenizer != nullptr) << "null tokenizer";
    XGR_CHECK(num_threads > 0) << "num_threads must be positive";
    xgr::runtime::CompileServiceOptions options;
    options.num_threads = num_threads;
    options.registry.memory_budget_bytes = memory_budget_bytes;
    if (disk_cache_dir != nullptr) options.registry.disk_dir = disk_cache_dir;
    return new xgr_compile_service{
        std::make_unique<xgr::runtime::CompileService>(tokenizer->info,
                                                       std::move(options))};
  });
}

void xgr_compile_service_destroy(xgr_compile_service* service) {
  delete service;
}

namespace {

xgr_compile_ticket* SubmitJob(const char* where, xgr_compile_service* service,
                              xgr::runtime::CompileJob job) {
  return Guarded(where, static_cast<xgr_compile_ticket*>(nullptr),
                 [&]() -> xgr_compile_ticket* {
    XGR_CHECK(service != nullptr) << "null compile service";
    return new xgr_compile_ticket{service->service->Submit(std::move(job))};
  });
}

}  // namespace

xgr_compile_ticket* xgr_compile_service_submit_ebnf(
    xgr_compile_service* service, const char* ebnf_text,
    const char* root_rule) {
  if (ebnf_text == nullptr) {
    SetErrorRaw("xgr_compile_service_submit_ebnf: null ebnf_text");
    return nullptr;
  }
  xgr::runtime::CompileJob job;
  job.kind = xgr::runtime::GrammarKind::kEbnf;
  job.source = ebnf_text;
  job.root_rule = root_rule != nullptr ? root_rule : "root";
  return SubmitJob("xgr_compile_service_submit_ebnf", service, std::move(job));
}

xgr_compile_ticket* xgr_compile_service_submit_json_schema(
    xgr_compile_service* service, const char* schema_json) {
  if (schema_json == nullptr) {
    SetErrorRaw("xgr_compile_service_submit_json_schema: null schema_json");
    return nullptr;
  }
  xgr::runtime::CompileJob job;
  job.kind = xgr::runtime::GrammarKind::kJsonSchema;
  job.source = schema_json;
  return SubmitJob("xgr_compile_service_submit_json_schema", service,
                   std::move(job));
}

xgr_compile_ticket* xgr_compile_service_submit_regex(
    xgr_compile_service* service, const char* pattern) {
  if (pattern == nullptr) {
    SetErrorRaw("xgr_compile_service_submit_regex: null pattern");
    return nullptr;
  }
  xgr::runtime::CompileJob job;
  job.kind = xgr::runtime::GrammarKind::kRegex;
  job.source = pattern;
  return SubmitJob("xgr_compile_service_submit_regex", service,
                   std::move(job));
}

/* ----- per-tenant quotas & accounting ------------------------------------- */

xgr_status xgr_compile_service_set_tenant_quota(
    xgr_compile_service* service, const char* tenant,
    int64_t max_concurrent_compiles, int64_t max_queued,
    size_t max_resident_bytes) {
  return Guarded("xgr_compile_service_set_tenant_quota", XGR_ERROR,
                 [&]() -> xgr_status {
    XGR_CHECK(service != nullptr) << "null compile service";
    XGR_CHECK(tenant != nullptr) << "null tenant name";
    xgr::runtime::TenantQuota quota;
    quota.max_concurrent_compiles = max_concurrent_compiles;
    quota.max_queued = max_queued;
    quota.max_resident_bytes = max_resident_bytes;
    service->service->SetTenantQuota(tenant, quota);
    return XGR_OK;
  });
}

xgr_compile_ticket* xgr_compile_service_submit_json_schema_as(
    xgr_compile_service* service, const char* tenant,
    const char* schema_json) {
  if (schema_json == nullptr) {
    SetErrorRaw("xgr_compile_service_submit_json_schema_as: null schema_json");
    return nullptr;
  }
  xgr::runtime::CompileJob job;
  job.kind = xgr::runtime::GrammarKind::kJsonSchema;
  job.source = schema_json;
  if (tenant != nullptr) job.tenant = tenant;
  return SubmitJob("xgr_compile_service_submit_json_schema_as", service,
                   std::move(job));
}

xgr_status xgr_compile_service_tenant_stats(const xgr_compile_service* service,
                                            const char* tenant,
                                            xgr_tenant_stats* out) {
  return Guarded("xgr_compile_service_tenant_stats", XGR_ERROR,
                 [&]() -> xgr_status {
    XGR_CHECK(service != nullptr) << "null compile service";
    XGR_CHECK(tenant != nullptr) << "null tenant name";
    XGR_CHECK(out != nullptr) << "null output struct";
    xgr::runtime::TenantStats stats =
        service->service->TenantStatsFor(tenant);
    out->submitted = stats.submitted;
    out->registry_hits = stats.registry_hits;
    out->compiled = stats.compiled;
    out->quota_rejects = stats.quota_rejects;
    out->evictions = stats.evictions;
    out->inflight = stats.inflight;
    out->bytes_resident = stats.bytes_resident;
    out->compile_wait_ms = stats.compile_wait_ms;
    return XGR_OK;
  });
}

int32_t xgr_compile_ticket_poll(const xgr_compile_ticket* ticket) {
  if (ticket == nullptr || !ticket->ticket.Valid()) {
    SetErrorRaw("xgr_compile_ticket_poll: invalid ticket");
    return -1;
  }
  switch (ticket->ticket.State()) {
    case xgr::runtime::CompileState::kPending:
      return 0;
    case xgr::runtime::CompileState::kReady:
      return 1;
    case xgr::runtime::CompileState::kFailed:
      SetErrorRaw("xgr_compile_ticket_poll: compilation failed: " +
                      ticket->ticket.Error(),
                  ToAbiStatus(ticket->ticket.Code()));
      return -1;
    case xgr::runtime::CompileState::kCancelled:
      SetErrorRaw("xgr_compile_ticket_poll: compilation cancelled",
                  XGR_ERROR_CANCELLED);
      return -1;
  }
  return -1;
}

xgr_grammar* xgr_compile_ticket_await(xgr_compile_ticket* ticket) {
  return Guarded("xgr_compile_ticket_await", static_cast<xgr_grammar*>(nullptr),
                 [&]() -> xgr_grammar* {
    XGR_CHECK(ticket != nullptr && ticket->ticket.Valid()) << "invalid ticket";
    return new xgr_grammar{ticket->ticket.Get()};
  });
}

void xgr_compile_ticket_cancel(xgr_compile_ticket* ticket) {
  if (ticket != nullptr && ticket->ticket.Valid()) ticket->ticket.Cancel();
}

void xgr_compile_ticket_destroy(xgr_compile_ticket* ticket) { delete ticket; }

/* ----- matcher ------------------------------------------------------------ */

xgr_matcher* xgr_matcher_create(const xgr_grammar* grammar) {
  return Guarded("xgr_matcher_create", static_cast<xgr_matcher*>(nullptr), [&]() -> xgr_matcher* {
    XGR_CHECK(grammar != nullptr) << "null grammar";
    return new xgr_matcher{
        std::make_shared<xgr::baselines::XGrammarDecoder>(grammar->cache),
        grammar->cache->TokenizerShared()};
  });
}

void xgr_matcher_destroy(xgr_matcher* matcher) { delete matcher; }

size_t xgr_matcher_mask_words(const xgr_matcher* matcher) {
  if (matcher == nullptr) return 0;
  auto vocab = static_cast<std::size_t>(matcher->tokenizer->VocabSize());
  return (vocab + 63) / 64;
}

xgr_status xgr_matcher_fill_next_token_bitmask(xgr_matcher* matcher,
                                               uint64_t* mask_words,
                                               size_t num_words) {
  return Guarded("xgr_matcher_fill_next_token_bitmask", XGR_ERROR, [&]() -> xgr_status {
    XGR_CHECK(matcher != nullptr && mask_words != nullptr);
    XGR_CHECK(num_words >= xgr_matcher_mask_words(matcher))
        << "mask buffer too small: " << num_words << " words";
    auto vocab = static_cast<std::size_t>(matcher->tokenizer->VocabSize());
    xgr::DynamicBitset mask(vocab);
    matcher->decoder->FillNextTokenBitmask(&mask);
    static_assert(sizeof(xgr::DynamicBitset::Word) == sizeof(uint64_t));
    std::memcpy(mask_words, mask.Data(), mask.WordCount() * sizeof(uint64_t));
    return XGR_OK;
  });
}

int32_t xgr_matcher_accept_token(xgr_matcher* matcher, int32_t token_id) {
  return Guarded("xgr_matcher_accept_token", static_cast<int32_t>(-1), [&]() -> int32_t {
    XGR_CHECK(matcher != nullptr);
    XGR_CHECK(token_id >= 0 && token_id < matcher->tokenizer->VocabSize())
        << "token id out of range: " << token_id;
    return matcher->decoder->AcceptToken(token_id) ? 1 : 0;
  });
}

int32_t xgr_matcher_can_terminate(const xgr_matcher* matcher) {
  if (matcher == nullptr) return 0;
  return matcher->decoder->CanTerminate() ? 1 : 0;
}

int32_t xgr_matcher_verify_draft(xgr_matcher* matcher, const int32_t* draft,
                                 int32_t num_draft, uint64_t* mask_words,
                                 size_t num_words, int32_t* terminated_out) {
  return Guarded("xgr_matcher_verify_draft", static_cast<int32_t>(-1), [&]() -> int32_t {
    XGR_CHECK(matcher != nullptr);
    XGR_CHECK(num_draft >= 0 && (num_draft == 0 || draft != nullptr))
        << "bad draft span: num_draft=" << num_draft;
    if (mask_words != nullptr) {
      XGR_CHECK(num_words >= xgr_matcher_mask_words(matcher))
          << "mask buffer too small: " << num_words << " words";
    }
    xgr::baselines::DraftVerifyResult result;
    if (mask_words != nullptr) {
      auto vocab = static_cast<std::size_t>(matcher->tokenizer->VocabSize());
      xgr::DynamicBitset mask(vocab);
      matcher->decoder->VerifyDraft(draft, num_draft, &result, &mask);
      static_assert(sizeof(xgr::DynamicBitset::Word) == sizeof(uint64_t));
      std::memcpy(mask_words, mask.Data(), mask.WordCount() * sizeof(uint64_t));
    } else {
      matcher->decoder->VerifyDraft(draft, num_draft, &result, nullptr);
    }
    if (terminated_out != nullptr) *terminated_out = result.terminated ? 1 : 0;
    return result.accepted;
  });
}

int32_t xgr_matcher_commit_draft(xgr_matcher* matcher, int32_t keep) {
  return Guarded("xgr_matcher_commit_draft", static_cast<int32_t>(-1), [&]() -> int32_t {
    XGR_CHECK(matcher != nullptr);
    XGR_CHECK(keep >= 0) << "negative keep";
    return matcher->decoder->CommitDraft(keep) ? 1 : 0;
  });
}

int32_t xgr_matcher_rollback_tokens(xgr_matcher* matcher, int32_t count) {
  return Guarded("xgr_matcher_rollback_tokens", static_cast<int32_t>(-1), [&]() -> int32_t {
    XGR_CHECK(matcher != nullptr);
    XGR_CHECK(count >= 0) << "negative rollback";
    return matcher->decoder->RollbackTokens(count) ? 1 : 0;
  });
}

size_t xgr_matcher_find_jump_forward_string(xgr_matcher* matcher, char* buf,
                                            size_t buf_len) {
  if (matcher == nullptr) return 0;
  return CopyOut(matcher->decoder->FindJumpForwardString(), buf, buf_len);
}

void xgr_matcher_reset(xgr_matcher* matcher) {
  if (matcher != nullptr) matcher->decoder->Reset();
}

xgr_matcher* xgr_matcher_fork(const xgr_matcher* matcher) {
  return Guarded("xgr_matcher_fork", static_cast<xgr_matcher*>(nullptr), [&]() -> xgr_matcher* {
    XGR_CHECK(matcher != nullptr);
    auto xg = std::dynamic_pointer_cast<xgr::baselines::XGrammarDecoder>(
        matcher->decoder);
    XGR_CHECK(xg != nullptr)
        << "only grammar-backed matchers support forking";
    return new xgr_matcher{xg->Fork(), matcher->tokenizer};
  });
}

xgr_matcher* xgr_tag_dispatch_matcher_create(
    xgr_compile_service* service, const char* const* begins,
    const char* const* schemas, const char* const* ends, int32_t num_tags,
    const char* const* triggers, int32_t num_triggers,
    int32_t allow_free_text, int32_t max_invocations,
    int32_t require_invocation) {
  return Guarded("xgr_tag_dispatch_matcher_create",
                 static_cast<xgr_matcher*>(nullptr), [&]() -> xgr_matcher* {
    XGR_CHECK(service != nullptr) << "null compile service";
    XGR_CHECK(begins != nullptr && ends != nullptr) << "null tag arrays";
    XGR_CHECK(num_tags > 0) << "no structural tags given";
    XGR_CHECK(triggers != nullptr && num_triggers > 0) << "no triggers given";
    xgr::compose::TagDispatchConfig config;
    config.tags.reserve(static_cast<std::size_t>(num_tags));
    for (int32_t i = 0; i < num_tags; ++i) {
      XGR_CHECK(begins[i] != nullptr && ends[i] != nullptr)
          << "null tag marker at index " << i;
      xgr::grammar::StructuralTag tag;
      tag.begin = begins[i];
      if (schemas != nullptr && schemas[i] != nullptr) tag.schema_text = schemas[i];
      tag.end = ends[i];
      config.tags.push_back(std::move(tag));
    }
    for (int32_t i = 0; i < num_triggers; ++i) {
      XGR_CHECK(triggers[i] != nullptr) << "null trigger at index " << i;
      config.triggers.emplace_back(triggers[i]);
    }
    config.allow_free_text = allow_free_text != 0;
    config.max_invocations = max_invocations;
    config.require_invocation = require_invocation != 0;
    auto plan =
        xgr::compose::TagDispatchPlan::Build(config, service->service.get());
    auto decoder = std::make_shared<xgr::baselines::TagDispatchDecoder>(plan);
    return new xgr_matcher{std::move(decoder), plan->TokenizerShared()};
  });
}

} /* extern "C" */
