/* Stable C ABI over the XGrammar engine (Appendix C: cross-platform
 * deployment). The paper's WebAssembly/JavaScript and mobile bindings wrap
 * the engine through a flat C surface exactly like this one: opaque handles,
 * integer status codes, caller-owned buffers, no C++ types across the
 * boundary. C++ exceptions never escape — failures set a thread-local error
 * message retrievable with xgr_last_error().
 *
 * Ownership: every *_create / *_compile function returns a handle the caller
 * must release with the matching *_destroy. Handles are independent; destroy
 * order does not matter (shared internals are reference-counted).
 *
 * Thread safety: a grammar handle is immutable after compilation and may be
 * shared across threads; tokenizer handles likewise. Matcher handles are
 * single-threaded, as are forks of the same matcher (they share an
 * append-only stack pool without synchronization).
 */
#ifndef XGRAMMAR_FFI_C_API_H_
#define XGRAMMAR_FFI_C_API_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ----- status / errors --------------------------------------------------- */

/* XGR_OK and XGR_ERROR keep their historical values; the structured codes
 * below refine XGR_ERROR (every one is negative, so `status < 0` remains a
 * complete failure check for old callers). */
typedef enum xgr_status {
  XGR_OK = 0,
  XGR_ERROR = -1, /* unclassified failure; details via xgr_last_error() */
  /* The grammar/schema/regex source itself is invalid. Deterministic:
   * resubmitting the identical source can never succeed — fix it. */
  XGR_ERROR_INVALID_GRAMMAR = -2,
  /* A deadline expired (compile or request). Retrying with a larger budget
   * may succeed. */
  XGR_ERROR_TIMEOUT = -3,
  /* The compile service shed this work under overload. Transient: back off
   * and retry. */
  XGR_ERROR_OVERLOADED = -4,
  /* A disk-tier artifact failed validation; the engine recompiles on its
   * own. Seeing this through the ABI is informational. */
  XGR_ERROR_CORRUPT_ARTIFACT = -5,
  /* The operation was cancelled (ticket released / service shut down). */
  XGR_ERROR_CANCELLED = -6,
  /* The key is quarantined after repeated failures; rejected O(1) with the
   * cached error. Retrying before the quarantine TTL expires is pointless. */
  XGR_ERROR_POISONED = -7,
  /* A per-tenant admission quota (concurrent compiles, queue depth, resident
   * bytes) is exhausted. Retry after the tenant's in-flight work drains. */
  XGR_ERROR_QUOTA_EXCEEDED = -8,
} xgr_status;

/* Copies the calling thread's last error message (NUL-terminated, possibly
 * truncated) into `buf`. Returns the full message length, which may exceed
 * `buf_len` (call again with a larger buffer to get the untruncated text).
 * Thread-safe: each thread sees only errors raised by its own calls. The
 * message is only meaningful immediately after a call on this thread
 * reported failure (NULL return or XGR_ERROR / -1 status). */
size_t xgr_last_error(char* buf, size_t buf_len);

/* The structured status code of the calling thread's most recent failure —
 * the machine-readable companion of xgr_last_error(), set by exactly the
 * same calls. Like the message, it is only meaningful immediately after a
 * call on this thread reported failure; successful calls do not reset it. */
xgr_status xgr_last_status(void);

/* ----- tokenizer --------------------------------------------------------- */

typedef struct xgr_tokenizer xgr_tokenizer;

/* Builds a tokenizer from raw token byte strings (id = array index).
 * `token_bytes[i]` points at `token_lens[i]` bytes (need not be
 * NUL-terminated); the bytes are copied, so the caller's arrays may be freed
 * immediately after the call. `eos_id` must index a token that will act as
 * EOS. Returns NULL on error (message via xgr_last_error()); the returned
 * handle is owned by the caller and released with xgr_tokenizer_destroy(). */
xgr_tokenizer* xgr_tokenizer_create(const char* const* token_bytes,
                                    const size_t* token_lens,
                                    int32_t vocab_size, int32_t eos_id);

/* The synthetic Llama-like vocabulary used by the benchmarks
 * (src/tokenizer/synthetic_vocab.h). Deterministic in (vocab_size, seed).
 * Returns NULL on error; release with xgr_tokenizer_destroy(). */
xgr_tokenizer* xgr_tokenizer_create_synthetic(int32_t vocab_size,
                                              uint64_t seed);

/* Read-only accessors; safe from any thread, never fail on a live handle. */
int32_t xgr_tokenizer_vocab_size(const xgr_tokenizer* tokenizer);
int32_t xgr_tokenizer_eos_id(const xgr_tokenizer* tokenizer);

/* Releases the handle. Safe while grammars compiled against it are still
 * alive (shared internals are reference-counted); passing NULL is a no-op. */
void xgr_tokenizer_destroy(xgr_tokenizer* tokenizer);

/* ----- compiled grammar --------------------------------------------------- */

typedef struct xgr_grammar xgr_grammar;

/* Each compile bundles grammar compilation (PDA construction, §3.4
 * optimizations, §3.2 context expansion) with the adaptive token-mask cache
 * build (§3.1) for `tokenizer`'s vocabulary. This is the expensive
 * preprocessing step — expect milliseconds to seconds depending on grammar
 * and vocabulary size; amortize it by compiling once and sharing the handle.
 *
 * All four return a caller-owned handle (release with xgr_grammar_destroy())
 * or NULL on error (malformed input text, unknown `root_rule`, NULL
 * `tokenizer`; message via xgr_last_error()). The tokenizer is snapshotted:
 * the grammar stays valid after xgr_tokenizer_destroy(tokenizer).
 *
 * `xgr_grammar_compile_ebnf` parses GBNF-style EBNF text and compiles the
 * rule named `root_rule` (NULL means "root"). */
xgr_grammar* xgr_grammar_compile_ebnf(const char* ebnf_text,
                                      const char* root_rule,
                                      const xgr_tokenizer* tokenizer);
/* Converts a JSON Schema document (text) to a grammar, then compiles it. */
xgr_grammar* xgr_grammar_compile_json_schema(const char* schema_json,
                                             const xgr_tokenizer* tokenizer);
/* Compiles a regular expression (anchored: must match the whole output). */
xgr_grammar* xgr_grammar_compile_regex(const char* pattern,
                                       const xgr_tokenizer* tokenizer);
/* Builtin unconstrained-JSON grammar (ECMA-404). */
xgr_grammar* xgr_grammar_compile_builtin_json(const xgr_tokenizer* tokenizer);

/* Releases the handle. Live matchers created from it keep their own
 * reference and remain valid; passing NULL is a no-op. */
void xgr_grammar_destroy(xgr_grammar* grammar);

/* ----- zero-copy artifacts ------------------------------------------------ */

/* Serializes a compiled grammar into the flat zero-copy artifact format
 * ("XGR3") at `path`, atomically (temp file + rename; concurrent writers of
 * the same artifact are safe). The byte stream is deterministic: the same
 * grammar + vocabulary always produce identical files. `content_key` is an
 * optional identity string embedded in the header and re-checked at load
 * time (NULL or "" = unkeyed). Returns XGR_OK, or a negative status with
 * details via xgr_last_error(). */
xgr_status xgr_artifact_save(const xgr_grammar* grammar, const char* path,
                             const char* content_key);

/* Memory-maps a flat artifact and returns a grammar handle whose mask
 * tables view the mapping directly — no parse, no copy; ready time is
 * header validation plus one checksum pass, and every process mapping the
 * same file shares one physical page set. `tokenizer` must carry the same
 * vocabulary the artifact was built against: a vocabulary-pin mismatch
 * fails with XGR_ERROR_CORRUPT_ARTIFACT, as does truncation, corruption,
 * a misaligned offset table, or (when `expect_content_key` is non-NULL and
 * non-empty) an embedded-key mismatch. Returns NULL on error; release with
 * xgr_grammar_destroy() (the mapping unmaps with the last reference). */
xgr_grammar* xgr_artifact_load(const char* path,
                               const xgr_tokenizer* tokenizer,
                               const char* expect_content_key);

/* ----- async compilation -------------------------------------------------- */

/* A compile service wraps the grammar runtime (src/runtime): a thread pool
 * compiling grammars asynchronously, a memory-budgeted LRU registry of
 * finished artifacts, and an optional disk cache that persists compiled
 * grammars across processes. Submitting returns a *ticket* immediately; the
 * build proceeds off-thread while the caller keeps serving decode traffic.
 * Concurrent submissions of identical sources share one build.
 *
 * Thread safety: service handles are fully thread-safe (submit from any
 * thread). A ticket handle is owned by one caller; poll/await/cancel on the
 * same ticket from multiple threads is not supported, but distinct tickets
 * for the same source are independent. */

typedef struct xgr_compile_service xgr_compile_service;
typedef struct xgr_compile_ticket xgr_compile_ticket;

/* Creates a compile service over `tokenizer`'s vocabulary.
 *   num_threads         — compile workers (>= 1).
 *   memory_budget_bytes — resident-artifact LRU budget; 0 = unlimited.
 *   disk_cache_dir      — directory for the persistent artifact cache
 *                         (created on demand), or NULL for memory-only.
 * The tokenizer is snapshotted (may be destroyed afterwards). Returns NULL
 * on error; release with xgr_compile_service_destroy(). */
xgr_compile_service* xgr_compile_service_create(const xgr_tokenizer* tokenizer,
                                                int32_t num_threads,
                                                size_t memory_budget_bytes,
                                                const char* disk_cache_dir);

/* Cancels still-queued builds, waits for running builds to finish, and
 * releases the service. Outstanding tickets stay valid (they resolve as
 * ready, failed, or cancelled) but must still be destroyed individually.
 * NULL is a no-op. */
void xgr_compile_service_destroy(xgr_compile_service* service);

/* Asynchronous counterparts of the xgr_grammar_compile_* functions. Each
 * returns a caller-owned ticket immediately (release with
 * xgr_compile_ticket_destroy()) or NULL on invalid arguments. A failure of
 * the build itself is reported through the ticket, not here. */
xgr_compile_ticket* xgr_compile_service_submit_ebnf(
    xgr_compile_service* service, const char* ebnf_text, const char* root_rule);
xgr_compile_ticket* xgr_compile_service_submit_json_schema(
    xgr_compile_service* service, const char* schema_json);
xgr_compile_ticket* xgr_compile_service_submit_regex(
    xgr_compile_service* service, const char* pattern);

/* ----- per-tenant quotas & accounting ------------------------------------- */

/* Snapshot of one tenant's compile-service accounting (see
 * xgr_compile_service_tenant_stats). All counters are cumulative since
 * service creation except `inflight` and `bytes_resident`, which are
 * instantaneous. */
typedef struct xgr_tenant_stats {
  int64_t submitted;       /* jobs submitted by this tenant */
  int64_t registry_hits;   /* resolved instantly from the registry */
  int64_t compiled;        /* builds that ran to completion for it */
  int64_t quota_rejects;   /* submissions rejected by its quota */
  int64_t evictions;       /* its resident artifacts evicted under budget */
  int64_t inflight;        /* queued + running right now */
  uint64_t bytes_resident; /* registry bytes attributed to it right now */
  double compile_wait_ms;  /* summed submit->ready latency of its builds */
} xgr_tenant_stats;

/* Installs (or replaces) the admission quota for `tenant`. Zero for any
 * field = unlimited on that axis. Submissions over quota fail their ticket
 * immediately with XGR_ERROR_QUOTA_EXCEEDED — deterministic shedding, never
 * quarantined, safe to retry once the tenant's in-flight work drains.
 * Returns XGR_OK or a negative status (NULL service/tenant). */
xgr_status xgr_compile_service_set_tenant_quota(xgr_compile_service* service,
                                                const char* tenant,
                                                int64_t max_concurrent_compiles,
                                                int64_t max_queued,
                                                size_t max_resident_bytes);

/* Tenant-aware submission: like xgr_compile_service_submit_json_schema but
 * bills the job to `tenant` (quota checks + per-tenant stats). The tenant
 * name is NOT part of the content key — identical sources from different
 * tenants still share one build and one cached artifact. NULL or "" tenant
 * = the anonymous default tenant (never quota-checked). */
xgr_compile_ticket* xgr_compile_service_submit_json_schema_as(
    xgr_compile_service* service, const char* tenant, const char* schema_json);

/* Copies `tenant`'s accounting snapshot into `out`. Unknown tenants (never
 * quota'd, never submitted) report all-zero stats. Returns XGR_OK or a
 * negative status (NULL arguments). */
xgr_status xgr_compile_service_tenant_stats(const xgr_compile_service* service,
                                            const char* tenant,
                                            xgr_tenant_stats* out);

/* Non-blocking status probe: 1 = ready (await will not block), 0 = still
 * compiling, -1 = failed or cancelled (message via xgr_last_error()). */
int32_t xgr_compile_ticket_poll(const xgr_compile_ticket* ticket);

/* Blocks until the build resolves and returns the compiled grammar as a
 * caller-owned handle (same ownership as xgr_grammar_compile_*; release
 * with xgr_grammar_destroy()). Returns NULL if the build failed or was
 * cancelled (message via xgr_last_error()). May be called repeatedly; each
 * success returns a new handle over the same shared artifact. */
xgr_grammar* xgr_compile_ticket_await(xgr_compile_ticket* ticket);

/* Abandons this ticket's interest in the build. A queued build nobody else
 * is waiting for is dropped without running; a running or finished build is
 * unaffected. The ticket itself stays valid (poll reports -1 once
 * cancelled) and must still be destroyed. */
void xgr_compile_ticket_cancel(xgr_compile_ticket* ticket);

/* Releases the ticket handle. Destroying an un-awaited ticket implies
 * cancel (see above). NULL is a no-op. */
void xgr_compile_ticket_destroy(xgr_compile_ticket* ticket);

/* ----- matcher ------------------------------------------------------------ */

typedef struct xgr_matcher xgr_matcher;

/* Creates a fresh per-request matcher at the grammar's start state. The
 * grammar is retained internally, so destroying `grammar` afterwards is
 * fine. Caller-owned; release with xgr_matcher_destroy(). Returns NULL on
 * error. Matcher handles are single-threaded (see file header). */
xgr_matcher* xgr_matcher_create(const xgr_grammar* grammar);
/* Releases the handle (forks survive independently); NULL is a no-op. */
void xgr_matcher_destroy(xgr_matcher* matcher);

/* Number of 64-bit words a mask buffer needs for this matcher's vocabulary:
 * ceil(vocab_size / 64). */
size_t xgr_matcher_mask_words(const xgr_matcher* matcher);

/* Fills `mask_words` (length >= xgr_matcher_mask_words()) with the
 * next-token bitmask; bit i = 1 means token i may be sampled. The buffer is
 * caller-owned and only written on XGR_OK. XGR_ERROR covers NULL arguments,
 * an undersized buffer, and internal matcher failures (e.g. a pathological
 * grammar exceeding engine limits) — always a reportable runtime error, not
 * necessarily a programming mistake; details via xgr_last_error(). */
xgr_status xgr_matcher_fill_next_token_bitmask(xgr_matcher* matcher,
                                               uint64_t* mask_words,
                                               size_t num_words);

/* Advances the matcher by one sampled token. Returns 1 if accepted, 0 if the
 * token is not a legal continuation (state unchanged), -1 on error (e.g. a
 * token id outside the vocabulary). */
int32_t xgr_matcher_accept_token(xgr_matcher* matcher, int32_t token_id);

/* 1 when EOS is currently legal (the bytes accepted so far form a complete
 * sentence of the grammar), else 0. Never sets an error. */
int32_t xgr_matcher_can_terminate(const xgr_matcher* matcher);

/* Rolls back the last `count` accepted tokens (§3.3). Returns 1 on success,
 * 0 if fewer than `count` tokens are rollback-able, -1 on error. */
int32_t xgr_matcher_rollback_tokens(xgr_matcher* matcher, int32_t count);

/* ----- transactional k-token draft verification ---------------------------
 *
 * xgr_matcher_verify_draft() walks the `num_draft` token ids in `draft` as
 * one transaction and returns the length of the grammar-accepted prefix
 * (partial accept: 0 <= returned <= num_draft), or -1 on error. On success
 * the matcher has ADVANCED to the accepted prefix and the transaction is
 * OPEN: the caller MUST close it with exactly one xgr_matcher_commit_draft()
 * before any other state-mutating call on this handle. `draft` is borrowed
 * for the duration of the call only.
 *
 * When `mask_words` is non-NULL (length >= xgr_matcher_mask_words(), same
 * ownership as xgr_matcher_fill_next_token_bitmask) it receives the
 * next-token bitmask at the post-prefix state — the divergence mask a
 * sequential fill+accept loop would compute after the accepted tokens, at
 * the cost of one fill instead of one per draft token. When `terminated_out`
 * is non-NULL it receives 1 if the walk stopped at an EOS draft token while
 * termination was legal (the EOS is NOT counted in the returned prefix and
 * consumes no state), else 0.
 *
 * On error (-1) the matcher state is unchanged and no transaction is open.
 * Works on both grammar-backed and tag-dispatch handles. */
int32_t xgr_matcher_verify_draft(xgr_matcher* matcher, const int32_t* draft,
                                 int32_t num_draft, uint64_t* mask_words,
                                 size_t num_words, int32_t* terminated_out);

/* Closes the open draft transaction keeping the first `keep` accepted tokens
 * (0 <= keep <= the verify call's return value); the rest roll back via the
 * O(1) checkpoint restore. keep == 0 aborts the whole draft. Returns 1 on
 * success, 0 when keep < accepted on a backend without partial commit (the
 * full accepted prefix is then kept), -1 on error (no open transaction, or
 * keep out of range — the transaction state is unchanged in that case). */
int32_t xgr_matcher_commit_draft(xgr_matcher* matcher, int32_t keep);

/* Copies the forced continuation from the current state (Appendix B
 * jump-forward) into `buf` as a NUL-terminated string, possibly truncated.
 * Returns the full continuation length ("" = no forced continuation). */
size_t xgr_matcher_find_jump_forward_string(xgr_matcher* matcher, char* buf,
                                            size_t buf_len);

/* Restores the matcher to the start of generation (cheaper than destroying
 * and re-creating: the compiled grammar and cache are untouched). */
void xgr_matcher_reset(xgr_matcher* matcher);

/* O(1) state branch sharing the persistent stack pool (§3.3). The returned
 * handle is caller-owned (xgr_matcher_destroy()) and independent — either
 * side may advance, roll back, or be destroyed first — but it must be used
 * on the same thread as its parent (shared unsynchronized pool). Only
 * grammar-backed matchers (xgr_matcher_create) support forking; for
 * tag-dispatch matchers this returns NULL with an error. */
xgr_matcher* xgr_matcher_fork(const xgr_matcher* matcher);

/* ----- tag-dispatch composite matcher ------------------------------------- */

/* Creates a matcher for agentic structural tags via tag-dispatch
 * composition: unconstrained prose until one of `triggers` completes, then
 * the matching tag's `begin body end` segment (body constrained by that
 * tag's JSON schema; NULL or "" schema = any JSON), then prose again. Each
 * tag's segment grammar is compiled SEPARATELY through `service` (prefetch
 * priority) and cached in its registry by content, so a tool schema compiles
 * once per registry lifetime no matter how many configs or requests mention
 * it, and this call is fast when the tags are already known.
 *
 * `begins`, `schemas`, `ends` are parallel arrays of length `num_tags`
 * (`schemas` itself may be NULL = all bodies unconstrained JSON). Every
 * begin marker must start with at least one trigger; triggers must be
 * non-empty printable ASCII. `max_invocations` < 0 means unbounded.
 *
 * The returned handle supports the full xgr_matcher_* surface except
 * xgr_matcher_fork and xgr_matcher_rollback_tokens. It retains `service`'s
 * internals, so destroying `service` afterwards is fine. Caller-owned;
 * release with xgr_matcher_destroy(). Returns NULL on error. */
xgr_matcher* xgr_tag_dispatch_matcher_create(
    xgr_compile_service* service, const char* const* begins,
    const char* const* schemas, const char* const* ends, int32_t num_tags,
    const char* const* triggers, int32_t num_triggers,
    int32_t allow_free_text, int32_t max_invocations,
    int32_t require_invocation);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* XGRAMMAR_FFI_C_API_H_ */
