// CompileService: the asynchronous compilation front door of the grammar
// runtime.
//
// Grammar compilation plus mask-cache construction takes milliseconds to
// seconds (§3.1); the paper's serving co-design (§3.5) keeps that work off
// the decode critical path. GrammarCompiler::Compile* blocks the calling
// request for the full build — fine for a fixed grammar set, fatal for the
// agentic regime where distinct grammars arrive continuously. The service
// instead accepts a *job* and returns a *ticket*:
//
//   * requests for the same content key share one build (coalescing) —
//     including builds already in flight;
//   * builds run on the service's own ThreadPool, highest priority first
//     (interactive < normal < prefetch);
//   * a queued build whose every ticket has been cancelled or dropped is
//     abandoned without running (a build already running completes — its
//     artifact lands in the registry for the next requester);
//   * completion can be observed by polling, blocking, or a callback.
//
// Finished artifacts live in the service's GrammarRegistry (memory-budgeted
// LRU + optional disk tier), so a resubmitted key is a registry hit, a
// process restart warm-starts from disk, and memory stays bounded under a
// stream of novel grammars.
//
// Fault tolerance (the production hardening layer):
//   * per-job deadlines with cooperative cancellation between build passes
//     (StatusCode::kDeadlineExceeded);
//   * poison-grammar quarantine: keys that keep failing are rejected O(1)
//     with their cached error instead of re-occupying workers (kPoisoned);
//   * bounded queue with priority-aware shedding under overload
//     (kOverloaded, prefetch sheds first);
//   * every failed ticket carries a structured StatusCode via Code().
// Failure paths are exercised deterministically through the fault-point
// sites "compile.before_build" / "compile.after_grammar" /
// "compile.after_pda" (support/fault_point.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/adaptive_cache.h"
#include "pda/compiled_grammar.h"
#include "runtime/grammar_registry.h"
#include "support/status.h"
#include "support/thread_pool.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::runtime {

enum class GrammarKind : std::uint8_t {
  kEbnf,
  kJsonSchema,
  kRegex,
  kBuiltinJson,
  // One structural tag's `begin body end` segment grammar; source is
  // grammar::EncodeTagSegmentSource(tag). The unit the tag-dispatch
  // composite decoder (src/compose) prefetches and fetches per tool.
  kTagSegment,
};

struct CompileJob {
  GrammarKind kind = GrammarKind::kEbnf;
  std::string source;              // unused for kBuiltinJson
  std::string root_rule = "root";  // kEbnf only
  // Per-job deadline, measured from Submit(); 0 = none. A job whose deadline
  // expires while queued fails without building; a build in flight checks
  // cooperatively between pipeline passes (grammar -> PDA -> mask cache) and
  // aborts with StatusCode::kDeadlineExceeded. Not part of the content key:
  // coalesced submits share the FIRST submit's deadline.
  double deadline_ms = 0.0;
  // Accounting identity for multi-tenant serving: quota checks, per-tenant
  // stats, and resident-byte attribution key off this. NOT part of the
  // content key — identical grammars from different tenants still share one
  // build and one resident artifact (attributed to the first owner). Empty =
  // the anonymous default tenant.
  std::string tenant;
};

// The content key a job is coalesced and cached under (stable across
// processes; hash it with ContentHash for registry/disk addressing).
std::string CompileJobKey(const CompileJob& job);

enum class CompilePriority : std::uint8_t {
  kInteractive = 0,  // a request is waiting on this grammar right now
  kNormal = 1,
  kPrefetch = 2,  // speculative warm-up; yields to everything else
};

enum class CompileState : std::uint8_t {
  kPending,  // queued or building
  kReady,
  kFailed,
  kCancelled,
};

namespace detail {
struct CompileTask;
struct ServiceCore;
}  // namespace detail

// Observer handle for one Submit() call. Move-only; dropping the ticket
// releases its interest in the build, and a queued build with no remaining
// interest is abandoned (RAII cancellation). Tickets may outlive the
// service: once the service is destroyed, pending tickets resolve as
// cancelled.
class CompileTicket {
 public:
  CompileTicket() = default;
  CompileTicket(CompileTicket&& other) noexcept;
  CompileTicket& operator=(CompileTicket&& other) noexcept;
  CompileTicket(const CompileTicket&) = delete;
  CompileTicket& operator=(const CompileTicket&) = delete;
  ~CompileTicket();

  bool Valid() const { return task_ != nullptr; }
  CompileState State() const;
  bool Ready() const { return State() != CompileState::kPending; }

  // Blocks until the build resolves (at most `seconds`); returns true when
  // resolved. Never throws.
  bool WaitFor(double seconds) const;

  // Blocks until resolved and returns the artifact; throws xgr::CheckError
  // if the build failed or was cancelled.
  Artifact Get() const;

  // Non-blocking: the artifact when ready, nullptr while pending; throws on
  // failure/cancellation like Get().
  Artifact TryGet() const;

  // Error text after kFailed (empty otherwise).
  std::string Error() const;

  // Structured failure class once resolved: kOk for kReady (and while still
  // pending), kCancelled for kCancelled, and for kFailed the specific code —
  // kInvalidGrammar / kDeadlineExceeded / kOverloaded / kPoisoned / kInternal.
  StatusCode Code() const;

  // Releases this ticket's interest. Queued builds with no other interested
  // ticket are abandoned (State() becomes kCancelled for every holder);
  // running or finished builds are unaffected. Idempotent.
  void Cancel();

  std::uint64_t KeyHash() const;

 private:
  friend class CompileService;
  CompileTicket(std::shared_ptr<detail::CompileTask> task,
                std::shared_ptr<detail::ServiceCore> core);
  void Release();

  std::shared_ptr<detail::CompileTask> task_;
  std::shared_ptr<detail::ServiceCore> core_;
};

// Invoked exactly once when the build resolves, from a service worker thread
// (or inline from Submit() for registry hits): the artifact on success,
// nullptr on failure or cancellation. Must not block for long — it runs on
// the compile pool — and must not call back into the service's blocking APIs
// for its own key.
using CompileCallback = std::function<void(const Artifact&)>;

// Poison-grammar quarantine policy. A key whose build fails deterministically
// (StatusCode::kInvalidGrammar — the source itself is broken) is quarantined
// on the FIRST failure; transient failures (kInternal) quarantine only after
// `max_attempts` total failures. While quarantined, Submit() rejects the key
// in O(1) with the cached error (state kFailed, code kPoisoned) — no worker
// is occupied and no ticket waits. After `ttl_ms` the key earns exactly one
// probe build; another failure re-quarantines immediately.
struct QuarantineOptions {
  std::int64_t max_attempts = 3;
  double ttl_ms = 30'000.0;
};

struct CompileServiceOptions {
  int num_threads = 2;  // dedicated compile workers
  pda::CompileOptions compile_options = {};
  cache::AdaptiveCacheOptions cache_options = {};
  GrammarRegistryOptions registry = {};
  // Backpressure: maximum builds queued (not yet running) before Submit()
  // starts shedding. 0 = unbounded. When the queue is full, an arrival that
  // is strictly more urgent than the worst queued build evicts it (the
  // evicted tickets resolve kFailed/kOverloaded); otherwise the arrival
  // itself is rejected with kOverloaded — so kPrefetch sheds first and
  // interactive work is preserved.
  std::size_t max_queue_depth = 0;
  QuarantineOptions quarantine = {};
  // Monotonic clock in ms used for deadlines and quarantine TTLs. Null =
  // std::chrono::steady_clock. Tests inject a fake clock so deadline expiry
  // and TTL re-probes are exercised deterministically, without sleeps.
  std::uint64_t (*now_ms_fn)() = nullptr;
};

// Per-tenant admission limits. Each limit is checked at Submit() time and 0
// means unlimited. Rejections resolve the ticket kFailed with
// StatusCode::kQuotaExceeded — deterministic for the tenant's current load,
// so never quarantined and safe to retry after backoff.
struct TenantQuota {
  // Max builds this tenant may have in flight (queued + running) at once.
  std::int64_t max_concurrent_compiles = 0;
  // Max builds this tenant may have *queued* (not yet running) at once —
  // tighter than max_concurrent_compiles when workers are plentiful.
  std::int64_t max_queued = 0;
  // Once the tenant's attributed resident bytes reach this, new compiles are
  // rejected until evictions (or Clear()) bring it back under. Registry hits
  // and coalesced joins still succeed — they add no bytes.
  std::size_t max_resident_bytes = 0;
};

struct TenantStats {
  std::int64_t submitted = 0;
  std::int64_t registry_hits = 0;
  std::int64_t compiled = 0;        // successful resolutions owned by tenant
  std::int64_t quota_rejects = 0;
  std::int64_t evictions = 0;       // registry evictions of tenant-owned keys
  std::int64_t inflight = 0;        // queued + running right now
  std::size_t bytes_resident = 0;   // currently resident attributed bytes
  double compile_wait_ms = 0.0;     // cumulative Submit()->resolve wait
};

struct CompileServiceStats {
  std::int64_t submitted = 0;
  std::int64_t registry_hits = 0;  // resident artifact at submit time
  std::int64_t coalesced = 0;      // attached to an in-flight build
  std::int64_t builds_started = 0;
  std::int64_t compiled = 0;   // full builds (registry+disk miss)
  std::int64_t disk_loads = 0;  // resolved from the disk tier by a worker
  std::int64_t cancelled = 0;  // queued builds abandoned before running
  std::int64_t failed = 0;     // every kFailed resolution (all causes)
  std::int64_t deadline_expired = 0;   // failed with kDeadlineExceeded
  std::int64_t builds_aborted = 0;     // cancelled cooperatively mid-build
  std::int64_t shed = 0;               // queued builds evicted under overload
  std::int64_t overload_rejects = 0;   // submits refused at the door
  std::int64_t quarantine_rejects = 0; // submits refused by the failure memo
  std::int64_t quota_rejects = 0;      // submits refused by tenant quotas
  std::int64_t inflight = 0;  // queued+running now (leak detector: 0 at idle)
  double compile_seconds = 0.0;  // cumulative, full builds only
};

class CompileService {
 public:
  CompileService(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                 CompileServiceOptions options = {});

  // Cancels every still-queued build (their tickets resolve as kCancelled),
  // waits for running builds to finish, and joins the workers.
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  // Never blocks on compilation. Registry hit -> an already-ready ticket;
  // key already in flight -> a ticket on the shared build; otherwise the job
  // is queued by priority.
  CompileTicket Submit(CompileJob job,
                       CompilePriority priority = CompilePriority::kNormal,
                       CompileCallback on_done = {});

  // Blocking convenience: Submit(kInteractive) + Get().
  Artifact Compile(CompileJob job);

  GrammarRegistry& Registry();
  CompileServiceStats Stats() const;
  // The vocabulary every artifact of this service is built for.
  const std::shared_ptr<const tokenizer::TokenizerInfo>& Tokenizer() const;

  // Install / replace a tenant's admission limits. Takes effect on the next
  // Submit(); in-flight builds are never retroactively rejected.
  void SetTenantQuota(const std::string& tenant, TenantQuota quota);
  // Snapshot of one tenant's counters (zeroes for a never-seen tenant).
  TenantStats TenantStatsFor(const std::string& tenant) const;
  // Every tenant that has submitted, been quota-configured, or owns bytes.
  std::vector<std::pair<std::string, TenantStats>> AllTenantStats() const;

 private:
  static void RunOne(const std::shared_ptr<detail::ServiceCore>& core);
  bool QuarantineRejectLocked(const std::shared_ptr<detail::CompileTask>& task);
  bool QuotaRejectLocked(const std::shared_ptr<detail::CompileTask>& task);
  bool OverloadRejectLocked(
      const std::shared_ptr<detail::CompileTask>& task,
      std::shared_ptr<detail::CompileTask>* shed_task,
      std::vector<CompileCallback>* shed_callbacks);

  std::shared_ptr<detail::ServiceCore> core_;
  // Declared after core_ so workers (which hold core_ by shared_ptr) are
  // joined before anything else is torn down.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace xgr::runtime
