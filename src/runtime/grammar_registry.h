// GrammarRegistry: sharded, memory-budgeted LRU over compiled engine
// artifacts.
//
// The serving regime the paper targets (§3.5) — and the agentic workloads of
// XGrammar-2 — present a stream of *distinct, dynamically arriving* grammars.
// Memoizing every compiled artifact forever (what GrammarCompiler's memo map
// does) grows memory without bound; recompiling on every request stalls the
// decode path for seconds. The registry sits between: compiled artifacts are
// cached under a content hash, accounted by their real footprint
// (AdaptiveTokenMaskCache::MemoryBytes()), and evicted LRU-first once a
// configured budget is exceeded.
//
// Sharding: at batch scale the submit path hits the registry once per
// request, and a single mutex serializes all of them. The key space is
// partitioned into `num_shards` independent shards (ContentHash(key) %
// num_shards), each with its own mutex, LRU list, pin table, and stats; the
// memory budget is split evenly across shards (ceil division, so a nonzero
// budget never rounds to unlimited). num_shards=1 (the default) is exactly
// the classic single-lock registry.
//
// Pinning: artifacts are handed out as shared_ptrs, so eviction only drops
// the registry's own reference — a request mid-decode keeps its artifact
// alive for as long as it needs it. Evicted-but-still-live artifacts are
// remembered through weak_ptrs and re-adopted on the next lookup instead of
// being recompiled ("pin resurrection").
//
// Disk tier (optional): artifacts are persisted in the flat zero-copy "XGR3"
// format (src/artifact/) into content-hash-named files; loading is mmap +
// validate + view fix-up, so a warm start touches no heap for the mask
// arrays and every process mapping the same file shares one physical page
// set. Legacy "XGRK"-wrapped v2 envelopes (written by older builds) are
// still recognized by magic and loaded through the heap path — the two
// formats coexist in one directory. Writes go through a temp file + atomic
// rename so concurrent processes never observe a half-written artifact;
// loads re-validate checksums and the vocabulary pin and fall back to
// recompilation (deleting the bad file) on any mismatch.
//
// Identity: entries are keyed by the *full* content key (the compile job's
// kind + source text), never by its hash alone — FNV-1a is not collision
// resistant and a collision would silently decode requests under the wrong
// grammar's masks. The hash only names disk files, and each file embeds the
// full key, verified on load (a mismatched file is left in place for its
// true owner and reported as a miss).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/adaptive_cache.h"
#include "support/retry_policy.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::runtime {

// The unit the runtime layer traffics in: a fully preprocessed engine
// artifact (compiled PDA + adaptive token-mask cache).
using Artifact = std::shared_ptr<const cache::AdaptiveTokenMaskCache>;

// FNV-1a content hash used to key registry entries and name disk-tier files.
std::uint64_t ContentHash(std::string_view bytes);

struct GrammarRegistryOptions {
  // Resident-artifact budget in bytes; 0 = unlimited (no eviction).
  std::size_t memory_budget_bytes = 0;
  // Independent lock domains the key space is partitioned into. 1 (the
  // default) preserves the classic single-mutex registry; raise it when the
  // submit path contends (bench/artifact_io.cc measures the scaling).
  std::size_t num_shards = 1;
  // Directory for the disk tier; empty = memory only. Created on demand.
  std::string disk_dir;
  // Write every inserted artifact through to the disk tier.
  bool disk_write_through = true;
  // Backoff schedule for *transient* disk-tier I/O failures (unreadable
  // file, failed open/flush/rename). Corruption is never retried: a file
  // that fails validation is deleted and the caller recompiles — that
  // terminal path is unchanged. Retry exhaustion degrades gracefully: a
  // failed load is a miss (recompile), a failed store leaves the artifact
  // memory-only.
  support::RetryPolicy disk_retry = {};
};

struct GrammarRegistryStats {
  std::int64_t hits = 0;               // resident LRU hits
  std::int64_t pin_resurrections = 0;  // evicted-but-live artifacts re-adopted
  std::int64_t misses = 0;             // not resident, not pinned, not on disk
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  std::int64_t disk_hits = 0;    // loaded + validated from the disk tier
  std::int64_t disk_mmap_hits = 0;  // subset of disk_hits: zero-copy "XGR3"
  std::int64_t disk_legacy_hits = 0;  // subset of disk_hits: "XGRK" v2 heap
  std::int64_t disk_writes = 0;  // artifacts persisted to the disk tier
  std::int64_t disk_rejects = 0;  // corrupt/mismatched files discarded
  std::int64_t disk_retries = 0;  // transient I/O failures retried
  std::int64_t disk_retry_exhausted = 0;  // ops that failed every attempt
  // Submit-path lock telemetry: every counted acquisition of a shard mutex,
  // and the subset where try_lock failed and the thread had to block. The
  // contended fraction is the direct measure of what sharding buys — on a
  // host without enough cores to run lookups truly in parallel, wall-clock
  // throughput cannot show it, but this counter still can.
  std::int64_t lock_acquisitions = 0;
  std::int64_t lock_contended = 0;
  std::size_t memory_bytes = 0;   // current resident accounted bytes
  // Max resident bytes observed after any eviction pass completed — the
  // steady-state high-water mark the budget bounds. Aggregated across
  // shards this is the sum of per-shard high-water marks (each bounded by
  // its slice of the budget, so the sum is still bounded by the budget).
  std::size_t peak_memory_bytes = 0;
};

class GrammarRegistry {
 public:
  // Observer invoked (under a shard mutex) whenever a resident entry is
  // evicted past the budget — the hook tenant accounting hangs off. Must be
  // lock-light: it may take its own leaf lock but must never call back into
  // the registry or acquire any lock ordered before a shard mutex.
  using EvictionCallback =
      std::function<void(const std::string& key, std::size_t bytes)>;

  // `tokenizer` is the vocabulary every artifact in this registry was built
  // for; disk-tier loads validate their vocabulary pin against it.
  GrammarRegistry(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                  GrammarRegistryOptions options = {});

  GrammarRegistry(const GrammarRegistry&) = delete;
  GrammarRegistry& operator=(const GrammarRegistry&) = delete;

  // Full lookup: resident LRU, then the pinned (evicted-but-live) table,
  // then the disk tier. A disk hit is validated, adopted as resident (which
  // may evict), and returned. nullptr = genuine miss (counted).
  Artifact Lookup(std::string_view key);

  // Memory-only probe for fast paths that must not touch the filesystem.
  // Counts a hit on success and nothing on failure (the caller is expected
  // to follow up with Lookup()/Insert()).
  Artifact TryGetResident(std::string_view key);

  // Pure observation: is the key currently a *resident* (budget-accounted)
  // entry? Never resurrects pins, touches LRU order, or counts stats —
  // for tests and introspection only.
  bool IsResident(std::string_view key) const;

  // Adopts an artifact as resident (touching it most-recently-used if the
  // key already exists), evicts LRU entries past the budget, and — when the
  // disk tier is enabled — persists it (atomic rename, skipped if the file
  // already exists).
  void Insert(std::string_view key, const Artifact& artifact);

  // Drops every resident entry (disk tier untouched).
  void Clear();

  // Install the eviction observer. Not thread-safe against concurrent
  // registry traffic — call during setup, before requests flow.
  void SetEvictionCallback(EvictionCallback callback);

  // Aggregated across shards.
  GrammarRegistryStats Stats() const;
  std::size_t MemoryBytes() const;
  std::size_t MemoryBudgetBytes() const { return options_.memory_budget_bytes; }
  std::size_t NumShards() const { return shards_.size(); }
  bool HasDiskTier() const { return !options_.disk_dir.empty(); }

  // The disk-tier file an artifact with this key lives at (exposed so tests
  // can corrupt it); meaningless when the disk tier is disabled.
  std::string DiskPath(std::string_view key) const;

 private:
  struct Entry {
    Artifact artifact;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  // Transparent heterogeneous lookup so string_view keys don't allocate.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename V>
  using KeyMap = std::unordered_map<std::string, V, StringHash, std::equal_to<>>;

  // One independent lock domain. Everything inside is guarded by `mutex`.
  struct Shard {
    mutable std::mutex mutex;
    KeyMap<Entry> resident;
    std::list<std::string> lru;  // front = most recently used
    // Evicted entries whose artifacts may still be alive in requests.
    KeyMap<std::weak_ptr<const cache::AdaptiveTokenMaskCache>> pinned;
    GrammarRegistryStats stats;
  };

  Shard& ShardFor(std::string_view key) const {
    return *shards_[ContentHash(key) % shards_.size()];
  }

  // All *Locked helpers require the shard's mutex to be held.
  Artifact LookupResidentLocked(Shard& shard, std::string_view key);
  void AdoptLocked(Shard& shard, std::string_view key, const Artifact& artifact);
  void EvictPastBudgetLocked(Shard& shard);

  // Disk tier (no shard lock held during file IO).
  Artifact LoadFromDisk(Shard& shard, std::string_view key);
  void PersistToDisk(Shard& shard, std::string_view key,
                     const Artifact& artifact);

  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  GrammarRegistryOptions options_;
  std::size_t shard_budget_bytes_ = 0;  // per-shard slice; 0 = unlimited
  std::vector<std::unique_ptr<Shard>> shards_;
  EvictionCallback eviction_callback_;
};

}  // namespace xgr::runtime
