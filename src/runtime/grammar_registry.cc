#include "runtime/grammar_registry.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "serialize/serialize.h"
#include "support/fault_point.h"
#include "support/logging.h"
#include "support/retry_policy.h"

namespace xgr::runtime {

namespace fs = std::filesystem;

namespace {

// Disk-tier file wrapper around the serialize envelope: the full content key
// is embedded and verified on load, so a (possible, FNV-1a is not collision
// resistant) filename-hash collision can never hand a request the wrong
// grammar's masks.
constexpr char kDiskMagic[4] = {'X', 'G', 'R', 'K'};

std::string WrapWithKey(std::string_view key, const std::string& payload) {
  std::string bytes;
  bytes.reserve(sizeof(kDiskMagic) + sizeof(std::uint32_t) + key.size() +
                payload.size());
  bytes.append(kDiskMagic, sizeof(kDiskMagic));
  auto key_len = static_cast<std::uint32_t>(key.size());
  bytes.append(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
  bytes.append(key);
  bytes.append(payload);
  return bytes;
}

}  // namespace

std::uint64_t ContentHash(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

GrammarRegistry::GrammarRegistry(
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    GrammarRegistryOptions options)
    : tokenizer_(std::move(tokenizer)), options_(std::move(options)) {
  XGR_CHECK(tokenizer_ != nullptr) << "registry needs a tokenizer";
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.disk_dir, ec);
    XGR_CHECK(!ec) << "cannot create disk tier directory " << options_.disk_dir
                   << ": " << ec.message();
  }
}

std::string GrammarRegistry::DiskPath(std::string_view key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.xgr",
                static_cast<unsigned long long>(ContentHash(key)));
  return (fs::path(options_.disk_dir) / name).string();
}

Artifact GrammarRegistry::LookupResidentLocked(std::string_view key) {
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.artifact;
  }
  auto pit = pinned_.find(key);
  if (pit != pinned_.end()) {
    if (Artifact alive = pit->second.lock()) {
      pinned_.erase(pit);
      ++stats_.pin_resurrections;
      AdoptLocked(key, alive);
      return alive;
    }
    pinned_.erase(pit);  // expired — fall through to miss/disk
  }
  return nullptr;
}

bool GrammarRegistry::IsResident(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_.find(key) != resident_.end();
}

Artifact GrammarRegistry::TryGetResident(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Artifact found = LookupResidentLocked(key);
  if (found != nullptr) ++stats_.hits;
  return found;
}

Artifact GrammarRegistry::Lookup(std::string_view key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Artifact found = LookupResidentLocked(key);
    if (found != nullptr) {
      ++stats_.hits;
      return found;
    }
    if (options_.disk_dir.empty()) {
      ++stats_.misses;
      return nullptr;
    }
  }
  // Disk tier, outside the lock: loads are slow (read + validate + rebuild)
  // and must not serialize unrelated registry traffic. Two threads racing
  // the same key both load from disk; whichever adopts first is canonical
  // and the loser's copy is discarded — every caller must receive the *one*
  // shared artifact per key (duplicates would be invisible to both the LRU
  // accounting and the pin table).
  Artifact loaded = LoadFromDisk(key);
  std::lock_guard<std::mutex> lock(mutex_);
  Artifact raced = LookupResidentLocked(key);
  if (raced != nullptr) {
    ++stats_.hits;
    return raced;
  }
  if (loaded == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.disk_hits;
  AdoptLocked(key, loaded);
  return loaded;
}

void GrammarRegistry::Insert(std::string_view key, const Artifact& artifact) {
  XGR_CHECK(artifact != nullptr) << "cannot register a null artifact";
  if (!options_.disk_dir.empty() && options_.disk_write_through) {
    PersistToDisk(key, artifact);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.inserts;
  AdoptLocked(key, artifact);
}

void GrammarRegistry::AdoptLocked(std::string_view key,
                                  const Artifact& artifact) {
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  auto pit = pinned_.find(key);
  if (pit != pinned_.end()) pinned_.erase(pit);
  lru_.emplace_front(key);
  Entry entry;
  entry.artifact = artifact;
  entry.bytes = artifact->MemoryBytes();
  entry.lru_it = lru_.begin();
  stats_.memory_bytes += entry.bytes;
  resident_.emplace(std::string(key), std::move(entry));
  EvictPastBudgetLocked();
  if (stats_.memory_bytes > stats_.peak_memory_bytes) {
    stats_.peak_memory_bytes = stats_.memory_bytes;
  }
}

void GrammarRegistry::EvictPastBudgetLocked() {
  if (options_.memory_budget_bytes == 0) return;
  // Sweep expired pins first: under a stream of never-repeated grammars an
  // evicted key is never looked up again, so without this the weak_ptr
  // table would grow by one node per distinct grammar ever evicted.
  for (auto it = pinned_.begin(); it != pinned_.end();) {
    it = it->second.expired() ? pinned_.erase(it) : std::next(it);
  }
  // LRU-first, including — as the final resort — the just-inserted entry:
  // an artifact bigger than the whole budget must not stay resident (its
  // caller still holds it; a later lookup resurrects it through the pin
  // table for as long as it stays live).
  while (stats_.memory_bytes > options_.memory_budget_bytes && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = resident_.find(victim);
    XGR_DCHECK(it != resident_.end());
    stats_.memory_bytes -= it->second.bytes;
    pinned_[victim] = it->second.artifact;  // weak: lives while callers do
    resident_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void GrammarRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  resident_.clear();
  lru_.clear();
  pinned_.clear();
  stats_.memory_bytes = 0;
}

GrammarRegistryStats GrammarRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t GrammarRegistry::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.memory_bytes;
}

Artifact GrammarRegistry::LoadFromDisk(std::string_view key) {
  const std::string path = DiskPath(key);
  std::string bytes;
  bool file_exists = true;
  // The read itself can fail transiently (network filesystem blip, injected
  // fault); retry with backoff before concluding anything. A missing file is
  // terminal (plain miss), and validation failures below are terminal by
  // design — corruption does not heal on retry.
  support::RetryStats retry_stats;
  const bool read_ok = support::RetryTransient(
      options_.disk_retry,
      [&] {
        // Fault site: transient read error (kFail => this attempt fails).
        if (XGR_FAULT_HIT("registry.disk.read")) return false;
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          file_exists = false;
          return true;  // no file — plain miss, not a reject
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (in.bad()) return false;  // stream-level read failure
        bytes = std::move(buffer).str();
        return true;
      },
      &retry_stats);
  if (retry_stats.retries > 0 || !read_ok) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.disk_retries += retry_stats.retries;
    if (!read_ok) ++stats_.disk_retry_exhausted;
  }
  if (!read_ok) {
    XGR_LOG_INFO << "disk tier: read of " << path
                 << " failed after " << retry_stats.attempts
                 << " attempts; treating as miss";
    return nullptr;
  }
  if (!file_exists) return nullptr;
  // Fault site: read corruption — flip a payload byte so the validation
  // pipeline below (checksum/deserialize) exercises its delete+recompile
  // terminal path under injection.
  if (XGR_FAULT_HIT("registry.disk.read_corrupt") && !bytes.empty()) {
    bytes[bytes.size() / 2] ^= 0x40;
  }
  // Unwrap and verify the embedded key before trusting the payload.
  const std::size_t header = sizeof(kDiskMagic) + sizeof(std::uint32_t);
  std::uint32_t key_len = 0;
  if (bytes.size() >= header) {
    std::memcpy(&key_len, bytes.data() + sizeof(kDiskMagic), sizeof(key_len));
  }
  if (bytes.size() < header ||
      std::memcmp(bytes.data(), kDiskMagic, sizeof(kDiskMagic)) != 0 ||
      bytes.size() - header < key_len) {
    XGR_LOG_INFO << "discarding malformed disk-tier file " << path;
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_rejects;
    return nullptr;
  }
  if (std::string_view(bytes.data() + header, key_len) != key) {
    // Filename-hash collision with a *different* grammar: this file is valid
    // for its true owner, so leave it alone and report a miss for us.
    XGR_LOG_INFO << "disk-tier filename collision at " << path
                 << " (different content key); treating as miss";
    return nullptr;
  }
  try {
    // Validates the envelope, payload checksum, and vocabulary pin; throws
    // on truncation, bit flips, or a cache built for a different tokenizer.
    return serialize::DeserializeEngineArtifact(
        std::string_view(bytes).substr(header + key_len), tokenizer_);
  } catch (const std::exception& error) {
    XGR_LOG_INFO << "discarding corrupt disk-tier artifact " << path << ": "
                 << error.what();
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_rejects;
    return nullptr;
  }
}

void GrammarRegistry::PersistToDisk(std::string_view key,
                                    const Artifact& artifact) {
  const std::string path = DiskPath(key);
  std::error_code ec;
  if (fs::exists(path, ec)) return;  // content-addressed: identical payload
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string bytes =
      WrapWithKey(key, serialize::SerializeEngineArtifact(*artifact));
  // Every failure mode here — failed open (e.g. ENOSPC on a full volume),
  // short write caught by the flush check, failed rename — is treated as
  // transient and retried with backoff; a fresh temp file per attempt. After
  // exhaustion the artifact simply stays memory-only (the disk tier is an
  // optimization, never a correctness dependency).
  support::RetryStats retry_stats;
  const bool write_ok = support::RetryTransient(
      options_.disk_retry,
      [&] {
        // Fault site: the volume is out of space — opening the temp file (or
        // any write to it) fails outright.
        if (XGR_FAULT_HIT("registry.disk.write_enospc")) return false;
        const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                                "." + std::to_string(tmp_counter.fetch_add(1));
        std::size_t write_len = bytes.size();
        // Fault site: short write — only part of the payload reaches the
        // file before the device reports an error at flush time.
        if (XGR_FAULT_HIT("registry.disk.write_short")) write_len /= 2;
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(bytes.data(), static_cast<std::streamsize>(write_len));
        // Flush explicitly: a close-time failure (e.g. ENOSPC) inside the
        // destructor would be unobservable and the rename below would
        // publish a truncated artifact under its content-addressed name.
        out.flush();
        if (!out || write_len != bytes.size()) {
          out.close();
          std::error_code remove_ec;
          fs::remove(tmp, remove_ec);
          return false;
        }
        out.close();
        // Atomic publish: readers see either no file or the full artifact.
        std::error_code rename_ec;
        fs::rename(tmp, path, rename_ec);
        if (rename_ec) {
          std::error_code remove_ec;
          fs::remove(tmp, remove_ec);
          return false;
        }
        return true;
      },
      &retry_stats);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.disk_retries += retry_stats.retries;
  if (write_ok) {
    ++stats_.disk_writes;
  } else {
    ++stats_.disk_retry_exhausted;
    XGR_LOG_INFO << "disk tier: persisting " << path << " failed after "
                 << retry_stats.attempts << " attempts; artifact stays "
                 << "memory-only";
  }
}

}  // namespace xgr::runtime
