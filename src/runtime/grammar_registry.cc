#include "runtime/grammar_registry.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "artifact/artifact_format.h"
#include "artifact/artifact_reader.h"
#include "artifact/artifact_writer.h"
#include "artifact/mapped_file.h"
#include "serialize/serialize.h"
#include "support/fault_point.h"
#include "support/logging.h"
#include "support/retry_policy.h"

namespace xgr::runtime {

namespace fs = std::filesystem;

namespace {

// Legacy disk-tier wrapper around the serialize-v2 envelope: magic + embedded
// content key + payload. New files are written in the flat "XGR3" format
// (src/artifact/); this magic is only ever *read*, so directories written by
// older builds keep warm-starting across the format change.
constexpr char kLegacyDiskMagic[4] = {'X', 'G', 'R', 'K'};

// Unwraps a legacy "XGRK" file: validates magic + key, then hands the inner
// envelope to the v2 heap deserializer. Returns nullptr for a *collision*
// (valid file, different key — leave it for its true owner); throws on
// malformed framing so the caller's corruption path deletes the file.
Artifact LoadLegacyDiskBytes(
    std::string_view bytes, std::string_view key,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& tokenizer) {
  const std::size_t header = sizeof(kLegacyDiskMagic) + sizeof(std::uint32_t);
  std::uint32_t key_len = 0;
  if (bytes.size() >= header) {
    std::memcpy(&key_len, bytes.data() + sizeof(kLegacyDiskMagic),
                sizeof(key_len));
  }
  if (bytes.size() < header ||
      std::memcmp(bytes.data(), kLegacyDiskMagic, sizeof(kLegacyDiskMagic)) !=
          0 ||
      bytes.size() - header < key_len) {
    throw StatusError(StatusCode::kCorruptArtifact,
                      "legacy disk artifact: malformed key wrapper");
  }
  if (std::string_view(bytes.data() + header, key_len) != key) {
    return nullptr;  // filename-hash collision: not ours, not corrupt
  }
  // Validates the envelope, payload checksum, and vocabulary pin; throws
  // on truncation, bit flips, or a cache built for a different tokenizer.
  return serialize::DeserializeEngineArtifact(bytes.substr(header + key_len),
                                              tokenizer);
}

}  // namespace

std::uint64_t ContentHash(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

GrammarRegistry::GrammarRegistry(
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    GrammarRegistryOptions options)
    : tokenizer_(std::move(tokenizer)), options_(std::move(options)) {
  XGR_CHECK(tokenizer_ != nullptr) << "registry needs a tokenizer";
  XGR_CHECK(options_.num_shards >= 1) << "registry needs at least one shard";
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Ceil division: a nonzero budget must never round down to 0 (= unlimited)
  // for any shard.
  shard_budget_bytes_ =
      options_.memory_budget_bytes == 0
          ? 0
          : (options_.memory_budget_bytes + options_.num_shards - 1) /
                options_.num_shards;
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.disk_dir, ec);
    XGR_CHECK(!ec) << "cannot create disk tier directory " << options_.disk_dir
                   << ": " << ec.message();
  }
}

std::string GrammarRegistry::DiskPath(std::string_view key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.xgr",
                static_cast<unsigned long long>(ContentHash(key)));
  return (fs::path(options_.disk_dir) / name).string();
}

void GrammarRegistry::SetEvictionCallback(EvictionCallback callback) {
  eviction_callback_ = std::move(callback);
}

namespace {

// Submit-path shard lock with contention telemetry: a failed try_lock is a
// contended acquisition — the futex round-trip sharding exists to avoid.
// The counters live behind the same mutex, so they're bumped post-acquire.
std::unique_lock<std::mutex> LockCounted(std::mutex& mutex, bool* contended) {
  std::unique_lock<std::mutex> lock(mutex, std::try_to_lock);
  *contended = !lock.owns_lock();
  if (*contended) lock.lock();
  return lock;
}

}  // namespace

Artifact GrammarRegistry::LookupResidentLocked(Shard& shard,
                                               std::string_view key) {
  auto it = shard.resident.find(key);
  if (it != shard.resident.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.artifact;
  }
  auto pit = shard.pinned.find(key);
  if (pit != shard.pinned.end()) {
    if (Artifact alive = pit->second.lock()) {
      shard.pinned.erase(pit);
      ++shard.stats.pin_resurrections;
      AdoptLocked(shard, key, alive);
      return alive;
    }
    shard.pinned.erase(pit);  // expired — fall through to miss/disk
  }
  return nullptr;
}

bool GrammarRegistry::IsResident(std::string_view key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.resident.find(key) != shard.resident.end();
}

Artifact GrammarRegistry::TryGetResident(std::string_view key) {
  Shard& shard = ShardFor(key);
  bool contended = false;
  auto lock = LockCounted(shard.mutex, &contended);
  ++shard.stats.lock_acquisitions;
  shard.stats.lock_contended += contended ? 1 : 0;
  Artifact found = LookupResidentLocked(shard, key);
  if (found != nullptr) ++shard.stats.hits;
  return found;
}

Artifact GrammarRegistry::Lookup(std::string_view key) {
  Shard& shard = ShardFor(key);
  {
    bool contended = false;
    auto lock = LockCounted(shard.mutex, &contended);
    ++shard.stats.lock_acquisitions;
    shard.stats.lock_contended += contended ? 1 : 0;
    Artifact found = LookupResidentLocked(shard, key);
    if (found != nullptr) {
      ++shard.stats.hits;
      return found;
    }
    if (options_.disk_dir.empty()) {
      ++shard.stats.misses;
      return nullptr;
    }
  }
  // Disk tier, outside the lock: loads are slow (read + validate + rebuild)
  // and must not serialize unrelated registry traffic. Two threads racing
  // the same key both load from disk; whichever adopts first is canonical
  // and the loser's copy is discarded — every caller must receive the *one*
  // shared artifact per key (duplicates would be invisible to both the LRU
  // accounting and the pin table).
  Artifact loaded = LoadFromDisk(shard, key);
  const bool mmap_backed = loaded != nullptr && loaded->IsMapped();
  std::lock_guard<std::mutex> lock(shard.mutex);
  Artifact raced = LookupResidentLocked(shard, key);
  if (raced != nullptr) {
    ++shard.stats.hits;
    return raced;
  }
  if (loaded == nullptr) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.disk_hits;
  if (mmap_backed) {
    ++shard.stats.disk_mmap_hits;
  } else {
    ++shard.stats.disk_legacy_hits;
  }
  AdoptLocked(shard, key, loaded);
  return loaded;
}

void GrammarRegistry::Insert(std::string_view key, const Artifact& artifact) {
  XGR_CHECK(artifact != nullptr) << "cannot register a null artifact";
  Shard& shard = ShardFor(key);
  if (!options_.disk_dir.empty() && options_.disk_write_through) {
    PersistToDisk(shard, key, artifact);
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.inserts;
  AdoptLocked(shard, key, artifact);
}

void GrammarRegistry::AdoptLocked(Shard& shard, std::string_view key,
                                  const Artifact& artifact) {
  auto it = shard.resident.find(key);
  if (it != shard.resident.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  auto pit = shard.pinned.find(key);
  if (pit != shard.pinned.end()) shard.pinned.erase(pit);
  shard.lru.emplace_front(key);
  Entry entry;
  entry.artifact = artifact;
  entry.bytes = artifact->MemoryBytes();
  entry.lru_it = shard.lru.begin();
  shard.stats.memory_bytes += entry.bytes;
  shard.resident.emplace(std::string(key), std::move(entry));
  EvictPastBudgetLocked(shard);
  if (shard.stats.memory_bytes > shard.stats.peak_memory_bytes) {
    shard.stats.peak_memory_bytes = shard.stats.memory_bytes;
  }
}

void GrammarRegistry::EvictPastBudgetLocked(Shard& shard) {
  if (shard_budget_bytes_ == 0) return;
  // Sweep expired pins first: under a stream of never-repeated grammars an
  // evicted key is never looked up again, so without this the weak_ptr
  // table would grow by one node per distinct grammar ever evicted.
  for (auto it = shard.pinned.begin(); it != shard.pinned.end();) {
    it = it->second.expired() ? shard.pinned.erase(it) : std::next(it);
  }
  // LRU-first, including — as the final resort — the just-inserted entry:
  // an artifact bigger than the whole budget must not stay resident (its
  // caller still holds it; a later lookup resurrects it through the pin
  // table for as long as it stays live).
  while (shard.stats.memory_bytes > shard_budget_bytes_ && !shard.lru.empty()) {
    const std::string& victim = shard.lru.back();
    auto it = shard.resident.find(victim);
    XGR_DCHECK(it != shard.resident.end());
    const std::size_t victim_bytes = it->second.bytes;
    shard.stats.memory_bytes -= victim_bytes;
    shard.pinned[victim] = it->second.artifact;  // weak: lives while callers do
    if (eviction_callback_) eviction_callback_(victim, victim_bytes);
    shard.resident.erase(it);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void GrammarRegistry::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->resident.clear();
    shard->lru.clear();
    shard->pinned.clear();
    shard->stats.memory_bytes = 0;
  }
}

GrammarRegistryStats GrammarRegistry::Stats() const {
  GrammarRegistryStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const GrammarRegistryStats& s = shard->stats;
    total.hits += s.hits;
    total.pin_resurrections += s.pin_resurrections;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.disk_hits += s.disk_hits;
    total.disk_mmap_hits += s.disk_mmap_hits;
    total.disk_legacy_hits += s.disk_legacy_hits;
    total.disk_writes += s.disk_writes;
    total.disk_rejects += s.disk_rejects;
    total.disk_retries += s.disk_retries;
    total.disk_retry_exhausted += s.disk_retry_exhausted;
    total.lock_acquisitions += s.lock_acquisitions;
    total.lock_contended += s.lock_contended;
    total.memory_bytes += s.memory_bytes;
    total.peak_memory_bytes += s.peak_memory_bytes;
  }
  return total;
}

std::size_t GrammarRegistry::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->stats.memory_bytes;
  }
  return total;
}

Artifact GrammarRegistry::LoadFromDisk(Shard& shard, std::string_view key) {
  const std::string path = DiskPath(key);
  std::shared_ptr<const artifact::MappedFile> file;
  bool file_exists = true;
  // The open/map itself can fail transiently (network filesystem blip,
  // injected fault); retry with backoff before concluding anything. A
  // missing file is terminal (plain miss), and validation failures below are
  // terminal by design — corruption does not heal on retry.
  support::RetryStats retry_stats;
  const bool read_ok = support::RetryTransient(
      options_.disk_retry,
      [&] {
        // Fault site: transient read error (kFail => this attempt fails).
        if (XGR_FAULT_HIT("registry.disk.read")) return false;
        std::error_code ec;
        if (!fs::exists(path, ec)) {
          file_exists = false;
          return true;  // no file — plain miss, not a reject
        }
        file = artifact::MappedFile::Open(path);
        return file != nullptr;
      },
      &retry_stats);
  if (retry_stats.retries > 0 || !read_ok) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats.disk_retries += retry_stats.retries;
    if (!read_ok) ++shard.stats.disk_retry_exhausted;
  }
  if (!read_ok) {
    XGR_LOG_INFO << "disk tier: read of " << path << " failed after "
                 << retry_stats.attempts << " attempts; treating as miss";
    return nullptr;
  }
  if (!file_exists) return nullptr;

  std::string_view bytes = file->bytes();
  std::shared_ptr<const void> backing = file;
  // Fault site: read corruption — flip a payload byte so the validation
  // pipeline below (checksum/deserialize) exercises its delete+recompile
  // terminal path under injection. The mapping is read-only, so the flip
  // happens on a heap copy that then backs the load attempt.
  if (XGR_FAULT_HIT("registry.disk.read_corrupt") && !bytes.empty()) {
    auto corrupted = std::make_shared<std::string>(bytes);
    (*corrupted)[corrupted->size() / 2] ^= 0x40;
    bytes = *corrupted;
    backing = std::move(corrupted);
  }

  try {
    switch (artifact::SniffArtifactFormat(bytes)) {
      case artifact::ArtifactFormat::kFlatV3: {
        // Collision check before the full load: a well-formed file whose
        // embedded key differs is valid for its true owner — leave it in
        // place and report a miss (never delete, never serve).
        if (artifact::PeekContentKey(bytes) != key) {
          XGR_LOG_INFO << "disk-tier filename collision at " << path
                       << " (different content key); treating as miss";
          return nullptr;
        }
        artifact::LoadOptions load_options;
        load_options.expect_content_key = std::string(key);
        return artifact::LoadFlatArtifactBytes(std::move(backing), bytes,
                                               tokenizer_, load_options);
      }
      case artifact::ArtifactFormat::kDiskEnvelope: {
        // Legacy v2 file from an older build: heap path (satellite fallback).
        Artifact loaded = LoadLegacyDiskBytes(bytes, key, tokenizer_);
        if (loaded == nullptr) {
          XGR_LOG_INFO << "disk-tier filename collision at " << path
                       << " (different content key); treating as miss";
        }
        return loaded;
      }
      default:
        throw StatusError(StatusCode::kCorruptArtifact,
                          "unrecognized disk artifact magic");
    }
  } catch (const std::exception& error) {
    XGR_LOG_INFO << "discarding corrupt disk-tier artifact " << path << ": "
                 << error.what();
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.disk_rejects;
    return nullptr;
  }
}

void GrammarRegistry::PersistToDisk(Shard& shard, std::string_view key,
                                    const Artifact& artifact) {
  const std::string path = DiskPath(key);
  std::error_code ec;
  if (fs::exists(path, ec)) return;  // content-addressed: identical payload
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string bytes = artifact::BuildFlatArtifact(*artifact, key);
  // Every failure mode here — failed open (e.g. ENOSPC on a full volume),
  // short write caught by the flush check, failed rename — is treated as
  // transient and retried with backoff; a fresh temp file per attempt. After
  // exhaustion the artifact simply stays memory-only (the disk tier is an
  // optimization, never a correctness dependency).
  support::RetryStats retry_stats;
  const bool write_ok = support::RetryTransient(
      options_.disk_retry,
      [&] {
        // Fault site: the volume is out of space — opening the temp file (or
        // any write to it) fails outright.
        if (XGR_FAULT_HIT("registry.disk.write_enospc")) return false;
        const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                                "." + std::to_string(tmp_counter.fetch_add(1));
        std::size_t write_len = bytes.size();
        // Fault site: short write — only part of the payload reaches the
        // file before the device reports an error at flush time.
        if (XGR_FAULT_HIT("registry.disk.write_short")) write_len /= 2;
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(bytes.data(), static_cast<std::streamsize>(write_len));
        // Flush explicitly: a close-time failure (e.g. ENOSPC) inside the
        // destructor would be unobservable and the rename below would
        // publish a truncated artifact under its content-addressed name.
        out.flush();
        if (!out || write_len != bytes.size()) {
          out.close();
          std::error_code remove_ec;
          fs::remove(tmp, remove_ec);
          return false;
        }
        out.close();
        // Atomic publish: readers see either no file or the full artifact.
        std::error_code rename_ec;
        fs::rename(tmp, path, rename_ec);
        if (rename_ec) {
          std::error_code remove_ec;
          fs::remove(tmp, remove_ec);
          return false;
        }
        return true;
      },
      &retry_stats);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats.disk_retries += retry_stats.retries;
  if (write_ok) {
    ++shard.stats.disk_writes;
  } else {
    ++shard.stats.disk_retry_exhausted;
    XGR_LOG_INFO << "disk tier: persisting " << path << " failed after "
                 << retry_stats.attempts << " attempts; artifact stays "
                 << "memory-only";
  }
}

}  // namespace xgr::runtime
