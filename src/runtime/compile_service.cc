#include "runtime/compile_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/grammar_compiler.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "grammar/regex_to_grammar.h"
#include "grammar/structural_tag.h"
#include "support/fault_point.h"
#include "support/logging.h"
#include "support/timer.h"

namespace xgr::runtime {

std::string CompileJobKey(const CompileJob& job) {
  // The canonical builders in cache/grammar_compiler.h — shared with
  // GrammarCompiler's memo so both front doors address the same artifact
  // space by construction.
  switch (job.kind) {
    case GrammarKind::kEbnf:
      return cache::EbnfArtifactKey(job.root_rule, job.source);
    case GrammarKind::kJsonSchema:
      return cache::JsonSchemaArtifactKey(job.source);
    case GrammarKind::kRegex:
      return cache::RegexArtifactKey(job.source);
    case GrammarKind::kBuiltinJson:
      return cache::BuiltinJsonArtifactKey();
    case GrammarKind::kTagSegment:
      return cache::TagSegmentArtifactKey(job.source);
  }
  XGR_UNREACHABLE();
}

namespace detail {

struct CompileTask {
  std::string key;             // full content key: the identity (exact)
  std::uint64_t key_hash = 0;  // ContentHash(key), for display/addressing
  CompileJob job;
  CompilePriority priority = CompilePriority::kNormal;
  std::uint64_t seq = 0;  // FIFO tie-break within a priority class
  double deadline_ms = 0.0;     // from the first submit's job; 0 = none
  std::uint64_t submit_ms = 0;  // service clock at Submit()
  std::string tenant;           // the FIRST submitter's tenant (owner)

  // Guarded by ServiceCore::mutex.
  bool queued = false;  // in the heap and eligible to run
  bool tenant_running = false;  // counted in the tenant's running total
  int interest = 0;     // live tickets; 0 while queued => abandon
  std::vector<CompileCallback> callbacks;
  std::string error;
  StatusCode code = StatusCode::kOk;  // written before state leaves kPending

  // state is written under the lock but read lock-free by pollers; the
  // error/code fields it guards are published-before via the store (the
  // artifact itself lives solely in the promise/shared_future).
  std::atomic<CompileState> state{CompileState::kPending};
  std::promise<Artifact> promise;
  std::shared_future<Artifact> future;
};

// Per-key failure history backing the poison-grammar quarantine.
struct FailureMemo {
  std::int64_t attempts = 0;  // failed builds since the last success/probe
  std::string error;          // last failure's message (served to rejects)
  StatusCode code = StatusCode::kInternal;
  bool poisoned = false;
  std::uint64_t quarantined_until_ms = 0;
};

// Per-tenant accounting. Its mutex is a LEAF in the lock order: it is taken
// under ServiceCore::mutex (submit-path checks), under a registry shard
// mutex (the eviction callback), and bare (stats snapshots) — and never
// acquires any other lock itself. Held by shared_ptr so the registry's
// eviction callback stays valid through service teardown ordering.
struct TenantTable {
  struct TenantState {
    TenantQuota quota;
    TenantStats stats;  // stats.inflight counts queued + running
    std::int64_t running_now = 0;  // claimed by a worker, not yet resolved
  };
  mutable std::mutex mutex;
  std::unordered_map<std::string, TenantState> tenants;
  // key -> (owning tenant, accounted bytes) for currently resident,
  // attributed artifacts. Ownership = the first tenant whose build or disk
  // load made the key resident.
  std::unordered_map<std::string, std::pair<std::string, std::size_t>> owners;
};

struct ServiceCore {
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer;
  CompileServiceOptions options;
  std::unique_ptr<GrammarRegistry> registry;
  std::shared_ptr<TenantTable> tenant_table = std::make_shared<TenantTable>();

  mutable std::mutex mutex;
  bool shutdown = false;
  std::uint64_t next_seq = 0;
  // Keyed coalescing table: every queued or running build, exactly once.
  // Keyed by the full content key — a hash is not an identity.
  std::unordered_map<std::string, std::shared_ptr<CompileTask>> inflight;
  // Priority heap over queued builds (best = lowest (priority, seq)).
  // Cancelled entries stay until a worker drains them.
  std::vector<std::shared_ptr<CompileTask>> heap;
  // Queued-and-eligible builds (heap entries minus abandoned ones): the
  // quantity max_queue_depth bounds.
  std::size_t queued_count = 0;
  // Failure memos, by full content key. Also the quarantine set.
  std::unordered_map<std::string, FailureMemo> failures;
  CompileServiceStats stats;
};

namespace {

// std::push_heap keeps the *largest* element first, so "worse-than" ordering
// makes the front the highest-priority (lowest enum), oldest job.
bool WorseOrder(const std::shared_ptr<CompileTask>& a,
                const std::shared_ptr<CompileTask>& b) {
  if (a->priority != b->priority) return a->priority > b->priority;
  return a->seq > b->seq;
}

// Service clock (ms, monotonic). Injectable for deterministic deadline and
// quarantine-TTL tests.
std::uint64_t NowMs(const ServiceCore& core) {
  if (core.options.now_ms_fn != nullptr) return core.options.now_ms_fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Requires core->mutex. Detaches the task from the coalescing table, stamps
// the outcome, and hands back the callbacks; the caller must set the promise
// (the single home of the artifact value) and invoke them *after* unlocking
// (callbacks are user code).
std::vector<CompileCallback> FinalizeLocked(ServiceCore* core,
                                            const std::shared_ptr<CompileTask>& task,
                                            std::string error,
                                            CompileState state,
                                            StatusCode code) {
  auto it = core->inflight.find(task->key);
  if (it != core->inflight.end() && it->second == task) core->inflight.erase(it);
  if (task->queued) --core->queued_count;
  if (task->queued || task->tenant_running) {
    // The task was counted in its tenant's inflight when it entered the
    // queue; this is the single exit point (leaf lock under core->mutex).
    std::lock_guard<std::mutex> tenant_lock(core->tenant_table->mutex);
    TenantTable::TenantState& tenant =
        core->tenant_table->tenants[task->tenant];
    --tenant.stats.inflight;
    if (task->tenant_running) --tenant.running_now;
  }
  task->tenant_running = false;
  task->queued = false;
  task->error = std::move(error);
  task->code = code;
  task->state.store(state);
  return std::exchange(task->callbacks, {});
}

grammar::Grammar BuildGrammar(const CompileJob& job) {
  switch (job.kind) {
    case GrammarKind::kEbnf:
      return grammar::ParseEbnfOrThrow(job.source, job.root_rule);
    case GrammarKind::kJsonSchema:
      return grammar::JsonSchemaTextToGrammar(job.source);
    case GrammarKind::kRegex:
      return grammar::RegexToGrammar(job.source);
    case GrammarKind::kBuiltinJson:
      return grammar::BuiltinJsonGrammar();
    case GrammarKind::kTagSegment:
      return grammar::BuildTagSegmentGrammar(
          grammar::DecodeTagSegmentSource(job.source));
  }
  XGR_UNREACHABLE();
}

// Cooperative abort point between build pipeline passes: a build whose every
// ticket has been released, or whose deadline expired, stops here instead of
// finishing work nobody wants. Throws StatusError; the worker's catch block
// classifies it.
void CheckAbort(const std::shared_ptr<ServiceCore>& core,
                const std::shared_ptr<CompileTask>& task) {
  {
    std::lock_guard<std::mutex> lock(core->mutex);
    if (task->interest == 0) {
      throw StatusError(StatusCode::kCancelled,
                        "build abandoned mid-flight: every ticket released");
    }
  }
  if (task->deadline_ms > 0.0 &&
      static_cast<double>(NowMs(*core) - task->submit_ms) >= task->deadline_ms) {
    throw StatusError(StatusCode::kDeadlineExceeded,
                      "compile deadline exceeded mid-build");
  }
}

Artifact BuildArtifact(const std::shared_ptr<ServiceCore>& core,
                       const std::shared_ptr<CompileTask>& task) {
  // Fault site: an injected transient/internal compile failure.
  XGR_FAULT_HIT("compile.before_build");
  grammar::Grammar grammar = BuildGrammar(task->job);
  // The post-pass sites run callbacks first (tests advance a fake clock or
  // gate on a condition variable here), then the abort check observes them.
  XGR_FAULT_HIT("compile.after_grammar");
  CheckAbort(core, task);
  auto pda = pda::CompiledGrammar::Compile(std::move(grammar),
                                           core->options.compile_options);
  XGR_FAULT_HIT("compile.after_pda");
  CheckAbort(core, task);
  return cache::AdaptiveTokenMaskCache::Build(pda, core->tokenizer,
                                              core->options.cache_options);
}

}  // namespace
}  // namespace detail

// ----- CompileTicket ---------------------------------------------------------

CompileTicket::CompileTicket(std::shared_ptr<detail::CompileTask> task,
                             std::shared_ptr<detail::ServiceCore> core)
    : task_(std::move(task)), core_(std::move(core)) {}

CompileTicket::CompileTicket(CompileTicket&& other) noexcept
    : task_(std::move(other.task_)), core_(std::move(other.core_)) {
  other.task_ = nullptr;
  other.core_ = nullptr;
}

CompileTicket& CompileTicket::operator=(CompileTicket&& other) noexcept {
  if (this != &other) {
    Release();
    task_ = std::move(other.task_);
    core_ = std::move(other.core_);
    other.task_ = nullptr;
    other.core_ = nullptr;
  }
  return *this;
}

CompileTicket::~CompileTicket() { Release(); }

void CompileTicket::Release() {
  if (task_ == nullptr || core_ == nullptr) return;
  std::vector<CompileCallback> callbacks;
  bool abandoned = false;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    --task_->interest;
    if (task_->interest == 0 && task_->queued &&
        task_->state.load() == CompileState::kPending) {
      ++core_->stats.cancelled;
      callbacks = detail::FinalizeLocked(core_.get(), task_,
                                         "compilation cancelled",
                                         CompileState::kCancelled,
                                         StatusCode::kCancelled);
      abandoned = true;
    }
  }
  if (abandoned) {
    task_->promise.set_value(nullptr);
    for (CompileCallback& cb : callbacks) {
      if (cb) cb(nullptr);
    }
  }
  core_ = nullptr;  // keep task_ so State()/Error() stay observable
}

void CompileTicket::Cancel() { Release(); }

CompileState CompileTicket::State() const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  return task_->state.load();
}

bool CompileTicket::WaitFor(double seconds) const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  if (task_->state.load() != CompileState::kPending) return true;
  return task_->future.wait_for(std::chrono::duration<double>(seconds)) ==
         std::future_status::ready;
}

Artifact CompileTicket::Get() const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  Artifact artifact = task_->future.get();
  if (artifact == nullptr) {
    // StatusError (a CheckError) so callers catching CheckError still work
    // while status-aware layers (engine drops, the C ABI) recover the code.
    const StatusCode code =
        task_->code == StatusCode::kOk ? StatusCode::kInternal : task_->code;
    throw StatusError(code,
                      task_->state.load() == CompileState::kCancelled
                          ? "grammar compilation cancelled"
                          : "grammar compilation failed: " + task_->error);
  }
  return artifact;
}

Artifact CompileTicket::TryGet() const {
  if (State() == CompileState::kPending) return nullptr;
  return Get();
}

std::string CompileTicket::Error() const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  if (task_->state.load() == CompileState::kPending) return {};
  return task_->error;
}

StatusCode CompileTicket::Code() const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  if (task_->state.load() == CompileState::kPending) return StatusCode::kOk;
  return task_->code;
}

std::uint64_t CompileTicket::KeyHash() const {
  XGR_CHECK(task_ != nullptr) << "invalid CompileTicket";
  return task_->key_hash;
}

// ----- CompileService --------------------------------------------------------

CompileService::CompileService(
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    CompileServiceOptions options) {
  XGR_CHECK(tokenizer != nullptr) << "compile service needs a tokenizer";
  XGR_CHECK(options.num_threads > 0) << "compile service needs workers";
  core_ = std::make_shared<detail::ServiceCore>();
  core_->tokenizer = std::move(tokenizer);
  core_->options = std::move(options);
  if (core_->options.cache_options.num_threads == 0) {
    // 0 would put the per-node cache-build ParallelFor on the process-wide
    // global pool — the very pool the serving engine's overlap scheduler
    // computes decode masks on, so a background build would queue ahead of
    // latency-critical mask work and stall decode. Builds stay inside the
    // service's own workers instead: serial per build, parallel across
    // builds. Callers wanting intra-build parallelism set an explicit count
    // (a private pool per build).
    core_->options.cache_options.num_threads = 1;
  }
  core_->registry = std::make_unique<GrammarRegistry>(core_->tokenizer,
                                                      core_->options.registry);
  // Eviction attribution: when the registry pushes a tenant-owned artifact
  // out past the budget, release the bytes against that tenant. Runs under a
  // registry shard mutex, so it may only take the tenant leaf lock.
  core_->registry->SetEvictionCallback(
      [table = core_->tenant_table](const std::string& key, std::size_t bytes) {
        std::lock_guard<std::mutex> lock(table->mutex);
        auto it = table->owners.find(key);
        if (it == table->owners.end()) return;  // unattributed (e.g. direct
                                                // registry use): nothing owed
        detail::TenantTable::TenantState& state =
            table->tenants[it->second.first];
        state.stats.bytes_resident -=
            std::min(state.stats.bytes_resident, it->second.second);
        ++state.stats.evictions;
        table->owners.erase(it);
        (void)bytes;
      });
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(core_->options.num_threads));
}

CompileService::~CompileService() {
  // Abandon every queued (not yet running) build so no new work starts; the
  // pool destructor then drains its queue — pump tasks find nothing eligible
  // — and joins after running builds finalize normally.
  std::vector<std::pair<std::shared_ptr<detail::CompileTask>,
                        std::vector<CompileCallback>>>
      abandoned;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    core_->shutdown = true;
    for (auto& task : core_->heap) {
      if (task->queued && task->state.load() == CompileState::kPending) {
        ++core_->stats.cancelled;
        abandoned.emplace_back(
            task, detail::FinalizeLocked(core_.get(), task,
                                         "compile service shut down",
                                         CompileState::kCancelled,
                                         StatusCode::kCancelled));
      }
    }
    core_->heap.clear();
  }
  for (auto& [task, callbacks] : abandoned) {
    task->promise.set_value(nullptr);
    for (CompileCallback& cb : callbacks) {
      if (cb) cb(nullptr);
    }
  }
  pool_.reset();
}

CompileTicket CompileService::Submit(CompileJob job, CompilePriority priority,
                                     CompileCallback on_done) {
  std::string key = CompileJobKey(job);
  std::shared_ptr<detail::CompileTask> task;
  std::shared_ptr<detail::CompileTask> shed_task;
  std::vector<CompileCallback> shed_callbacks;
  Artifact ready;
  bool need_worker = false;
  bool rejected = false;  // resolved kFailed at submit (quarantine/overload)
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    XGR_CHECK(!core_->shutdown) << "Submit() on a shut-down CompileService";
    ++core_->stats.submitted;
    auto it = core_->inflight.find(key);
    if (it != core_->inflight.end()) {
      // Coalesce: share the in-flight build (queued or running). A more
      // urgent submission escalates a still-queued build — an interactive
      // caller must not wait behind normal jobs on a build that happened to
      // be queued as prefetch.
      task = it->second;
      ++task->interest;
      ++core_->stats.coalesced;
      if (task->queued && priority < task->priority) {
        task->priority = priority;
        std::make_heap(core_->heap.begin(), core_->heap.end(),
                       detail::WorseOrder);
      }
      if (on_done) task->callbacks.push_back(std::move(on_done));
      return CompileTicket(std::move(task), core_);
    }
    task = std::make_shared<detail::CompileTask>();
    task->key_hash = ContentHash(key);
    task->key = std::move(key);
    task->job = std::move(job);
    task->priority = priority;
    task->seq = core_->next_seq++;
    task->deadline_ms = task->job.deadline_ms;
    task->submit_ms = detail::NowMs(*core_);
    task->tenant = task->job.tenant;
    task->future = task->promise.get_future().share();
    task->interest = 1;
    {
      std::lock_guard<std::mutex> tenant_lock(core_->tenant_table->mutex);
      ++core_->tenant_table->tenants[task->tenant].stats.submitted;
    }
    ready = core_->registry->TryGetResident(task->key);
    if (ready != nullptr) {
      ++core_->stats.registry_hits;
      std::lock_guard<std::mutex> tenant_lock(core_->tenant_table->mutex);
      ++core_->tenant_table->tenants[task->tenant].stats.registry_hits;
      task->state.store(CompileState::kReady);
    } else if (QuarantineRejectLocked(task)) {
      rejected = true;
    } else if (QuotaRejectLocked(task)) {
      rejected = true;
    } else if (OverloadRejectLocked(task, &shed_task, &shed_callbacks)) {
      rejected = true;
    } else {
      task->queued = true;
      ++core_->queued_count;
      {
        std::lock_guard<std::mutex> tenant_lock(core_->tenant_table->mutex);
        ++core_->tenant_table->tenants[task->tenant].stats.inflight;
      }
      if (on_done) {
        task->callbacks.push_back(std::move(on_done));
        on_done = nullptr;
      }
      core_->inflight.emplace(task->key, task);
      core_->heap.push_back(task);
      std::push_heap(core_->heap.begin(), core_->heap.end(), detail::WorseOrder);
      need_worker = true;
    }
  }
  if (shed_task != nullptr) {
    shed_task->promise.set_value(nullptr);
    for (CompileCallback& cb : shed_callbacks) {
      if (cb) cb(nullptr);
    }
  }
  if (ready != nullptr) {
    task->promise.set_value(ready);
    if (on_done) on_done(ready);
  } else if (rejected) {
    task->promise.set_value(nullptr);
    if (on_done) on_done(nullptr);
  } else if (need_worker) {
    // One pump per queued job: each drains exactly one eligible build, so
    // queued == pending pumps and abandoned builds cost nothing.
    auto core = core_;
    pool_->Submit([core] { RunOne(core); });
  }
  return CompileTicket(std::move(task), core_);
}

// Requires core_->mutex. If the key is quarantined, resolves `task` as
// kFailed/kPoisoned with the memoized error — O(1), no queue entry, no
// worker — and returns true. An expired quarantine grants one probe build:
// attempts resets so a single new failure re-quarantines.
bool CompileService::QuarantineRejectLocked(
    const std::shared_ptr<detail::CompileTask>& task) {
  auto it = core_->failures.find(task->key);
  if (it == core_->failures.end()) return false;
  detail::FailureMemo& memo = it->second;
  if (!memo.poisoned) return false;
  if (detail::NowMs(*core_) >= memo.quarantined_until_ms) {
    // TTL expired: one probe. max_attempts-1 prior strikes remain on record,
    // so the probe's failure trips quarantine again immediately.
    memo.poisoned = false;
    memo.attempts =
        std::max<std::int64_t>(0, core_->options.quarantine.max_attempts - 1);
    return false;
  }
  ++core_->stats.quarantine_rejects;
  task->error = "quarantined after " + std::to_string(memo.attempts) +
                " failed build(s) [" + StatusCodeName(memo.code) +
                "]: " + memo.error;
  task->code = StatusCode::kPoisoned;
  task->state.store(CompileState::kFailed);
  return true;
}

// Requires core_->mutex. Tenant admission: rejects the task kFailed with
// kQuotaExceeded when its tenant is over any configured limit. Deterministic
// for the tenant's *current* load (unlike quarantine, says nothing about the
// grammar), so the key is never poisoned and a later retry can succeed.
bool CompileService::QuotaRejectLocked(
    const std::shared_ptr<detail::CompileTask>& task) {
  std::string reject;
  {
    std::lock_guard<std::mutex> tenant_lock(core_->tenant_table->mutex);
    auto it = core_->tenant_table->tenants.find(task->tenant);
    if (it == core_->tenant_table->tenants.end()) return false;
    const TenantQuota& quota = it->second.quota;
    TenantStats& stats = it->second.stats;
    const std::int64_t queued_now = stats.inflight - it->second.running_now;
    if (quota.max_concurrent_compiles > 0 &&
        stats.inflight >= quota.max_concurrent_compiles) {
      reject = "tenant concurrent-compile quota reached (" +
               std::to_string(stats.inflight) + " in flight)";
    } else if (quota.max_queued > 0 && queued_now >= quota.max_queued) {
      reject = "tenant queue quota reached (" + std::to_string(queued_now) +
               " queued)";
    }
    if (reject.empty() && quota.max_resident_bytes > 0 &&
        stats.bytes_resident >= quota.max_resident_bytes) {
      reject = "tenant resident-memory quota reached (" +
               std::to_string(stats.bytes_resident) + " bytes attributed)";
    }
    if (reject.empty()) return false;
    ++stats.quota_rejects;
  }
  ++core_->stats.quota_rejects;
  task->error = std::move(reject);
  task->code = StatusCode::kQuotaExceeded;
  task->state.store(CompileState::kFailed);
  return true;
}

// Requires core_->mutex. Backpressure at the queue door: when the queue is
// full, either evict the worst queued build (if the arrival outranks it) or
// reject the arrival, resolving the loser kFailed/kOverloaded. Prefetch and
// batch work thus sheds before interactive work. Returns true when the
// ARRIVAL was rejected.
bool CompileService::OverloadRejectLocked(
    const std::shared_ptr<detail::CompileTask>& task,
    std::shared_ptr<detail::CompileTask>* shed_task,
    std::vector<CompileCallback>* shed_callbacks) {
  const std::size_t depth = core_->options.max_queue_depth;
  if (depth == 0 || core_->queued_count < depth) return false;
  // Worst queued build = the one every other queued build outranks.
  std::shared_ptr<detail::CompileTask> worst;
  for (const auto& queued : core_->heap) {
    if (!queued->queued || queued->state.load() != CompileState::kPending) {
      continue;
    }
    if (worst == nullptr || detail::WorseOrder(queued, worst)) worst = queued;
  }
  if (worst != nullptr && task->priority < worst->priority) {
    // The arrival strictly outranks the worst queued build: evict it. Its
    // heap entry stays (drained by its pump like a cancelled build).
    ++core_->stats.shed;
    *shed_callbacks = detail::FinalizeLocked(
        core_.get(), worst, "shed under overload by a more urgent compile",
        CompileState::kFailed, StatusCode::kOverloaded);
    *shed_task = std::move(worst);
    return false;
  }
  ++core_->stats.overload_rejects;
  task->error = "compile queue full (" + std::to_string(core_->queued_count) +
                " queued): overloaded";
  task->code = StatusCode::kOverloaded;
  task->state.store(CompileState::kFailed);
  return true;
}

void CompileService::RunOne(const std::shared_ptr<detail::ServiceCore>& core) {
  std::shared_ptr<detail::CompileTask> task;
  {
    std::lock_guard<std::mutex> lock(core->mutex);
    while (!core->heap.empty()) {
      std::pop_heap(core->heap.begin(), core->heap.end(), detail::WorseOrder);
      std::shared_ptr<detail::CompileTask> candidate =
          std::move(core->heap.back());
      core->heap.pop_back();
      if (candidate->queued &&
          candidate->state.load() == CompileState::kPending) {
        task = std::move(candidate);
        task->queued = false;  // running: cancellation no longer applies
        task->tenant_running = true;
        --core->queued_count;
        {
          std::lock_guard<std::mutex> tenant_lock(core->tenant_table->mutex);
          ++core->tenant_table->tenants[task->tenant].running_now;
        }
        break;
      }
      // Abandoned entries drain here without running.
    }
    if (task == nullptr) return;
  }

  Artifact artifact;
  std::string error;
  StatusCode code = StatusCode::kOk;
  bool built = false;
  double build_seconds = 0.0;
  // A deadline that expired while the job sat in the queue fails here
  // without occupying the worker for a build.
  if (task->deadline_ms > 0.0 &&
      static_cast<double>(detail::NowMs(*core) - task->submit_ms) >=
          task->deadline_ms) {
    error = "compile deadline expired while queued";
    code = StatusCode::kDeadlineExceeded;
  } else {
    {
      std::lock_guard<std::mutex> lock(core->mutex);
      ++core->stats.builds_started;
    }
    try {
      // Full registry lookup (memory, pinned, disk) happens on the worker so
      // Submit() never touches the filesystem.
      artifact = core->registry->Lookup(task->key);
      if (artifact == nullptr) {
        Timer timer;
        artifact = detail::BuildArtifact(core, task);
        build_seconds = timer.ElapsedMicros() / 1e6;
        built = true;
        core->registry->Insert(task->key, artifact);
      }
    } catch (const StatusError& e) {
      // Injected faults, cooperative aborts: already classified.
      error = e.what();
      code = e.code();
    } catch (const CheckError& e) {
      // The build pipeline rejected the source — deterministic, so retrying
      // the identical key is pointless (quarantines on first failure).
      error = e.what();
      code = StatusCode::kInvalidGrammar;
    } catch (const std::exception& e) {
      error = e.what();
      code = StatusCode::kInternal;
    } catch (...) {
      error = "unknown compilation error";
      code = StatusCode::kInternal;
    }
  }

  if (artifact != nullptr) {
    // Attribute the resident bytes to the owning (first-submitter) tenant —
    // once per key, and only while the key is actually resident (an artifact
    // bigger than the whole budget can already be evicted again here; its
    // eviction callback may even have fired before this attribution, so the
    // residency check keeps the books from leaking). The residency probe
    // takes a registry shard mutex, so it runs BEFORE the tenant leaf lock —
    // the eviction callback holds them in shard->tenant order.
    const bool resident = core->registry->IsResident(task->key);
    std::lock_guard<std::mutex> tenant_lock(core->tenant_table->mutex);
    detail::TenantTable::TenantState& tenant =
        core->tenant_table->tenants[task->tenant];
    ++tenant.stats.compiled;
    tenant.stats.compile_wait_ms +=
        static_cast<double>(detail::NowMs(*core) - task->submit_ms);
    if (resident && core->tenant_table->owners.find(task->key) ==
                        core->tenant_table->owners.end()) {
      const std::size_t bytes = artifact->MemoryBytes();
      core->tenant_table->owners.emplace(task->key,
                                         std::make_pair(task->tenant, bytes));
      tenant.stats.bytes_resident += bytes;
    }
  }

  std::vector<CompileCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(core->mutex);
    if (built) {
      ++core->stats.compiled;
      core->stats.compile_seconds += build_seconds;
    } else if (artifact != nullptr) {
      ++core->stats.disk_loads;  // resolved by the worker without a build
    }
    if (artifact != nullptr) {
      // A success wipes the key's failure history (e.g. transient faults
      // that healed before reaching the quarantine threshold).
      core->failures.erase(task->key);
    } else {
      ++core->stats.failed;
      switch (code) {
        case StatusCode::kDeadlineExceeded:
          ++core->stats.deadline_expired;
          break;
        case StatusCode::kCancelled:
          ++core->stats.builds_aborted;
          break;
        default:
          break;
      }
      // Quarantine bookkeeping. Deadline expiry and cancellation say nothing
      // about the grammar itself, so they never poison the key.
      if (code == StatusCode::kInvalidGrammar ||
          code == StatusCode::kInternal ||
          code == StatusCode::kCorruptArtifact) {
        detail::FailureMemo& memo = core->failures[task->key];
        ++memo.attempts;
        memo.error = error;
        memo.code = code;
        if (code == StatusCode::kInvalidGrammar ||
            memo.attempts >= core->options.quarantine.max_attempts) {
          memo.poisoned = true;
          memo.quarantined_until_ms =
              detail::NowMs(*core) +
              static_cast<std::uint64_t>(core->options.quarantine.ttl_ms);
        }
      }
    }
    callbacks = detail::FinalizeLocked(
        core.get(), task, std::move(error),
        artifact != nullptr ? CompileState::kReady : CompileState::kFailed,
        artifact != nullptr ? StatusCode::kOk : code);
  }
  task->promise.set_value(artifact);
  for (CompileCallback& cb : callbacks) {
    if (cb) cb(artifact);
  }
}

Artifact CompileService::Compile(CompileJob job) {
  return Submit(std::move(job), CompilePriority::kInteractive).Get();
}

GrammarRegistry& CompileService::Registry() { return *core_->registry; }

const std::shared_ptr<const tokenizer::TokenizerInfo>&
CompileService::Tokenizer() const {
  return core_->tokenizer;
}

void CompileService::SetTenantQuota(const std::string& tenant,
                                    TenantQuota quota) {
  std::lock_guard<std::mutex> lock(core_->tenant_table->mutex);
  core_->tenant_table->tenants[tenant].quota = quota;
}

TenantStats CompileService::TenantStatsFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(core_->tenant_table->mutex);
  auto it = core_->tenant_table->tenants.find(tenant);
  return it == core_->tenant_table->tenants.end() ? TenantStats{}
                                                  : it->second.stats;
}

std::vector<std::pair<std::string, TenantStats>>
CompileService::AllTenantStats() const {
  std::vector<std::pair<std::string, TenantStats>> out;
  {
    std::lock_guard<std::mutex> lock(core_->tenant_table->mutex);
    out.reserve(core_->tenant_table->tenants.size());
    for (const auto& [name, state] : core_->tenant_table->tenants) {
      out.emplace_back(name, state.stats);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

CompileServiceStats CompileService::Stats() const {
  std::lock_guard<std::mutex> lock(core_->mutex);
  CompileServiceStats stats = core_->stats;
  // Live snapshot, not a counter: every key still queued or building. A
  // non-zero value after all tickets resolved is a leaked build.
  stats.inflight = static_cast<std::int64_t>(core_->inflight.size());
  return stats;
}

}  // namespace xgr::runtime
