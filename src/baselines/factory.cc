#include "baselines/factory.h"

#include "baselines/char_trie_enforcer.h"
#include "baselines/lexer_parser.h"
#include "baselines/pda_baseline.h"
#include "baselines/regex_fsm.h"
#include "baselines/schema_to_regex.h"
#include "baselines/xgrammar_decoder.h"
#include "grammar/json_schema.h"
#include "support/logging.h"
#include "support/timer.h"

namespace xgr::baselines {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXGrammar: return "XGrammar";
    case EngineKind::kOutlines: return "Outlines";
    case EngineKind::kOutlinesCfg: return "Outlines-CFG";
    case EngineKind::kLlamaCpp: return "llama.cpp-grammar";
    case EngineKind::kLmFormatEnforcer: return "lm-format-enforcer";
  }
  XGR_UNREACHABLE();
}

DecoderFactory::DecoderFactory(
    EngineKind kind, std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer)
    : kind_(kind), tokenizer_(std::move(tokenizer)) {}

void DecoderFactory::PrepareSchema(const json::Value& schema) {
  Timer timer;
  switch (kind_) {
    case EngineKind::kXGrammar:
    case EngineKind::kLlamaCpp:
    case EngineKind::kOutlinesCfg: {
      grammar::Grammar g = grammar::JsonSchemaToGrammar(schema);
      PrepareGrammar(g);
      return;
    }
    case EngineKind::kOutlines: {
      regex_ = JsonSchemaToRegex(schema);
      regex_index_ = std::make_shared<RegexTokenIndex>(regex_, tokenizer_);
      break;
    }
    case EngineKind::kLmFormatEnforcer: {
      regex_ = JsonSchemaToRegex(schema);
      break;
    }
  }
  preprocess_seconds_ = timer.ElapsedSeconds();
}

void DecoderFactory::PrepareGrammar(const grammar::Grammar& grammar) {
  Timer timer;
  switch (kind_) {
    case EngineKind::kXGrammar:
      pda_ = pda::CompiledGrammar::Compile(grammar);
      cache_ = cache::AdaptiveTokenMaskCache::Build(pda_, tokenizer_);
      break;
    case EngineKind::kLlamaCpp:
    case EngineKind::kOutlinesCfg:
      // Baselines interpret the automaton without XGrammar's §3.4
      // optimizations (their engines have no equivalent passes).
      pda_ = pda::CompiledGrammar::Compile(grammar,
                                           pda::CompileOptions::AllDisabled());
      break;
    case EngineKind::kOutlines:
    case EngineKind::kLmFormatEnforcer:
      XGR_CHECK(false) << EngineKindName(kind_)
                       << " cannot execute context-free grammars (regex only)";
  }
  preprocess_seconds_ = timer.ElapsedSeconds();
}

std::shared_ptr<ConstrainedDecoder> DecoderFactory::NewDecoder() {
  switch (kind_) {
    case EngineKind::kXGrammar:
      XGR_CHECK(cache_ != nullptr) << "PrepareSchema/PrepareGrammar first";
      return std::make_shared<XGrammarDecoder>(cache_, preprocess_seconds_);
    case EngineKind::kLlamaCpp:
      XGR_CHECK(pda_ != nullptr) << "PrepareSchema/PrepareGrammar first";
      return std::make_shared<PdaBaselineDecoder>(pda_, tokenizer_);
    case EngineKind::kOutlinesCfg:
      XGR_CHECK(pda_ != nullptr) << "PrepareSchema/PrepareGrammar first";
      return std::make_shared<LexerParserDecoder>(pda_, tokenizer_);
    case EngineKind::kOutlines:
      XGR_CHECK(regex_index_ != nullptr) << "PrepareSchema first";
      return std::make_shared<RegexFsmDecoder>(regex_index_);
    case EngineKind::kLmFormatEnforcer:
      XGR_CHECK(!regex_.empty()) << "PrepareSchema first";
      return std::make_shared<CharTrieDecoder>(regex_, tokenizer_);
  }
  XGR_UNREACHABLE();
}

}  // namespace xgr::baselines
