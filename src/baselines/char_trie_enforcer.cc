#include "baselines/char_trie_enforcer.h"

#include "regex/regex.h"
#include "support/timer.h"

namespace xgr::baselines {

CharTrieDecoder::CharTrieDecoder(
    const std::string& regex,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer)
    : tokenizer_(std::move(tokenizer)),
      trie_(std::make_shared<tokenizer::TokenTrie>(*tokenizer_)) {
  Timer timer;
  dfa_ = regex::CompileRegexToDfa(regex);
  state_ = dfa_.Start();
  preprocess_seconds_ = timer.ElapsedSeconds();
}

void CharTrieDecoder::WalkTrie(std::int32_t trie_node, std::int32_t dfa_state,
                               DynamicBitset* mask) {
  const tokenizer::TokenTrie::Node& node = trie_->GetNode(trie_node);
  for (std::int32_t token_id : node.token_ids) {
    mask->Set(static_cast<std::size_t>(token_id));
  }
  for (const auto& [byte, child] : node.children) {
    std::int32_t next = dfa_.Next(dfa_state, byte);
    if (next == fsa::Dfa::kDead || !dfa_.CanReachAccept(next)) continue;
    WalkTrie(child, next, mask);
  }
}

void CharTrieDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  mask->ResetAll();
  WalkTrie(trie_->Root(), state_, mask);
  if (CanTerminate() && tokenizer_->EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer_->EosId()));
  }
}

bool CharTrieDecoder::AcceptToken(std::int32_t token_id) {
  if (token_id == tokenizer_->EosId()) return CanTerminate();
  if (tokenizer_->IsSpecial(token_id)) return false;
  std::int32_t state = state_;
  for (char c : tokenizer_->TokenBytes(token_id)) {
    state = dfa_.Next(state, static_cast<std::uint8_t>(c));
    if (state == fsa::Dfa::kDead) return false;
  }
  if (!dfa_.CanReachAccept(state)) return false;
  state_ = state;
  return true;
}

}  // namespace xgr::baselines
