// Outlines-style CFG path: character-level grammar interpretation over the
// whole vocabulary at every step.
//
// For grammars beyond regular expressions, Outlines falls back to a
// lexer+parser that must re-check candidate continuations character by
// character each step; there is no token-level cache and no prefix sharing
// across steps. We reproduce that cost profile: every step saves the parser
// state, then linearly scans all tokens, feeding each token's bytes through
// the PDA and rolling back — the CFG columns of Figure 9 where this strategy
// is orders of magnitude slower than XGrammar.
#pragma once

#include <memory>

#include "baselines/constrained_decoder.h"
#include "matcher/grammar_matcher.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

class LexerParserDecoder : public ConstrainedDecoder {
 public:
  LexerParserDecoder(std::shared_ptr<const pda::CompiledGrammar> pda,
                     std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer);

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override;
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return matcher_.CanTerminate(); }
  void Reset() override;
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(tokenizer_->VocabSize());
  }
  std::int32_t EosTokenId() const override { return tokenizer_->EosId(); }

 private:
  std::string name_ = "Outlines-CFG";
  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  matcher::GrammarMatcher matcher_;
};

}  // namespace xgr::baselines
