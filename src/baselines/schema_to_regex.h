// JSON-Schema → regular expression (the Outlines / lm-format-enforcer route).
//
// Regex-based engines cannot express recursive structure, so this converter
// supports the non-recursive schema subset (fixed objects, bounded arrays,
// enums, scalars). Untyped positions fall back to a scalar-only
// approximation, and recursion via $ref throws — matching the real
// limitation the paper calls out for regex-based methods.
#pragma once

#include <string>

#include "json/json.h"

namespace xgr::baselines {

// Throws xgr::CheckError for schemas outside the regex-expressible subset.
std::string JsonSchemaToRegex(const json::Value& schema);

// Escapes regex metacharacters in a literal string.
std::string EscapeRegexLiteral(const std::string& literal);

}  // namespace xgr::baselines
