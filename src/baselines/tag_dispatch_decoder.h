// The tag-dispatch composite decoder behind the ConstrainedDecoder API: free
// text on the trigger automaton, tool-call bodies on separately compiled,
// registry-shared per-tag grammars (see compose/tag_dispatch.h). Drop-in
// anywhere a decoder is accepted — the serving engine, the benches, the C
// ABI — and mask-equivalent to an XGrammarDecoder over the monolithic
// BuildStructuralTagGrammar artifact for the same config.
#pragma once

#include <memory>
#include <string>

#include "baselines/constrained_decoder.h"
#include "compose/tag_dispatch.h"

namespace xgr::baselines {

class TagDispatchDecoder : public ConstrainedDecoder {
 public:
  explicit TagDispatchDecoder(std::shared_ptr<const compose::TagDispatchPlan> plan)
      : matcher_(std::move(plan)) {}

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override {
    matcher_.FillNextTokenBitmask(mask);
  }
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return matcher_.CanTerminate(); }
  void Reset() override { matcher_.Reset(); }
  // Native transactional verify: the composite snapshots its thread set per
  // token boundary, so drafts crossing free-text/segment boundaries verify
  // with the same fork semantics as sequential dispatch and any prefix can
  // be kept.
  void VerifyDraft(const std::int32_t* draft, std::int32_t count,
                   DraftVerifyResult* result,
                   DynamicBitset* divergence_mask) override;
  bool CommitDraft(std::int32_t keep) override;
  bool SupportsPartialCommit() const override { return true; }
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(matcher_.Plan().Tokenizer().VocabSize());
  }
  std::int32_t EosTokenId() const override {
    return matcher_.Plan().Tokenizer().EosId();
  }
  std::string FindJumpForwardString(std::int32_t max_length = 256) override {
    return matcher_.FindJumpForwardString(max_length);
  }
  double PreprocessSeconds() const override {
    return matcher_.Plan().PreprocessSeconds();
  }
  const cache::MaskGenStats* MaskStats() const override {
    return &matcher_.AggregatedMaskStats();
  }
  const compose::TagDispatchStats* DispatchStats() const override;

  compose::TagDispatchMatcher& Matcher() { return matcher_; }

 private:
  std::string name_ = "TagDispatch";
  compose::TagDispatchMatcher matcher_;
  // DispatchStats merges the plan-level prefetch accounting into the
  // matcher's run counters; stored here so the returned pointer stays valid.
  mutable compose::TagDispatchStats merged_stats_;
};

}  // namespace xgr::baselines
