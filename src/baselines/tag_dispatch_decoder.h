// The tag-dispatch composite decoder behind the ConstrainedDecoder API: free
// text on the trigger automaton, tool-call bodies on separately compiled,
// registry-shared per-tag grammars (see compose/tag_dispatch.h). Drop-in
// anywhere a decoder is accepted — the serving engine, the benches, the C
// ABI — and mask-equivalent to an XGrammarDecoder over the monolithic
// BuildStructuralTagGrammar artifact for the same config.
#pragma once

#include <memory>
#include <string>

#include "baselines/constrained_decoder.h"
#include "compose/tag_dispatch.h"

namespace xgr::baselines {

class TagDispatchDecoder : public ConstrainedDecoder {
 public:
  explicit TagDispatchDecoder(std::shared_ptr<const compose::TagDispatchPlan> plan)
      : matcher_(std::move(plan)) {}

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override {
    matcher_.FillNextTokenBitmask(mask);
  }
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return matcher_.CanTerminate(); }
  void Reset() override { matcher_.Reset(); }
  std::string FindJumpForwardString() override {
    return matcher_.FindJumpForwardString();
  }
  double PreprocessSeconds() const override {
    return matcher_.Plan().PreprocessSeconds();
  }
  const cache::MaskGenStats* MaskStats() const override {
    return &matcher_.AggregatedMaskStats();
  }
  const compose::TagDispatchStats* DispatchStats() const override;

  compose::TagDispatchMatcher& Matcher() { return matcher_; }

 private:
  std::string name_ = "TagDispatch";
  compose::TagDispatchMatcher matcher_;
  // DispatchStats merges the plan-level prefetch accounting into the
  // matcher's run counters; stored here so the returned pointer stays valid.
  mutable compose::TagDispatchStats merged_stats_;
};

}  // namespace xgr::baselines
