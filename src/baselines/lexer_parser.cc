#include "baselines/lexer_parser.h"

namespace xgr::baselines {

LexerParserDecoder::LexerParserDecoder(
    std::shared_ptr<const pda::CompiledGrammar> pda,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer)
    : pda_(std::move(pda)), tokenizer_(std::move(tokenizer)), matcher_(pda_) {}

void LexerParserDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  mask->ResetAll();
  // Outlines' CFG path clones the interactive parser configuration for every
  // candidate continuation: we charge that by seeding a fresh scratch matcher
  // (full parser-state copy) per live stack per candidate, instead of the
  // in-place advance + O(1) rollback the persistent stack would allow.
  const std::vector<std::int32_t>& stacks = matcher_.CurrentStacks();
  for (std::int32_t id = 0; id < tokenizer_->VocabSize(); ++id) {
    if (tokenizer_->IsSpecial(id)) continue;
    const std::string& bytes = tokenizer_->TokenBytes(id);
    bool accepted = false;
    for (std::int32_t stack_id : stacks) {
      matcher::GrammarMatcher scratch(pda_, matcher_.Pool(), stack_id);
      if (scratch.AcceptString(bytes)) {
        accepted = true;
        break;
      }
    }
    if (accepted) mask->Set(static_cast<std::size_t>(id));
  }
  if (matcher_.CanTerminate() && tokenizer_->EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer_->EosId()));
  }
}

bool LexerParserDecoder::AcceptToken(std::int32_t token_id) {
  if (token_id == tokenizer_->EosId()) return matcher_.CanTerminate();
  if (tokenizer_->IsSpecial(token_id)) return false;
  return matcher_.AcceptString(tokenizer_->TokenBytes(token_id));
}

void LexerParserDecoder::Reset() { matcher_ = matcher::GrammarMatcher(pda_); }

}  // namespace xgr::baselines
