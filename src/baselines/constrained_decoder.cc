// Default (sequential) implementation of the transactional multi-token
// verify/commit protocol. Every baseline inherits it unchanged: the draft is
// verified with k mask fills + membership tests + AcceptToken — exactly the
// per-token protocol it replaces — so the differential tests can hold native
// overrides bit-identical to this path.
#include "baselines/constrained_decoder.h"

#include "support/logging.h"

namespace xgr::baselines {

void ConstrainedDecoder::VerifyDraft(const std::int32_t* draft,
                                     std::int32_t count,
                                     DraftVerifyResult* result,
                                     DynamicBitset* divergence_mask) {
  XGR_CHECK(result != nullptr);
  XGR_CHECK(count >= 0 && (count == 0 || draft != nullptr))
      << "bad draft span: count=" << count;
  XGR_CHECK(open_draft_accepted_ < 0)
      << "VerifyDraft while a draft transaction is open";
  result->accepted = 0;
  result->exhausted = false;
  result->terminated = false;

  DynamicBitset* mask = divergence_mask;
  if (mask == nullptr) {
    XGR_CHECK(MaskBits() > 0)
        << Name() << ": VerifyDraft fallback needs MaskBits() to size scratch";
    if (fallback_mask_.Size() != MaskBits()) {
      fallback_mask_ = DynamicBitset(MaskBits());
    }
    mask = &fallback_mask_;
  }

  const std::int32_t eos = EosTokenId();
  for (std::int32_t i = 0; i < count; ++i) {
    const std::int32_t token = draft[i];
    FillNextTokenBitmask(mask);
    if (token < 0 || static_cast<std::size_t>(token) >= mask->Size() ||
        !mask->Test(static_cast<std::size_t>(token))) {
      break;  // divergence: `mask` already holds the divergence mask
    }
    if (token == eos) {
      // EOS is legal here (its mask bit was set). Like sequential decoding,
      // it ends the walk without advancing state or counting as accepted.
      result->terminated = true;
      break;
    }
    if (!AcceptToken(token)) break;  // defensive: mask and accept disagree
    ++result->accepted;
  }
  result->exhausted = result->accepted == count;
  open_draft_accepted_ = result->accepted;
  if (divergence_mask != nullptr && result->accepted == count) {
    // Loop exited without a divergence fill; expose the post-prefix mask.
    FillNextTokenBitmask(divergence_mask);
  }
}

bool ConstrainedDecoder::CommitDraft(std::int32_t keep) {
  const std::int32_t accepted = open_draft_accepted_;
  XGR_CHECK(accepted >= 0) << Name() << ": CommitDraft without VerifyDraft";
  XGR_CHECK(keep >= 0 && keep <= accepted)
      << "CommitDraft keep out of range: " << keep << " of " << accepted;
  open_draft_accepted_ = -1;
  if (keep == accepted) return true;
  return RollbackTokens(accepted - keep);
}

}  // namespace xgr::baselines
