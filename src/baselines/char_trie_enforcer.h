// lm-format-enforcer baseline strategy (Gat 2024), regex-only.
//
// No token-level precomputation at all: at every decoding step the vocabulary
// trie is walked character-by-character against the regex DFA from the
// current state, collecting the allowed tokens. This gives zero preprocessing
// cost but the full trie-walk cost on every step — the slowest-per-token
// regex engine in Figure 9, and (per the paper) no CFG support.
#pragma once

#include <memory>

#include "baselines/constrained_decoder.h"
#include "fsa/dfa.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

class CharTrieDecoder : public ConstrainedDecoder {
 public:
  CharTrieDecoder(const std::string& regex,
                  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer);

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override;
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return dfa_.IsAccepting(state_); }
  void Reset() override { state_ = dfa_.Start(); }
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(tokenizer_->VocabSize());
  }
  std::int32_t EosTokenId() const override { return tokenizer_->EosId(); }
  double PreprocessSeconds() const override { return preprocess_seconds_; }

 private:
  void WalkTrie(std::int32_t trie_node, std::int32_t dfa_state, DynamicBitset* mask);

  std::string name_ = "lm-format-enforcer";
  fsa::Dfa dfa_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::shared_ptr<const tokenizer::TokenTrie> trie_;
  std::int32_t state_ = 0;
  double preprocess_seconds_ = 0.0;
};

}  // namespace xgr::baselines
