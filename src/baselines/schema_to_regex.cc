#include "baselines/schema_to_regex.h"

#include "support/logging.h"

namespace xgr::baselines {

namespace {

const char* kStringRegex = R"("(?:[^"\\\x00-\x1F]|\\["\\/bfnrt]|\\u[0-9a-fA-F]{4})*")";
const char* kIntegerRegex = R"(-?(?:0|[1-9][0-9]*))";
const char* kNumberRegex = R"(-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)";

class RegexConverter {
 public:
  explicit RegexConverter(const json::Value& root) : root_(root) {}

  std::string Convert(const json::Value& schema, int ref_depth) {
    if (schema.IsBool()) {
      XGR_CHECK(schema.AsBool()) << "schema 'false' matches nothing";
      return ScalarFallback();
    }
    XGR_CHECK(schema.IsObject()) << "schema must be object or boolean";
    if (const json::Value* ref = schema.Find("$ref")) {
      XGR_CHECK(ref_depth < 8)
          << "recursive $ref is not expressible as a regular expression";
      return Convert(Resolve(ref->AsString()), ref_depth + 1);
    }
    if (const json::Value* enumeration = schema.Find("enum")) {
      std::string out = "(?:";
      bool first = true;
      for (const json::Value& v : enumeration->AsArray()) {
        if (!first) out += "|";
        first = false;
        out += EscapeRegexLiteral(v.Dump());
      }
      return out + ")";
    }
    if (const json::Value* constant = schema.Find("const")) {
      return EscapeRegexLiteral(constant->Dump());
    }
    for (const char* key : {"anyOf", "oneOf"}) {
      if (const json::Value* list = schema.Find(key)) {
        std::string out = "(?:";
        bool first = true;
        for (const json::Value& sub : list->AsArray()) {
          if (!first) out += "|";
          first = false;
          out += Convert(sub, ref_depth);
        }
        return out + ")";
      }
    }
    const json::Value* type = schema.Find("type");
    if (type == nullptr) return ScalarFallback();
    const std::string& t = type->AsString();
    if (t == "string") return kStringRegex;
    if (t == "integer") return kIntegerRegex;
    if (t == "number") return kNumberRegex;
    if (t == "boolean") return "(?:true|false)";
    if (t == "null") return "null";
    if (t == "array") return ConvertArray(schema, ref_depth);
    if (t == "object") return ConvertObject(schema, ref_depth);
    XGR_CHECK(false) << "unsupported schema type for regex conversion: " << t;
    XGR_UNREACHABLE();
  }

 private:
  const json::Value& Resolve(const std::string& ref) {
    XGR_CHECK(ref.rfind("#/", 0) == 0) << "only local $ref supported";
    const json::Value* node = &root_;
    std::size_t start = 2;
    while (start <= ref.size()) {
      std::size_t slash = ref.find('/', start);
      std::string part = ref.substr(start, slash == std::string::npos
                                               ? std::string::npos
                                               : slash - start);
      const json::Value* next = node->Find(part);
      XGR_CHECK(next != nullptr) << "$ref path not found: " << ref;
      node = next;
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    return *node;
  }

  // Untyped values: scalar approximation (regex engines cannot express
  // arbitrarily nested JSON).
  std::string ScalarFallback() {
    return std::string("(?:") + kStringRegex + "|" + kNumberRegex +
           "|true|false|null)";
  }

  std::string ConvertArray(const json::Value& schema, int ref_depth) {
    const json::Value* items = schema.Find("items");
    std::string item = items != nullptr ? Convert(*items, ref_depth) : ScalarFallback();
    std::int64_t min_items = 0;
    std::int64_t max_items = -1;
    if (const json::Value* v = schema.Find("minItems")) min_items = v->AsInteger();
    if (const json::Value* v = schema.Find("maxItems")) max_items = v->AsInteger();
    std::string rest = "(?:," + item + ")";
    std::string bounds;
    if (max_items == -1) {
      bounds = min_items <= 1 ? "*" : "{" + std::to_string(min_items - 1) + ",}";
    } else {
      bounds = "{" + std::to_string(std::max<std::int64_t>(0, min_items - 1)) + "," +
               std::to_string(max_items - 1) + "}";
    }
    std::string non_empty = "\\[" + item + rest + bounds + "\\]";
    if (min_items == 0) return "(?:\\[\\]|" + non_empty + ")";
    return non_empty;
  }

  std::string ConvertObject(const json::Value& schema, int ref_depth) {
    const json::Value* props = schema.Find("properties");
    const json::Value* required = schema.Find("required");
    auto is_required = [&](const std::string& key) {
      if (required == nullptr) return false;
      for (const json::Value& r : required->AsArray()) {
        if (r.IsString() && r.AsString() == key) return true;
      }
      return false;
    };
    struct Prop {
      std::string literal;  // "key":
      std::string value;
      bool required;
    };
    std::vector<Prop> properties;
    if (props != nullptr) {
      for (const auto& [key, sub] : props->AsObject()) {
        properties.push_back(Prop{
            EscapeRegexLiteral(json::Value(key).Dump() + ":"),
            Convert(sub, ref_depth), is_required(key)});
      }
    }
    if (properties.empty()) return "\\{\\}";
    // part(i): no member emitted yet; tail(i): members need a leading comma.
    // Built back-to-front, mirroring the grammar converter.
    std::size_t n = properties.size();
    std::vector<std::string> tail(n + 1);
    std::vector<std::string> part(n + 1);
    tail[n] = "";
    part[n] = "";
    // Note: optional properties duplicate the continuation inside the
    // alternation, so the regex grows exponentially in the number of optional
    // members — a real cost of the regex encoding (schemas here keep objects
    // small). The grammar-based encoding in src/grammar is linear.
    for (std::size_t i = n; i-- > 0;) {
      std::string member = properties[i].literal + properties[i].value;
      if (properties[i].required) {
        tail[i] = "," + member + tail[i + 1];
        part[i] = member + tail[i + 1];
      } else {
        tail[i] = "(?:," + member + tail[i + 1] + "|" + tail[i + 1] + ")";
        part[i] = "(?:" + member + tail[i + 1] + "|" + part[i + 1] + ")";
      }
    }
    return "\\{" + part[0] + "\\}";
  }

  const json::Value& root_;
};

}  // namespace

std::string EscapeRegexLiteral(const std::string& literal) {
  std::string out;
  out.reserve(literal.size());
  for (char c : literal) {
    switch (c) {
      case '\\': case '^': case '$': case '.': case '|': case '?': case '*':
      case '+': case '(': case ')': case '[': case ']': case '{': case '}':
        out.push_back('\\');
        out.push_back(c);
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonSchemaToRegex(const json::Value& schema) {
  return RegexConverter(schema).Convert(schema, 0);
}

}  // namespace xgr::baselines
