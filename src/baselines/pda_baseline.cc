#include "baselines/pda_baseline.h"

namespace xgr::baselines {

PdaBaselineDecoder::PdaBaselineDecoder(
    std::shared_ptr<const pda::CompiledGrammar> pda,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer)
    : pda_(std::move(pda)), tokenizer_(std::move(tokenizer)), matcher_(pda_) {}

void PdaBaselineDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  mask->ResetAll();
  std::int32_t entry_depth = matcher_.NumConsumedBytes();
  // Candidate-by-candidate interpretation, no prefix sharing (the llama.cpp
  // strategy). AcceptString early-exits at the first invalid byte and rolls
  // back internally on failure.
  for (std::int32_t id = 0; id < tokenizer_->VocabSize(); ++id) {
    if (tokenizer_->IsSpecial(id)) continue;
    if (matcher_.AcceptString(tokenizer_->TokenBytes(id))) {
      mask->Set(static_cast<std::size_t>(id));
      matcher_.RollbackToDepth(entry_depth);
    }
  }
  if (matcher_.CanTerminate() && tokenizer_->EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer_->EosId()));
  }
}

bool PdaBaselineDecoder::AcceptToken(std::int32_t token_id) {
  if (token_id == tokenizer_->EosId()) return matcher_.CanTerminate();
  if (tokenizer_->IsSpecial(token_id)) return false;
  return matcher_.AcceptString(tokenizer_->TokenBytes(token_id));
}

void PdaBaselineDecoder::Reset() { matcher_ = matcher::GrammarMatcher(pda_); }

}  // namespace xgr::baselines
