#include "baselines/regex_fsm.h"

#include <algorithm>

#include "regex/regex.h"
#include "support/logging.h"
#include "support/timer.h"

namespace xgr::baselines {

RegexTokenIndex::RegexTokenIndex(
    const std::string& regex,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    bool precompute_all_states)
    : tokenizer_(std::move(tokenizer)),
      trie_(std::make_shared<tokenizer::TokenTrie>(*tokenizer_)) {
  Timer timer;
  dfa_ = regex::CompileRegexToDfa(regex);
  if (precompute_all_states) {
    for (std::int32_t s = 0; s < dfa_.NumStates(); ++s) IndexState(s);
  } else {
    IndexState(dfa_.Start());
  }
  preprocess_seconds_ = timer.ElapsedSeconds();
}

void RegexTokenIndex::WalkTrie(std::int32_t trie_node, std::int32_t dfa_state,
                               StateEntry* entry) {
  const tokenizer::TokenTrie::Node& node = trie_->GetNode(trie_node);
  for (std::int32_t token_id : node.token_ids) {
    entry->allowed_tokens.push_back(token_id);
    entry->token_end_states.push_back(dfa_state);
  }
  for (const auto& [byte, child] : node.children) {
    std::int32_t next = dfa_.Next(dfa_state, byte);
    // Prune token paths that land in states from which no match can complete.
    if (next == fsa::Dfa::kDead || !dfa_.CanReachAccept(next)) continue;
    WalkTrie(child, next, entry);
  }
}

const RegexTokenIndex::StateEntry& RegexTokenIndex::IndexState(
    std::int32_t dfa_state) {
  auto it = state_index_.find(dfa_state);
  if (it != state_index_.end()) return it->second;
  StateEntry entry;
  WalkTrie(trie_->Root(), dfa_state, &entry);
  // Sort token lists by id for mask application and binary search.
  std::vector<std::size_t> order(entry.allowed_tokens.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return entry.allowed_tokens[a] < entry.allowed_tokens[b];
  });
  StateEntry sorted;
  sorted.allowed_tokens.reserve(order.size());
  sorted.token_end_states.reserve(order.size());
  for (std::size_t i : order) {
    sorted.allowed_tokens.push_back(entry.allowed_tokens[i]);
    sorted.token_end_states.push_back(entry.token_end_states[i]);
  }
  return state_index_.emplace(dfa_state, std::move(sorted)).first->second;
}

RegexFsmDecoder::RegexFsmDecoder(
    const std::string& regex,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    bool precompute_all_states)
    : RegexFsmDecoder(std::make_shared<RegexTokenIndex>(regex, std::move(tokenizer),
                                                        precompute_all_states)) {}

RegexFsmDecoder::RegexFsmDecoder(std::shared_ptr<RegexTokenIndex> index)
    : index_(std::move(index)), state_(index_->Dfa().Start()) {}

void RegexFsmDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  mask->ResetAll();
  const RegexTokenIndex::StateEntry& entry = index_->IndexState(state_);
  for (std::int32_t token_id : entry.allowed_tokens) {
    mask->Set(static_cast<std::size_t>(token_id));
  }
  if (CanTerminate() && index_->Tokenizer().EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(index_->Tokenizer().EosId()));
  }
}

bool RegexFsmDecoder::AcceptToken(std::int32_t token_id) {
  if (token_id == index_->Tokenizer().EosId()) return CanTerminate();
  if (index_->Tokenizer().IsSpecial(token_id)) return false;
  const RegexTokenIndex::StateEntry& entry = index_->IndexState(state_);
  auto it = std::lower_bound(entry.allowed_tokens.begin(),
                             entry.allowed_tokens.end(), token_id);
  if (it == entry.allowed_tokens.end() || *it != token_id) return false;
  state_ = entry.token_end_states[static_cast<std::size_t>(
      it - entry.allowed_tokens.begin())];
  return true;
}

bool RegexFsmDecoder::CanTerminate() { return index_->Dfa().IsAccepting(state_); }

std::string RegexFsmDecoder::FindJumpForwardString(std::int32_t max_length) {
  std::string result;
  const fsa::Dfa& dfa = index_->Dfa();
  std::int32_t state = state_;
  while (static_cast<std::int32_t>(result.size()) < max_length) {
    if (dfa.IsAccepting(state)) break;  // termination is an alternative
    int unique_byte = -1;
    int live = 0;
    for (int b = 0; b < 256 && live <= 1; ++b) {
      std::int32_t next = dfa.Next(state, static_cast<std::uint8_t>(b));
      if (next != fsa::Dfa::kDead && dfa.CanReachAccept(next)) {
        ++live;
        unique_byte = b;
      }
    }
    if (live != 1) break;
    result.push_back(static_cast<char>(unique_byte));
    state = dfa.Next(state, static_cast<std::uint8_t>(unique_byte));
  }
  return result;
}

}  // namespace xgr::baselines
