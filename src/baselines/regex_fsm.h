// Outlines baseline strategy (Willard & Louf 2023) for regex-expressible
// tasks (JSON Schema).
//
// The schema is converted to one large regex, compiled to a byte DFA, and a
// token-indexed transition table is computed per DFA state: the list of
// allowed tokens and their end states. Runtime mask generation is then a
// table lookup. The table is built by walking the vocabulary trie against
// the DFA; states are indexed lazily and memoized, which is the expensive
// preprocessing Figure 10 attributes to this strategy (vLLM+Outlines TTFT).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/constrained_decoder.h"
#include "fsa/dfa.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

// The heavy shared artifact: regex DFA + token-indexed transitions. Shared
// across all requests of a batch (as vLLM+Outlines shares its FSM index).
// Lazy state indexing is NOT thread-safe; the Outlines engine configuration
// computes masks serially, matching the real system.
class RegexTokenIndex {
 public:
  RegexTokenIndex(const std::string& regex,
                  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                  bool precompute_all_states = false);

  struct StateEntry {
    std::vector<std::int32_t> allowed_tokens;    // sorted by id
    std::vector<std::int32_t> token_end_states;  // parallel to allowed
  };
  const StateEntry& IndexState(std::int32_t dfa_state);

  const fsa::Dfa& Dfa() const { return dfa_; }
  const tokenizer::TokenizerInfo& Tokenizer() const { return *tokenizer_; }
  double PreprocessSeconds() const { return preprocess_seconds_; }
  std::int32_t NumIndexedStates() const {
    return static_cast<std::int32_t>(state_index_.size());
  }

 private:
  void WalkTrie(std::int32_t trie_node, std::int32_t dfa_state, StateEntry* entry);

  fsa::Dfa dfa_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::shared_ptr<const tokenizer::TokenTrie> trie_;
  std::unordered_map<std::int32_t, StateEntry> state_index_;
  double preprocess_seconds_ = 0.0;
};

class RegexFsmDecoder : public ConstrainedDecoder {
 public:
  // Convenience: builds a private index from the pattern.
  RegexFsmDecoder(const std::string& regex,
                  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                  bool precompute_all_states = false);
  // Production shape: share one index across the batch.
  explicit RegexFsmDecoder(std::shared_ptr<RegexTokenIndex> index);

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override;
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override;
  void Reset() override { state_ = index_->Dfa().Start(); }
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(index_->Tokenizer().VocabSize());
  }
  std::int32_t EosTokenId() const override {
    return index_->Tokenizer().EosId();
  }
  // Unique forced continuation via the DFA (SGLang implements jump-forward
  // for Outlines the same way, Yin et al. 2024).
  std::string FindJumpForwardString(std::int32_t max_length = 256) override;
  double PreprocessSeconds() const override { return index_->PreprocessSeconds(); }

 private:
  std::string name_ = "Outlines";
  std::shared_ptr<RegexTokenIndex> index_;
  std::int32_t state_ = 0;
};

}  // namespace xgr::baselines
