#include "baselines/xgrammar_decoder.h"

#include "support/logging.h"

namespace xgr::baselines {

XGrammarDecoder::XGrammarDecoder(
    std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache,
    double preprocess_seconds)
    : cache_(std::move(cache)),
      generator_(cache_),
      matcher_(cache_->PdaShared()),
      preprocess_seconds_(preprocess_seconds) {}

void XGrammarDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  generator_.FillNextTokenBitmask(&matcher_, mask);
}

bool XGrammarDecoder::AcceptToken(std::int32_t token_id) {
  const tokenizer::TokenizerInfo& tokenizer = cache_->Tokenizer();
  if (token_id == tokenizer.EosId()) return matcher_.CanTerminate();
  if (tokenizer.IsSpecial(token_id)) return false;
  if (!matcher_.AcceptString(tokenizer.TokenBytes(token_id))) return false;
  matcher_.PushTokenCheckpoint();
  return true;
}

void XGrammarDecoder::VerifyDraft(const std::int32_t* draft,
                                  std::int32_t count,
                                  DraftVerifyResult* result,
                                  DynamicBitset* divergence_mask) {
  XGR_CHECK(open_draft_accepted_ < 0)
      << "VerifyDraft while a draft transaction is open";
  matcher::GrammarMatcher::TokenDraftResult walk;
  matcher_.VerifyTokenDraft(cache_->Tokenizer(), draft, count, &walk);
  result->accepted = walk.accepted;
  result->exhausted = walk.exhausted;
  result->terminated = walk.terminated;
  open_draft_accepted_ = walk.accepted;
  // The matcher sits at the accepted prefix, so the mask of this state IS
  // the divergence mask — one fill total instead of one per draft token.
  if (divergence_mask != nullptr) {
    generator_.FillNextTokenBitmask(&matcher_, divergence_mask);
  }
}

bool XGrammarDecoder::RollbackTokens(std::int32_t count) {
  if (count > matcher_.NumTokenCheckpoints()) return false;
  matcher_.RollbackTokens(count);
  return true;
}

void XGrammarDecoder::Reset() {
  // Reseed in place instead of constructing a fresh matcher: the persistent
  // stack pool is append-only, so its interned frames, the matcher's recycled
  // snapshots, and the mask generator's scratch matcher (which shares this
  // pool) all stay valid and warm across requests. The pool only grows when a
  // request reaches a (parent, node) chain no earlier request produced, so it
  // plateaus for steady workloads — but a long-lived decoder fed ever-deeper
  // nesting would grow it without bound, so an oversized pool is dropped and
  // the matcher rebuilt fresh (the generator's scratch matcher detects the
  // pool swap and rebuilds itself on the next mask).
  constexpr std::size_t kMaxRetainedFrames = 1u << 20;  // 16 MB of frames
  if (matcher_.Pool().Size() > kMaxRetainedFrames) {
    matcher_ = matcher::GrammarMatcher(cache_->PdaShared());
    generator_.ReleaseScratch();  // don't pin the dropped pool while idle
  } else {
    matcher_.ResetToStart();
  }
}

}  // namespace xgr::baselines
