#include "baselines/xgrammar_decoder.h"

namespace xgr::baselines {

XGrammarDecoder::XGrammarDecoder(
    std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache,
    double preprocess_seconds)
    : cache_(std::move(cache)),
      generator_(cache_),
      matcher_(cache_->PdaShared()),
      preprocess_seconds_(preprocess_seconds) {}

void XGrammarDecoder::FillNextTokenBitmask(DynamicBitset* mask) {
  generator_.FillNextTokenBitmask(&matcher_, mask);
}

bool XGrammarDecoder::AcceptToken(std::int32_t token_id) {
  const tokenizer::TokenizerInfo& tokenizer = cache_->Tokenizer();
  if (token_id == tokenizer.EosId()) return matcher_.CanTerminate();
  if (tokenizer.IsSpecial(token_id)) return false;
  if (!matcher_.AcceptString(tokenizer.TokenBytes(token_id))) return false;
  matcher_.PushTokenCheckpoint();
  return true;
}

bool XGrammarDecoder::RollbackTokens(std::int32_t count) {
  if (count > matcher_.NumTokenCheckpoints()) return false;
  matcher_.RollbackTokens(count);
  return true;
}

void XGrammarDecoder::Reset() {
  matcher_ = matcher::GrammarMatcher(cache_->PdaShared());
}

}  // namespace xgr::baselines
