// Decoder factory: builds per-request decoders for any engine kind, sharing
// the heavy per-task artifacts (compiled grammar, mask cache, DFA token
// index, token trie) across a batch — mirroring how the real serving
// integrations share compiled grammars between requests.
#pragma once

#include <memory>
#include <string>

#include "baselines/constrained_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "json/json.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

enum class EngineKind : std::uint8_t {
  kXGrammar,          // this paper
  kOutlines,          // regex DFA + token index (JSON Schema only)
  kOutlinesCfg,       // Outlines' CFG path: per-step vocabulary scan
  kLlamaCpp,          // PDA + full-vocab trie scan per step
  kLmFormatEnforcer,  // char-trie walk per step (JSON Schema only)
};

const char* EngineKindName(EngineKind kind);

class DecoderFactory {
 public:
  DecoderFactory(EngineKind kind,
                 std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer);

  // Prepares the heavy artifacts for a task. Exactly one of these must be
  // called before NewDecoder(). Schema tasks work with every engine; raw
  // grammar (CFG) tasks throw for the regex-only engines.
  void PrepareSchema(const json::Value& schema);
  void PrepareGrammar(const grammar::Grammar& grammar);

  // Cheap per-request decoder over the shared artifacts.
  std::shared_ptr<ConstrainedDecoder> NewDecoder();

  // One-time preprocessing wall time paid in Prepare*().
  double PreprocessSeconds() const { return preprocess_seconds_; }

  EngineKind Kind() const { return kind_; }
  // The mask cache (XGrammar only; nullptr otherwise) for stats reporting.
  std::shared_ptr<const cache::AdaptiveTokenMaskCache> MaskCache() const {
    return cache_;
  }

 private:
  EngineKind kind_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  // XGrammar / llama.cpp / Outlines-CFG artifacts.
  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache_;
  // Regex-engine artifacts.
  std::shared_ptr<class RegexTokenIndex> regex_index_;
  std::string regex_;
  double preprocess_seconds_ = 0.0;
};

}  // namespace xgr::baselines
