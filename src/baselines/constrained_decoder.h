// Common interface over constrained-decoding engines.
//
// The serving engine and the benchmark harnesses drive every engine —
// XGrammar and the three baseline strategies of Figure 9 — through this
// interface, so end-to-end comparisons (Figure 10, Table 1) exercise
// identical code paths apart from the grammar backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "support/dynamic_bitset.h"

namespace xgr::cache {
struct MaskGenStats;  // cache/mask_generator.h
}  // namespace xgr::cache

namespace xgr::compose {
struct TagDispatchStats;  // compose/tag_dispatch.h
}  // namespace xgr::compose

namespace xgr::baselines {

// Result of a k-token draft verification (see VerifyDraft below).
struct DraftVerifyResult {
  std::int32_t accepted = 0;  // grammar-accepted prefix length of the draft
  bool exhausted = false;     // accepted == draft length (no divergence)
  bool terminated = false;    // walk hit EOS at a position where EOS is legal
};

class ConstrainedDecoder {
 public:
  virtual ~ConstrainedDecoder() = default;

  virtual const std::string& Name() const = 0;

  // Computes the allowed-token bitmask for the current state (bit = 1 means
  // the token may be sampled). `mask` must be sized to the vocabulary.
  virtual void FillNextTokenBitmask(DynamicBitset* mask) = 0;

  // Advances the state by one sampled token. Returns false (state unchanged)
  // if the token is not a legal continuation.
  virtual bool AcceptToken(std::int32_t token_id) = 0;

  // True when EOS is currently legal (the structure is complete).
  virtual bool CanTerminate() = 0;

  // Restores the state to the beginning of the generation.
  virtual void Reset() = 0;

  // Rolls back the last `count` accepted tokens. Optional; engines without
  // rollback (all baselines) return false.
  virtual bool RollbackTokens(std::int32_t count) {
    (void)count;
    return false;
  }

  // --- Transactional multi-token decode protocol ---------------------------
  //
  // VerifyDraft walks a k-token draft in one transaction. On return the
  // decoder has ADVANCED to the grammar-accepted prefix and the transaction
  // is OPEN: the caller must close it with exactly one CommitDraft(keep)
  // before any other state-mutating call (AcceptToken, Reset, another
  // VerifyDraft, ...). When `divergence_mask` is non-null it receives the
  // next-token bitmask at the post-prefix state — the mask sequential
  // decoding would compute after accepting those tokens — sized like
  // FillNextTokenBitmask's.
  //
  // The default implementation is the documented slow path: k mask fills +
  // Test + AcceptToken, exactly the sequential protocol. Backends with cheap
  // rollback (XGrammarDecoder, the tag-dispatch composite) override it with
  // a native byte walk that fills no masks on the happy path.
  virtual void VerifyDraft(const std::int32_t* draft, std::int32_t count,
                           DraftVerifyResult* result,
                           DynamicBitset* divergence_mask);

  // Closes the open transaction keeping the first `keep` accepted tokens
  // (0 <= keep <= result.accepted); the rest are rolled back. Returns false
  // — keeping the full accepted prefix — when keep < accepted and the
  // backend cannot roll back. CommitDraft(0) aborts the transaction.
  virtual bool CommitDraft(std::int32_t keep);

  // True when CommitDraft may keep a strict prefix of the verified draft.
  // Engines without rollback only support keep == accepted (and keep == 0 is
  // then best-effort via RollbackTokens, which fails for them).
  virtual bool SupportsPartialCommit() const { return false; }

  // Vocabulary width of this decoder's masks, for callers that must size a
  // scratch bitmask without a tokenizer handle (0 when unknown).
  virtual std::size_t MaskBits() const { return 0; }

  // EOS token id for draft-walk handling (-1 when unknown).
  virtual std::int32_t EosTokenId() const { return -1; }

  // Longest forced continuation from the current state ("" when unsupported
  // or not unique), probing at most `max_length` bytes — same contract as
  // matcher::GrammarMatcher::FindJumpForwardString. Used by jump-forward
  // decoding.
  virtual std::string FindJumpForwardString(std::int32_t max_length = 256) {
    (void)max_length;
    return "";
  }

  // One-time preprocessing cost already paid by this decoder (grammar
  // compilation, mask cache, DFA token indexing, ...), for TTFT accounting.
  virtual double PreprocessSeconds() const { return 0.0; }

  // Mask-generation statistics (scratch-matcher reuse, merges, ...) when the
  // backend runs the adaptive mask cache; nullptr for engines without one.
  // The serving engine aggregates these per batch to observe the
  // zero-allocation decode hot path under load.
  virtual const cache::MaskGenStats* MaskStats() const { return nullptr; }

  // Tag-dispatch segment counters (dispatches, segment switches, prefetch
  // accounting) for the composite agentic decoder; nullptr for every other
  // backend. Aggregated by the serving engine like MaskStats().
  virtual const compose::TagDispatchStats* DispatchStats() const {
    return nullptr;
  }

 protected:
  // Accepted length of the currently open draft transaction (-1 when no
  // transaction is open). Native overrides record into this so the base
  // CommitDraft bookkeeping stays shared.
  std::int32_t open_draft_accepted_ = -1;

 private:
  // Scratch for the default VerifyDraft when the caller passes no mask.
  DynamicBitset fallback_mask_;
};

}  // namespace xgr::baselines
