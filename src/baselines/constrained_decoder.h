// Common interface over constrained-decoding engines.
//
// The serving engine and the benchmark harnesses drive every engine —
// XGrammar and the three baseline strategies of Figure 9 — through this
// interface, so end-to-end comparisons (Figure 10, Table 1) exercise
// identical code paths apart from the grammar backend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "support/dynamic_bitset.h"

namespace xgr::cache {
struct MaskGenStats;  // cache/mask_generator.h
}  // namespace xgr::cache

namespace xgr::compose {
struct TagDispatchStats;  // compose/tag_dispatch.h
}  // namespace xgr::compose

namespace xgr::baselines {

class ConstrainedDecoder {
 public:
  virtual ~ConstrainedDecoder() = default;

  virtual const std::string& Name() const = 0;

  // Computes the allowed-token bitmask for the current state (bit = 1 means
  // the token may be sampled). `mask` must be sized to the vocabulary.
  virtual void FillNextTokenBitmask(DynamicBitset* mask) = 0;

  // Advances the state by one sampled token. Returns false (state unchanged)
  // if the token is not a legal continuation.
  virtual bool AcceptToken(std::int32_t token_id) = 0;

  // True when EOS is currently legal (the structure is complete).
  virtual bool CanTerminate() = 0;

  // Restores the state to the beginning of the generation.
  virtual void Reset() = 0;

  // Rolls back the last `count` accepted tokens. Optional; engines without
  // rollback (all baselines) return false.
  virtual bool RollbackTokens(std::int32_t count) {
    (void)count;
    return false;
  }

  // Longest forced continuation from the current state ("" when unsupported
  // or not unique). Used by jump-forward decoding.
  virtual std::string FindJumpForwardString() { return ""; }

  // One-time preprocessing cost already paid by this decoder (grammar
  // compilation, mask cache, DFA token indexing, ...), for TTFT accounting.
  virtual double PreprocessSeconds() const { return 0.0; }

  // Mask-generation statistics (scratch-matcher reuse, merges, ...) when the
  // backend runs the adaptive mask cache; nullptr for engines without one.
  // The serving engine aggregates these per batch to observe the
  // zero-allocation decode hot path under load.
  virtual const cache::MaskGenStats* MaskStats() const { return nullptr; }

  // Tag-dispatch segment counters (dispatches, segment switches, prefetch
  // accounting) for the composite agentic decoder; nullptr for every other
  // backend. Aggregated by the serving engine like MaskStats().
  virtual const compose::TagDispatchStats* DispatchStats() const {
    return nullptr;
  }
};

}  // namespace xgr::baselines
