// llama.cpp-grammar baseline strategy (Gerganov 2023).
//
// Keeps PDA stacks for the partial output, but builds every token mask by
// checking the whole vocabulary against the automaton at runtime — every
// candidate token's bytes are interpreted individually (llama.cpp's
// llama_grammar_reject_candidates has no prefix sharing across candidates),
// with early exit on the first invalid byte. Cost per step is O(vocabulary
// bytes), the overhead Figure 9/10 and Table 3 quantify.
#pragma once

#include <memory>

#include "baselines/constrained_decoder.h"
#include "matcher/grammar_matcher.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

class PdaBaselineDecoder : public ConstrainedDecoder {
 public:
  PdaBaselineDecoder(std::shared_ptr<const pda::CompiledGrammar> pda,
                     std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer);

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override;
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return matcher_.CanTerminate(); }
  void Reset() override;
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(tokenizer_->VocabSize());
  }
  std::int32_t EosTokenId() const override { return tokenizer_->EosId(); }

 private:
  std::string name_ = "llama.cpp-grammar";
  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  matcher::GrammarMatcher matcher_;
};

}  // namespace xgr::baselines
