// The paper's system behind the ConstrainedDecoder interface: compiled PDA +
// adaptive token mask cache + persistent-stack matcher.
#pragma once

#include <memory>

#include "baselines/constrained_decoder.h"
#include "cache/mask_generator.h"
#include "matcher/grammar_matcher.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {

class XGrammarDecoder : public ConstrainedDecoder {
 public:
  // `cache` carries the compiled grammar and tokenizer. `preprocess_seconds`
  // lets callers account the one-time build cost for TTFT experiments.
  explicit XGrammarDecoder(std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache,
                           double preprocess_seconds = 0.0);

  const std::string& Name() const override { return name_; }
  void FillNextTokenBitmask(DynamicBitset* mask) override;
  bool AcceptToken(std::int32_t token_id) override;
  bool CanTerminate() override { return matcher_.CanTerminate(); }
  void Reset() override;
  bool RollbackTokens(std::int32_t count) override;
  // Native transactional verify: one byte walk over the draft, no mask fills
  // on the happy path; partial commits ride the O(1) rollback fast path (the
  // base CommitDraft closes the transaction through RollbackTokens).
  void VerifyDraft(const std::int32_t* draft, std::int32_t count,
                   DraftVerifyResult* result,
                   DynamicBitset* divergence_mask) override;
  bool SupportsPartialCommit() const override { return true; }
  std::size_t MaskBits() const override {
    return static_cast<std::size_t>(cache_->Tokenizer().VocabSize());
  }
  std::int32_t EosTokenId() const override {
    return cache_->Tokenizer().EosId();
  }
  std::string FindJumpForwardString(std::int32_t max_length = 256) override {
    return matcher_.FindJumpForwardString(max_length);
  }
  double PreprocessSeconds() const override { return preprocess_seconds_; }
  const cache::MaskGenStats* MaskStats() const override {
    return &generator_.Stats();
  }

  matcher::GrammarMatcher& Matcher() { return matcher_; }
  // The generator owns the per-request MaskWorkspace (scratch bitsets +
  // reusable scratch matcher); FillNextTokenBitmask is allocation-free in
  // steady state. Stats expose scratch reseed/rebuild counts.
  const cache::MaskGenerator& Generator() const { return generator_; }

  // Cheap per-branch decoder (§3.3 tree decoding): the fork continues from
  // this decoder's current position, sharing the persistent stack pool.
  // Token rollback inside the fork is bounded by the fork point. Same-thread
  // use only (see GrammarMatcher::Fork) — that includes FillNextTokenBitmask,
  // which interns into the shared pool, so do NOT submit pool-sharing forks
  // as separate ServingEngine requests (the overlap scheduler computes masks
  // for different requests on different threads).
  std::shared_ptr<XGrammarDecoder> Fork() const {
    return std::shared_ptr<XGrammarDecoder>(
        new XGrammarDecoder(cache_, matcher_.Fork(), preprocess_seconds_));
  }

 private:
  XGrammarDecoder(std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache,
                  matcher::GrammarMatcher matcher, double preprocess_seconds)
      : cache_(std::move(cache)),
        generator_(cache_),
        matcher_(std::move(matcher)),
        preprocess_seconds_(preprocess_seconds) {}

  std::string name_ = "XGrammar";
  std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache_;
  cache::MaskGenerator generator_;
  matcher::GrammarMatcher matcher_;
  double preprocess_seconds_;
};

}  // namespace xgr::baselines
