#include "baselines/tag_dispatch_decoder.h"

namespace xgr::baselines {

bool TagDispatchDecoder::AcceptToken(std::int32_t token_id) {
  const tokenizer::TokenizerInfo& tokenizer = matcher_.Plan().Tokenizer();
  if (token_id == tokenizer.EosId()) return matcher_.CanTerminate();
  if (tokenizer.IsSpecial(token_id)) return false;
  return matcher_.AcceptBytes(tokenizer.TokenBytes(token_id));
}

const compose::TagDispatchStats* TagDispatchDecoder::DispatchStats() const {
  merged_stats_ = matcher_.Stats();
  const compose::TagDispatchStats& plan = matcher_.Plan().BuildStats();
  merged_stats_.tags = plan.tags;
  merged_stats_.prefetch_submits = plan.prefetch_submits;
  merged_stats_.prefetch_hits = plan.prefetch_hits;
  merged_stats_.prefetch_waits = plan.prefetch_waits;
  return &merged_stats_;
}

}  // namespace xgr::baselines
