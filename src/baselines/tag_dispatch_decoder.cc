#include "baselines/tag_dispatch_decoder.h"

#include "support/logging.h"

namespace xgr::baselines {

bool TagDispatchDecoder::AcceptToken(std::int32_t token_id) {
  const tokenizer::TokenizerInfo& tokenizer = matcher_.Plan().Tokenizer();
  if (token_id == tokenizer.EosId()) return matcher_.CanTerminate();
  if (tokenizer.IsSpecial(token_id)) return false;
  return matcher_.AcceptBytes(tokenizer.TokenBytes(token_id));
}

void TagDispatchDecoder::VerifyDraft(const std::int32_t* draft,
                                     std::int32_t count,
                                     DraftVerifyResult* result,
                                     DynamicBitset* divergence_mask) {
  XGR_CHECK(open_draft_accepted_ < 0)
      << "VerifyDraft while a draft transaction is open";
  compose::TagDispatchMatcher::TokenDraftResult walk;
  matcher_.VerifyTokenDraft(draft, count, &walk);
  result->accepted = walk.accepted;
  result->exhausted = walk.exhausted;
  result->terminated = walk.terminated;
  open_draft_accepted_ = walk.accepted;
  if (divergence_mask != nullptr) matcher_.FillNextTokenBitmask(divergence_mask);
}

bool TagDispatchDecoder::CommitDraft(std::int32_t keep) {
  const std::int32_t accepted = open_draft_accepted_;
  XGR_CHECK(accepted >= 0) << name_ << ": CommitDraft without VerifyDraft";
  XGR_CHECK(keep >= 0 && keep <= accepted)
      << "CommitDraft keep out of range: " << keep << " of " << accepted;
  open_draft_accepted_ = -1;
  matcher_.CommitDraft(keep);
  return true;
}

const compose::TagDispatchStats* TagDispatchDecoder::DispatchStats() const {
  merged_stats_ = matcher_.Stats();
  const compose::TagDispatchStats& plan = matcher_.Plan().BuildStats();
  merged_stats_.tags = plan.tags;
  merged_stats_.prefetch_submits = plan.prefetch_submits;
  merged_stats_.prefetch_hits = plan.prefetch_hits;
  merged_stats_.prefetch_waits = plan.prefetch_waits;
  return &merged_stats_;
}

}  // namespace xgr::baselines
