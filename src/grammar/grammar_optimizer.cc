// Grammar optimizer pass implementations. See grammar_optimizer.h for the
// pipeline contract: every pass preserves the byte-level language exactly.
#include "grammar/grammar_optimizer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>

#include "fsa/dfa.h"
#include "fsa/fsa.h"
#include "grammar/expr_rewrite.h"
#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::grammar {

void PassPipeline::Add(std::unique_ptr<GrammarPass> pass) {
  XGR_CHECK(pass != nullptr);
  passes_.push_back(std::move(pass));
}

bool PassPipeline::Run(Grammar* grammar, std::vector<PassStats>* stats) const {
  XGR_CHECK(grammar != nullptr);
  bool any = false;
  for (const auto& pass : passes_) {
    PassStats s;
    s.name = pass->Name();
    s.rules_before = grammar->NumRules();
    s.exprs_before = grammar->NumExprs();
    s.arena_bytes_before = static_cast<std::int64_t>(grammar->ArenaBytes());
    const auto t0 = std::chrono::steady_clock::now();
    s.changed = pass->Run(grammar);
    const auto t1 = std::chrono::steady_clock::now();
    s.wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
    s.rules_after = grammar->NumRules();
    s.exprs_after = grammar->NumExprs();
    s.arena_bytes_after = static_cast<std::int64_t>(grammar->ArenaBytes());
    any = any || s.changed;
    if (stats != nullptr) stats->push_back(std::move(s));
  }
  return any;
}

namespace {

// --- normalize --------------------------------------------------------------

class NormalizePass final : public GrammarPass {
 public:
  const char* Name() const override { return "normalize"; }
  bool Run(Grammar* grammar) override {
    std::vector<ExprId> before;
    before.reserve(static_cast<std::size_t>(grammar->NumRules()));
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      before.push_back(grammar->GetRule(r).body);
    }
    NormalizeGrammar(grammar);
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      if (grammar->GetRule(r).body != before[static_cast<std::size_t>(r)]) {
        return true;
      }
    }
    return false;
  }
};

// --- eps-elim ---------------------------------------------------------------

// Substitutes away rules whose entire body is epsilon: every reference to
// such a rule is replaced by kEmpty, then normalization removes the hole.
// Iterates because the cleanup can expose new epsilon-bodied rules. The
// emptied rules themselves become unreachable and are collected by
// dead-compact.
class EpsilonEliminationPass final : public GrammarPass {
 public:
  const char* Name() const override { return "eps-elim"; }
  bool Run(Grammar* grammar) override {
    bool any = false;
    constexpr int kMaxIterations = 8;
    for (int iter = 0; iter < kMaxIterations; ++iter) {
      std::vector<RuleId> eps_rules;
      for (RuleId r = 0; r < grammar->NumRules(); ++r) {
        if (r == grammar->RootRule()) continue;
        if (grammar->GetExpr(grammar->GetRule(r).body).type ==
            ExprType::kEmpty) {
          eps_rules.push_back(r);
        }
      }
      if (eps_rules.empty()) break;
      bool changed = false;
      for (RuleId r = 0; r < grammar->NumRules(); ++r) {
        ExprId body = grammar->GetRule(r).body;
        for (RuleId eps : eps_rules) {
          if (r == eps) continue;
          ExprId rewritten = detail::SubstituteRule(
              grammar, body, eps, grammar->GetRule(eps).body);
          if (rewritten != body) {
            body = rewritten;
            changed = true;
          }
        }
        grammar->SetRuleBody(r, body);
      }
      if (!changed) break;
      NormalizeGrammar(grammar);
      any = true;
    }
    return any;
  }
};

// --- unit-collapse ----------------------------------------------------------

// A unit rule's body is exactly one kRuleRef. Redirect every reference
// through the alias chain to its terminal rule; the aliases become
// unreachable. Chains that loop back on themselves (a ::= b; b ::= a — an
// empty language) are left untouched.
class UnitRuleCollapsePass final : public GrammarPass {
 public:
  const char* Name() const override { return "unit-collapse"; }
  bool Run(Grammar* grammar) override {
    const std::int32_t n = grammar->NumRules();
    std::vector<RuleId> alias(static_cast<std::size_t>(n), kInvalidRule);
    bool has_alias = false;
    for (RuleId r = 0; r < n; ++r) {
      if (r == grammar->RootRule()) continue;
      const Expr& body = grammar->GetExpr(grammar->GetRule(r).body);
      if (body.type == ExprType::kRuleRef) {
        alias[static_cast<std::size_t>(r)] = body.rule_ref;
        has_alias = true;
      }
    }
    if (!has_alias) return false;

    std::vector<RuleId> target(static_cast<std::size_t>(n));
    for (RuleId r = 0; r < n; ++r) {
      RuleId cur = r;
      std::unordered_set<RuleId> seen;
      while (alias[static_cast<std::size_t>(cur)] != kInvalidRule &&
             seen.insert(cur).second) {
        cur = alias[static_cast<std::size_t>(cur)];
      }
      const bool cycle = alias[static_cast<std::size_t>(cur)] != kInvalidRule;
      target[static_cast<std::size_t>(r)] = cycle ? r : cur;
    }

    bool changed = false;
    for (RuleId r = 0; r < n; ++r) {
      ExprId body = grammar->GetRule(r).body;
      ExprId rewritten = detail::RewriteExprBottomUp(
          grammar, body,
          [&](ExprId id, std::vector<ExprId> children,
              bool child_changed) -> ExprId {
            const Expr& expr = grammar->GetExpr(id);
            if (expr.type == ExprType::kRuleRef) {
              RuleId t = target[static_cast<std::size_t>(expr.rule_ref)];
              return t == expr.rule_ref ? id : grammar->AddRuleRef(t);
            }
            if (!child_changed) return id;
            switch (expr.type) {
              case ExprType::kSequence:
                return grammar->AddSequence(std::move(children));
              case ExprType::kChoice:
                return grammar->AddChoice(std::move(children));
              case ExprType::kRepeat:
                return grammar->AddRepeat(children[0], expr.min_repeat,
                                          expr.max_repeat);
              default:
                return id;
            }
          });
      if (rewritten != body) {
        grammar->SetRuleBody(r, rewritten);
        changed = true;
      }
    }
    return changed;
  }
};

// --- inline -----------------------------------------------------------------

class InlinePass final : public GrammarPass {
 public:
  explicit InlinePass(const InlineOptions& options) : options_(options) {}
  const char* Name() const override { return "inline"; }
  bool Run(Grammar* grammar) override {
    return InlineFragmentRules(grammar, options_) > 0;
  }

 private:
  InlineOptions options_;
};

// --- atom-merge -------------------------------------------------------------

// Inside sequences: concatenate adjacent byte-string children. Inside
// choices: drop duplicate (id-identical) alternates and union char-class and
// single-codepoint byte-string alternates into one char class — both match
// exactly one codepoint, so the union is language-equal.
class AtomMergePass final : public GrammarPass {
 public:
  const char* Name() const override { return "atom-merge"; }
  bool Run(Grammar* grammar) override {
    bool changed = false;
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      ExprId body = grammar->GetRule(r).body;
      ExprId rewritten = detail::RewriteExprBottomUp(
          grammar, body,
          [&](ExprId id, std::vector<ExprId> children, bool child_changed) {
            return MergeNode(grammar, id, std::move(children), child_changed);
          });
      if (rewritten != body) {
        grammar->SetRuleBody(r, rewritten);
        changed = true;
      }
    }
    return changed;
  }

 private:
  static ExprId MergeNode(Grammar* grammar, ExprId id,
                          std::vector<ExprId> children, bool child_changed) {
    const ExprType type = grammar->GetExpr(id).type;
    switch (type) {
      case ExprType::kEmpty:
      case ExprType::kByteString:
      case ExprType::kCharClass:
      case ExprType::kRuleRef:
        return id;
      case ExprType::kRepeat: {
        if (!child_changed) return id;
        const Expr self = grammar->GetExpr(id);  // copy (arena growth below)
        return grammar->AddRepeat(children[0], self.min_repeat,
                                  self.max_repeat);
      }
      case ExprType::kSequence: {
        std::vector<ExprId> out;
        out.reserve(children.size());
        bool merged = false;
        for (ExprId child : children) {
          if (grammar->GetExpr(child).type == ExprType::kByteString &&
              !out.empty() &&
              grammar->GetExpr(out.back()).type == ExprType::kByteString) {
            std::string combined = grammar->GetExpr(out.back()).bytes +
                                   grammar->GetExpr(child).bytes;
            out.back() = grammar->AddByteString(std::move(combined));
            merged = true;
          } else {
            out.push_back(child);
          }
        }
        if (!child_changed && !merged) return id;
        return grammar->AddSequence(std::move(out));
      }
      case ExprType::kChoice: {
        std::vector<ExprId> out;
        out.reserve(children.size());
        bool merged = false;
        std::unordered_set<ExprId> seen;
        std::vector<regex::CodepointRange> ranges;
        int collected = 0;
        std::size_t class_pos = 0;
        ExprId first_collected = kInvalidExpr;
        for (ExprId child : children) {
          if (!seen.insert(child).second) {
            merged = true;  // duplicate alternate
            continue;
          }
          const Expr& ce = grammar->GetExpr(child);
          bool single_codepoint = false;
          std::uint32_t codepoint = 0;
          if (ce.type == ExprType::kByteString) {
            xgr::DecodedChar dc = xgr::DecodeUtf8(ce.bytes, 0);
            if (dc.ok && static_cast<std::size_t>(dc.length) == ce.bytes.size()) {
              single_codepoint = true;
              codepoint = dc.codepoint;
            }
          }
          if (ce.type == ExprType::kCharClass || single_codepoint) {
            if (collected == 0) {
              class_pos = out.size();
              out.push_back(child);  // placeholder, replaced if merging
              first_collected = child;
            }
            if (ce.type == ExprType::kCharClass) {
              ranges.insert(ranges.end(), ce.ranges.begin(), ce.ranges.end());
            } else {
              ranges.push_back({codepoint, codepoint});
            }
            ++collected;
            continue;
          }
          out.push_back(child);
        }
        if (collected >= 2) {
          out[class_pos] = grammar->AddCharClass(std::move(ranges), false);
          merged = true;
        } else if (collected == 1) {
          out[class_pos] = first_collected;
        }
        if (!child_changed && !merged) return id;
        return grammar->AddChoice(std::move(out));
      }
    }
    XGR_UNREACHABLE();
  }
};

// --- fsa-minimize -----------------------------------------------------------

struct Fragment {
  std::int32_t entry;
  std::int32_t exit;
};

// Iterative (explicit-frame) Thompson lowering of a recursion-free expr into
// `fsa`; mirrors the PDA compiler's construction node for node.
Fragment LowerExprToFsa(const Grammar& grammar, ExprId root, fsa::Fsa* fsa) {
  struct Frame {
    ExprId id;
    std::vector<ExprId> requests;  // child compilations, in completion order
    std::vector<Fragment> done;
  };
  auto make_frame = [&grammar](ExprId id) {
    Frame f;
    f.id = id;
    const Expr& expr = grammar.GetExpr(id);
    switch (expr.type) {
      case ExprType::kSequence:
      case ExprType::kChoice:
        f.requests = expr.children;
        break;
      case ExprType::kRepeat: {
        // Bounded repeats compile max copies; unbounded compile min + the
        // loop body — the same unrolling the PDA compiler performs.
        std::int32_t copies = expr.max_repeat == -1 ? expr.min_repeat + 1
                                                    : expr.max_repeat;
        f.requests.assign(static_cast<std::size_t>(copies), expr.children[0]);
        break;
      }
      default:
        break;
    }
    return f;
  };
  auto combine = [&grammar, fsa](const Frame& f) -> Fragment {
    const Expr& expr = grammar.GetExpr(f.id);
    switch (expr.type) {
      case ExprType::kEmpty: {
        std::int32_t s = fsa->AddState();
        return {s, s};
      }
      case ExprType::kByteString: {
        std::int32_t entry = fsa->AddState();
        std::int32_t exit = fsa->AddState();
        fsa->AddLiteralPath(entry, expr.bytes, exit);
        return {entry, exit};
      }
      case ExprType::kCharClass: {
        std::int32_t entry = fsa->AddState();
        std::int32_t exit = fsa->AddState();
        regex::AddCodepointRangesPath(fsa, entry, exit, expr.ranges);
        return {entry, exit};
      }
      case ExprType::kRuleRef:
        XGR_CHECK(false) << "rule ref in recursion-free lowering";
        XGR_UNREACHABLE();
      case ExprType::kSequence: {
        Fragment result = f.done[0];
        for (std::size_t i = 1; i < f.done.size(); ++i) {
          fsa->AddEpsilonEdge(result.exit, f.done[i].entry);
          result.exit = f.done[i].exit;
        }
        return result;
      }
      case ExprType::kChoice: {
        std::int32_t entry = fsa->AddState();
        std::int32_t exit = fsa->AddState();
        for (const Fragment& alt : f.done) {
          fsa->AddEpsilonEdge(entry, alt.entry);
          fsa->AddEpsilonEdge(alt.exit, exit);
        }
        return {entry, exit};
      }
      case ExprType::kRepeat: {
        std::int32_t entry = fsa->AddState();
        std::int32_t current = entry;
        std::size_t idx = 0;
        for (std::int32_t i = 0; i < expr.min_repeat; ++i) {
          const Fragment& rep = f.done[idx++];
          fsa->AddEpsilonEdge(current, rep.entry);
          current = rep.exit;
        }
        if (expr.max_repeat == -1) {
          std::int32_t loop = fsa->AddState();
          std::int32_t exit = fsa->AddState();
          fsa->AddEpsilonEdge(current, loop);
          const Fragment& rep = f.done[idx++];
          fsa->AddEpsilonEdge(loop, rep.entry);
          fsa->AddEpsilonEdge(rep.exit, loop);
          fsa->AddEpsilonEdge(loop, exit);
          return {entry, exit};
        }
        std::int32_t exit = fsa->AddState();
        fsa->AddEpsilonEdge(current, exit);
        for (std::int32_t i = expr.min_repeat; i < expr.max_repeat; ++i) {
          const Fragment& rep = f.done[idx++];
          fsa->AddEpsilonEdge(current, rep.entry);
          fsa->AddEpsilonEdge(rep.exit, exit);
          current = rep.exit;
        }
        return {entry, exit};
      }
    }
    XGR_UNREACHABLE();
  };

  std::vector<Frame> stack;
  stack.push_back(make_frame(root));
  while (true) {
    Frame& top = stack.back();
    if (top.done.size() < top.requests.size()) {
      ExprId next = top.requests[top.done.size()];
      stack.push_back(make_frame(next));
      continue;
    }
    Fragment frag = combine(top);
    stack.pop_back();
    if (stack.empty()) return frag;
    stack.back().done.push_back(frag);
  }
}

// One maximal byte range [lo, hi] as an expression, or kInvalidExpr when it
// cannot be expressed without changing the language. Legality: codepoints
// <= 0x7F encode as the identical single byte, so ASCII ranges map to a char
// class; bytes >= 0x80 are NOT single-codepoint ranges (char classes expand
// through UTF-8 at lowering), but a lone byte is expressible as a one-byte
// kByteString, so narrow high ranges become a choice of single bytes. Wide
// high ranges are inexpressible — the caller keeps the original rule body.
ExprId ByteRangeToExpr(Grammar* grammar, int lo, int hi) {
  std::vector<ExprId> alts;
  if (lo <= 0x7F) {
    int ascii_hi = std::min(hi, 0x7F);
    alts.push_back(grammar->AddCharClass(
        {{static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(ascii_hi)}},
        false));
    lo = 0x80;
  }
  if (lo <= hi) {
    if (hi - lo + 1 > 4) return kInvalidExpr;
    for (int b = lo; b <= hi; ++b) {
      alts.push_back(grammar->AddByteString(std::string(1, static_cast<char>(b))));
    }
  }
  return grammar->AddChoice(std::move(alts));
}

// GNFA state elimination: re-emits `dfa` as a grammar expression. Returns
// kInvalidExpr when a transition is inexpressible, a label outgrows
// `max_atoms`, or the language is empty.
ExprId EmitDfaAsExpr(Grammar* grammar, const fsa::Dfa& dfa,
                     std::int32_t max_atoms) {
  const std::int32_t m = dfa.NumStates();
  const std::int32_t kSuperStart = m;
  const std::int32_t kSuperAccept = m + 1;
  const std::int32_t total = m + 2;
  std::vector<std::vector<ExprId>> label(
      static_cast<std::size_t>(total),
      std::vector<ExprId>(static_cast<std::size_t>(total), kInvalidExpr));
  auto add_alt = [&](std::int32_t i, std::int32_t j, ExprId e) {
    ExprId& slot = label[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    slot = slot == kInvalidExpr ? e : grammar->AddChoice({slot, e});
  };
  label[static_cast<std::size_t>(kSuperStart)]
       [static_cast<std::size_t>(dfa.Start())] = grammar->AddEmpty();
  for (std::int32_t q = 0; q < m; ++q) {
    if (dfa.IsAccepting(q)) {
      label[static_cast<std::size_t>(q)]
           [static_cast<std::size_t>(kSuperAccept)] = grammar->AddEmpty();
    }
  }
  for (std::int32_t q = 0; q < m; ++q) {
    int b = 0;
    while (b < 256) {
      std::int32_t t = dfa.Next(q, static_cast<std::uint8_t>(b));
      int e = b;
      while (e + 1 < 256 &&
             dfa.Next(q, static_cast<std::uint8_t>(e + 1)) == t) {
        ++e;
      }
      if (t != fsa::Dfa::kDead) {
        ExprId range = ByteRangeToExpr(grammar, b, e);
        if (range == kInvalidExpr) return kInvalidExpr;
        add_alt(q, t, range);
      }
      b = e + 1;
    }
  }

  // Eliminate original states, cheapest fan-in × fan-out first.
  std::vector<char> alive(static_cast<std::size_t>(m), 1);
  for (std::int32_t step = 0; step < m; ++step) {
    std::int32_t q = -1;
    std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
    for (std::int32_t c = 0; c < m; ++c) {
      if (!alive[static_cast<std::size_t>(c)]) continue;
      std::int64_t in = 0, out = 0;
      for (std::int32_t i = 0; i < total; ++i) {
        if (i != c && label[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] != kInvalidExpr) ++in;
        if (i != c && label[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] != kInvalidExpr) ++out;
      }
      if (in * out < best_cost) {
        best_cost = in * out;
        q = c;
      }
    }
    alive[static_cast<std::size_t>(q)] = 0;
    ExprId self = label[static_cast<std::size_t>(q)][static_cast<std::size_t>(q)];
    ExprId star = self == kInvalidExpr ? kInvalidExpr : grammar->AddStar(self);
    for (std::int32_t i = 0; i < total; ++i) {
      if (i == q) continue;
      ExprId in_label = label[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
      if (in_label == kInvalidExpr) continue;
      for (std::int32_t j = 0; j < total; ++j) {
        if (j == q) continue;
        ExprId out_label = label[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)];
        if (out_label == kInvalidExpr) continue;
        std::vector<ExprId> parts;
        auto push = [&](ExprId e) {
          if (grammar->GetExpr(e).type != ExprType::kEmpty) parts.push_back(e);
        };
        push(in_label);
        if (star != kInvalidExpr) push(star);
        push(out_label);
        ExprId seg =
            parts.empty() ? grammar->AddEmpty()
                          : grammar->AddSequence(std::move(parts));
        add_alt(i, j, seg);
        if (grammar->ExprSize(label[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) > max_atoms) {
          return kInvalidExpr;
        }
      }
    }
    for (std::int32_t i = 0; i < total; ++i) {
      label[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)] = kInvalidExpr;
      label[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] = kInvalidExpr;
    }
  }
  return label[static_cast<std::size_t>(kSuperStart)]
              [static_cast<std::size_t>(kSuperAccept)];
}

class FsaMinimizePass final : public GrammarPass {
 public:
  explicit FsaMinimizePass(const OptimizerOptions& options)
      : options_(options) {}
  const char* Name() const override { return "fsa-minimize"; }
  bool Run(Grammar* grammar) override {
    bool changed = false;
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      ExprId body = grammar->GetRule(r).body;
      ExprId minimized = TryMinimize(grammar, body);
      if (minimized != kInvalidExpr) {
        grammar->SetRuleBody(r, minimized);
        changed = true;
      }
    }
    // Re-normalize: GNFA emission nests choices/sequences freely. Abandoned
    // intermediates stay stranded in the arena until dead-compact runs.
    if (changed) NormalizeGrammar(grammar);
    return changed;
  }

 private:
  ExprId TryMinimize(Grammar* grammar, ExprId body) const {
    const std::int32_t source_atoms = grammar->ExprSize(body);
    if (source_atoms > options_.fsa_max_source_atoms) return kInvalidExpr;
    if (!detail::CountRuleRefs(*grammar, body).empty()) return kInvalidExpr;

    fsa::Fsa nfa;
    Fragment frag = LowerExprToFsa(*grammar, body, &nfa);
    nfa.SetStart(frag.entry);
    nfa.SetAccepting(frag.exit, true);
    std::vector<std::int32_t> roots{frag.entry};
    fsa::Fsa clean = fsa::EliminateEpsilon(nfa, &roots);
    clean.SetStart(roots[0]);

    fsa::Dfa minimal;
    try {
      minimal = fsa::Minimize(fsa::Determinize(clean, options_.fsa_max_dfa_states));
    } catch (const CheckError&) {
      return kInvalidExpr;  // DFA state explosion: keep the original body
    }
    ExprId emitted =
        EmitDfaAsExpr(grammar, minimal, options_.fsa_max_result_atoms);
    if (emitted == kInvalidExpr) return kInvalidExpr;
    // Only a strict win replaces the body.
    if (grammar->ExprSize(emitted) >= source_atoms) return kInvalidExpr;
    return emitted;
  }

  OptimizerOptions options_;
};

// --- dead-compact -----------------------------------------------------------

class DeadCompactPass final : public GrammarPass {
 public:
  const char* Name() const override { return "dead-compact"; }
  bool Run(Grammar* grammar) override {
    const std::int32_t exprs_before = grammar->NumExprs();
    const int removed = RemoveUnreachableRules(grammar);
    return removed > 0 || grammar->NumExprs() != exprs_before;
  }
};

}  // namespace

PassPipeline BuildOptimizerPipeline(const OptimizerOptions& options) {
  PassPipeline pipeline;
  if (options.normalize) {
    pipeline.Add(std::make_unique<NormalizePass>());
  }
  if (options.epsilon_elimination) {
    pipeline.Add(std::make_unique<EpsilonEliminationPass>());
  }
  if (options.unit_rule_collapse) {
    pipeline.Add(std::make_unique<UnitRuleCollapsePass>());
  }
  if (options.rule_inlining) {
    pipeline.Add(std::make_unique<InlinePass>(options.inline_options));
  }
  if (options.atom_merging) {
    pipeline.Add(std::make_unique<AtomMergePass>());
  }
  if (options.fsa_minimization) {
    pipeline.Add(std::make_unique<FsaMinimizePass>(options));
  }
  if (options.dead_rule_elimination) {
    pipeline.Add(std::make_unique<DeadCompactPass>());
  }
  return pipeline;
}

bool OptimizeGrammar(Grammar* grammar, const OptimizerOptions& options,
                     std::vector<PassStats>* stats) {
  return BuildOptimizerPipeline(options).Run(grammar, stats);
}

}  // namespace xgr::grammar
