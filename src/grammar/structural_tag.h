// Structural tags: constrained tool-call segments embedded in free text.
//
// The reference implementation exposes "structural tags" as a grammar source
// alongside EBNF, regex and JSON Schema: the model emits unconstrained prose
// until it produces one of a small set of *trigger* strings (for example
// "<function="); from that point the output must complete one of the tags
// whose begin marker starts with that trigger — the rest of the begin marker,
// a body conforming to the tag's JSON schema, then the end marker — after
// which free text resumes. This is how function calling is enforced without
// constraining the surrounding explanation text.
//
// We encode the whole protocol as one context-free grammar:
//
//   root      ::= free ( tag free )*
//   tag       ::= begin_1 body_1 end_1 | ... | begin_n body_n end_n
//   free      ::= text containing no occurrence of any trigger
//
// The trigger-avoiding free-text language is regular; we build it from the
// Aho-Corasick automaton of the trigger set (one grammar rule per automaton
// state, right-recursive). Right recursion grows the matching stack with the
// length of the free text, which is exactly the access pattern the persistent
// execution stack (§3.3) makes cheap: each byte appends O(1) tree nodes.
//
// Boundary semantics: the *triggers* are forbidden in free text, not the full
// begin markers; a begin marker must start with exactly one trigger. A free
// segment may end with a proper prefix of a trigger (for example "a < b"
// never completes the trigger "<fn" and is plain text).
#pragma once

#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "json/json.h"

namespace xgr::grammar {

struct StructuralTag {
  std::string begin;        // full begin marker, e.g. "<function=get_weather>"
  std::string schema_text;  // JSON schema for the body; "" = unconstrained JSON
  std::string end;          // end marker, e.g. "</function>"
};

struct StructuralTagOptions {
  JsonSchemaOptions schema_options;
  // When false, the output must consist of tag invocations only (no prose
  // before, between or after) — the free rules still appear but match "".
  bool allow_free_text = true;
  // Maximum number of tag invocations; -1 = unbounded.
  std::int32_t max_invocations = -1;
  // Require at least one invocation (an output of pure prose is rejected).
  bool require_invocation = false;
};

// Builds the combined grammar. Requirements, checked with xgr::CheckError:
// tags and triggers are non-empty; every trigger is non-empty printable
// ASCII; every tag's begin marker extends exactly one trigger; schemas parse.
Grammar BuildStructuralTagGrammar(const std::vector<StructuralTag>& tags,
                                  const std::vector<std::string>& triggers,
                                  const StructuralTagOptions& options = {});

// The trigger-avoiding free-text grammar alone (root matches any text with
// no occurrence of any trigger). Exposed for tests and reuse.
Grammar BuildTriggerFreeTextGrammar(const std::vector<std::string>& triggers);

}  // namespace xgr::grammar
