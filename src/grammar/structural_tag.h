// Structural tags: constrained tool-call segments embedded in free text.
//
// The reference implementation exposes "structural tags" as a grammar source
// alongside EBNF, regex and JSON Schema: the model emits unconstrained prose
// until it produces one of a small set of *trigger* strings (for example
// "<function="); from that point the output must complete one of the tags
// whose begin marker starts with that trigger — the rest of the begin marker,
// a body conforming to the tag's JSON schema, then the end marker — after
// which free text resumes. This is how function calling is enforced without
// constraining the surrounding explanation text.
//
// We encode the whole protocol as one context-free grammar:
//
//   root      ::= free ( tag free )*
//   tag       ::= begin_1 body_1 end_1 | ... | begin_n body_n end_n
//   free      ::= text containing no occurrence of any trigger
//
// The trigger-avoiding free-text language is regular; we build it from the
// Aho-Corasick automaton of the trigger set (one grammar rule per automaton
// state, right-recursive). Right recursion grows the matching stack with the
// length of the free text, which is exactly the access pattern the persistent
// execution stack (§3.3) makes cheap: each byte appends O(1) tree nodes.
//
// Boundary semantics: the *triggers* are forbidden in free text, not the full
// begin markers; a begin marker must start with exactly one trigger. A free
// segment may end with a proper prefix of a trigger (for example "a < b"
// never completes the trigger "<fn" and is plain text).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "json/json.h"

namespace xgr::grammar {

struct StructuralTag {
  std::string begin;        // full begin marker, e.g. "<function=get_weather>"
  std::string schema_text;  // JSON schema for the body; "" = unconstrained JSON
  std::string end;          // end marker, e.g. "</function>"
};

struct StructuralTagOptions {
  JsonSchemaOptions schema_options;
  // When false, the output must consist of tag invocations only (no prose
  // before, between or after) — the free rules still appear but match "".
  bool allow_free_text = true;
  // Maximum number of tag invocations; -1 = unbounded.
  std::int32_t max_invocations = -1;
  // Require at least one invocation (an output of pure prose is rejected).
  bool require_invocation = false;
};

// Builds the combined grammar. Requirements, checked with xgr::CheckError:
// tags and triggers are non-empty; every trigger is non-empty printable
// ASCII; every tag's begin marker extends at least one trigger (when several
// triggers prefix the same begin marker — nested trigger sets like "<tool"
// and "<tool_call" — the begin dispatches under its longest matching
// trigger); schemas parse.
Grammar BuildStructuralTagGrammar(const std::vector<StructuralTag>& tags,
                                  const std::vector<std::string>& triggers,
                                  const StructuralTagOptions& options = {});

// The trigger-avoiding free-text grammar alone (root matches any text with
// no occurrence of any trigger). Exposed for tests and reuse.
Grammar BuildTriggerFreeTextGrammar(const std::vector<std::string>& triggers);

// Index of the longest trigger that is a prefix of `begin`, or -1 when no
// trigger prefixes it (ties on equal length — duplicate triggers — resolve to
// the first). This is the dispatch trigger structural-tag validation and the
// tag-dispatch composite layer (src/compose) agree on.
std::int32_t LongestTriggerPrefix(const std::string& begin,
                                  const std::vector<std::string>& triggers);

// --- Per-tag segment grammars (tag-dispatch composition, src/compose) -------
//
// The monolithic grammar above compiles every tag into one artifact, so
// compile time and artifact size scale with the full toolset. The composite
// decoder instead compiles each tag separately — `begin body end` as its own
// root — and stitches segments together at runtime. The segment grammar is a
// pure function of the tag (trigger set not included), which is what makes
// the artifacts content-addressed and shared across configs and sessions.

// Grammar for one tag: root ::= begin body end, where body comes from the
// tag's JSON schema (builtin JSON when the schema text is empty).
Grammar BuildTagSegmentGrammar(const StructuralTag& tag);

// Canonical source encoding of a tag for runtime::CompileJob{kTagSegment}:
// deterministic, byte-exact, stable across processes (it names disk-tier
// artifacts). Decode rejects malformed encodings with xgr::CheckError.
std::string EncodeTagSegmentSource(const StructuralTag& tag);
StructuralTag DecodeTagSegmentSource(const std::string& source);

// --- Trigger Aho-Corasick automaton (exported for src/compose) --------------
//
// `next[s][i]` is the goto-with-failure transition over `alphabet[i]`;
// `dead[s]` marks states whose prefix string ends with a complete trigger —
// trigger-avoiding free text must never enter them. The dispatch layer also
// needs the trie structure itself: failure links and per-state depth recover
// every "a begin marker may have started here" alignment when a trigger
// completes (see compose/tag_dispatch.h).
struct TriggerAutomaton {
  // Dense transitions over the ASCII alphabet actually used by triggers;
  // bytes outside `alphabet` always lead back to state 0.
  std::vector<char> alphabet;
  std::vector<std::vector<std::int32_t>> next;  // [state][alphabet index]
  std::vector<bool> dead;
  std::vector<std::int32_t> fail;   // longest proper suffix that is a prefix
  std::vector<std::int32_t> depth;  // length of the state's prefix string
  // Trigger indices whose full string equals this state's prefix string
  // (several only when duplicate triggers are passed).
  std::vector<std::vector<std::int32_t>> terminal_triggers;
  std::int32_t num_states = 0;

  // Goto-with-failure over a raw byte (out-of-alphabet bytes reset to 0).
  std::int32_t Step(std::int32_t state, std::uint8_t byte) const {
    auto it = std::lower_bound(alphabet.begin(), alphabet.end(),
                               static_cast<char>(byte));
    if (byte >= 0x80 || it == alphabet.end() ||
        *it != static_cast<char>(byte)) {
      return 0;
    }
    return next[static_cast<std::size_t>(state)]
               [static_cast<std::size_t>(it - alphabet.begin())];
  }
};

TriggerAutomaton BuildTriggerAutomaton(const std::vector<std::string>& triggers);

}  // namespace xgr::grammar
