#include "grammar/json_schema.h"

#include <algorithm>

#include "grammar/regex_to_grammar.h"
#include "support/logging.h"
#include "support/string_utils.h"

namespace xgr::grammar {

namespace {

class SchemaConverter {
 public:
  SchemaConverter(const json::Value& root_schema, const JsonSchemaOptions& options)
      : root_schema_(root_schema), options_(options) {}

  Grammar Run() {
    RuleId root = grammar_.DeclareRule("root");
    grammar_.SetRuleBody(root, ConvertSchema(root_schema_, "root"));
    grammar_.SetRootRule(root);
    NormalizeGrammar(&grammar_);
    grammar_.Validate();
    return std::move(grammar_);
  }

 private:
  // --- Shared primitive rules (created lazily, one instance each) ----------

  RuleId StringRule() {
    if (string_rule_ != kInvalidRule) return string_rule_;
    string_rule_ = grammar_.DeclareRule("json_string");
    RuleId char_rule = grammar_.DeclareRule("json_char");
    // char: any codepoint except '"', '\' and C0 controls, or an escape.
    ExprId plain = grammar_.AddCharClass(
        {{0, 0x1F}, {'"', '"'}, {'\\', '\\'}}, /*negated=*/true);
    ExprId simple_escape = grammar_.AddSequence(
        {grammar_.AddByteString("\\"),
         grammar_.AddCharClass({{'"', '"'}, {'\\', '\\'}, {'/', '/'}, {'b', 'b'},
                                {'f', 'f'}, {'n', 'n'}, {'r', 'r'}, {'t', 't'}})});
    ExprId hex = grammar_.AddCharClass({{'0', '9'}, {'a', 'f'}, {'A', 'F'}});
    ExprId unicode_escape = grammar_.AddSequence(
        {grammar_.AddByteString("\\u"), hex, grammar_.CopyExpr(hex),
         grammar_.CopyExpr(hex), grammar_.CopyExpr(hex)});
    grammar_.SetRuleBody(char_rule, grammar_.AddChoice({plain, simple_escape, unicode_escape}));
    grammar_.SetRuleBody(
        string_rule_,
        grammar_.AddSequence({grammar_.AddByteString("\""),
                              grammar_.AddStar(grammar_.AddRuleRef(char_rule)),
                              grammar_.AddByteString("\"")}));
    return string_rule_;
  }

  RuleId NumberRule() {
    if (number_rule_ != kInvalidRule) return number_rule_;
    number_rule_ = grammar_.DeclareRule("json_number");
    grammar_.SetRuleBody(
        number_rule_,
        grammar_.AddSequence(
            {IntegerBody(),
             grammar_.AddOptional(grammar_.AddSequence(
                 {grammar_.AddByteString("."),
                  grammar_.AddPlus(grammar_.AddCharClass({{'0', '9'}}))})),
             grammar_.AddOptional(grammar_.AddSequence(
                 {grammar_.AddCharClass({{'e', 'e'}, {'E', 'E'}}),
                  grammar_.AddOptional(grammar_.AddCharClass({{'-', '-'}, {'+', '+'}})),
                  grammar_.AddPlus(grammar_.AddCharClass({{'0', '9'}}))}))}));
    return number_rule_;
  }

  RuleId IntegerRule() {
    if (integer_rule_ != kInvalidRule) return integer_rule_;
    integer_rule_ = grammar_.DeclareRule("json_integer");
    grammar_.SetRuleBody(integer_rule_, IntegerBody());
    return integer_rule_;
  }

  ExprId IntegerBody() {
    return grammar_.AddSequence(
        {grammar_.AddOptional(grammar_.AddByteString("-")),
         grammar_.AddChoice(
             {grammar_.AddByteString("0"),
              grammar_.AddSequence(
                  {grammar_.AddCharClass({{'1', '9'}}),
                   grammar_.AddStar(grammar_.AddCharClass({{'0', '9'}}))})})});
  }

  // Generic JSON value (compact form) for untyped schema positions.
  RuleId AnyValueRule() {
    if (any_value_rule_ != kInvalidRule) return any_value_rule_;
    any_value_rule_ = grammar_.DeclareRule("json_value");
    RuleId object_rule = grammar_.DeclareRule("json_object");
    RuleId array_rule = grammar_.DeclareRule("json_array");
    RuleId member_rule = grammar_.DeclareRule("json_member");

    grammar_.SetRuleBody(
        any_value_rule_,
        grammar_.AddChoice({grammar_.AddRuleRef(object_rule),
                            grammar_.AddRuleRef(array_rule),
                            grammar_.AddRuleRef(StringRule()),
                            grammar_.AddRuleRef(NumberRule()),
                            grammar_.AddByteString("true"),
                            grammar_.AddByteString("false"),
                            grammar_.AddByteString("null")}));
    grammar_.SetRuleBody(
        member_rule,
        grammar_.AddSequence({grammar_.AddRuleRef(StringRule()),
                              grammar_.AddByteString(":"),
                              grammar_.AddRuleRef(any_value_rule_)}));
    grammar_.SetRuleBody(
        object_rule,
        grammar_.AddChoice(
            {grammar_.AddByteString("{}"),
             grammar_.AddSequence(
                 {grammar_.AddByteString("{"), grammar_.AddRuleRef(member_rule),
                  grammar_.AddStar(grammar_.AddSequence(
                      {grammar_.AddByteString(","), grammar_.AddRuleRef(member_rule)})),
                  grammar_.AddByteString("}")})}));
    grammar_.SetRuleBody(
        array_rule,
        grammar_.AddChoice(
            {grammar_.AddByteString("[]"),
             grammar_.AddSequence(
                 {grammar_.AddByteString("["), grammar_.AddRuleRef(any_value_rule_),
                  grammar_.AddStar(grammar_.AddSequence(
                      {grammar_.AddByteString(","),
                       grammar_.AddRuleRef(any_value_rule_)})),
                  grammar_.AddByteString("]")})}));
    return any_value_rule_;
  }

  // --- Schema dispatch ------------------------------------------------------

  ExprId ConvertSchema(const json::Value& schema, const std::string& hint) {
    // Boolean schemas: true = anything, false = unsatisfiable (rejected).
    if (schema.IsBool()) {
      XGR_CHECK(schema.AsBool()) << "schema 'false' matches nothing";
      return grammar_.AddRuleRef(AnyValueRule());
    }
    XGR_CHECK(schema.IsObject()) << "schema must be an object or boolean";

    if (const json::Value* ref = schema.Find("$ref")) {
      return ConvertRef(ref->AsString());
    }
    if (const json::Value* enumeration = schema.Find("enum")) {
      return ConvertEnum(*enumeration);
    }
    if (const json::Value* constant = schema.Find("const")) {
      return grammar_.AddByteString(constant->Dump());
    }
    if (const json::Value* any_of = schema.Find("anyOf")) {
      return ConvertUnion(*any_of, hint);
    }
    if (const json::Value* one_of = schema.Find("oneOf")) {
      return ConvertUnion(*one_of, hint);
    }
    if (const json::Value* all_of = schema.Find("allOf")) {
      const json::Array& alternatives = all_of->AsArray();
      XGR_CHECK(!alternatives.empty()) << "empty allOf";
      if (alternatives.size() == 1) return ConvertSchema(alternatives[0], hint);
      return ConvertSchema(MergeAllOf(alternatives), hint);
    }

    const json::Value* type = schema.Find("type");
    if (type == nullptr) return grammar_.AddRuleRef(AnyValueRule());

    if (type->IsArray()) {
      std::vector<ExprId> alternatives;
      for (const json::Value& t : type->AsArray()) {
        alternatives.push_back(ConvertTyped(t.AsString(), schema, hint));
      }
      return grammar_.AddChoice(std::move(alternatives));
    }
    return ConvertTyped(type->AsString(), schema, hint);
  }

  ExprId ConvertTyped(const std::string& type, const json::Value& schema,
                      const std::string& hint) {
    if (type == "object") return ConvertObject(schema, hint);
    if (type == "array") return ConvertArray(schema, hint);
    if (type == "string") return ConvertString(schema);
    if (type == "integer") return grammar_.AddRuleRef(IntegerRule());
    if (type == "number") return grammar_.AddRuleRef(NumberRule());
    if (type == "boolean") {
      return grammar_.AddChoice({grammar_.AddByteString("true"),
                                 grammar_.AddByteString("false")});
    }
    if (type == "null") return grammar_.AddByteString("null");
    XGR_CHECK(false) << "unsupported schema type '" << type << "'";
    XGR_UNREACHABLE();
  }

  // Multi-subschema allOf: supported for the common "composed object" form —
  // every subschema (after $ref resolution) is an object schema using only
  // type/properties/required/additionalProperties. The intersection is then
  // the merged object: union of properties (conflicting redefinitions of one
  // key are rejected), union of required, AND of additionalProperties.
  // General CFG intersection is not context-free, so anything else throws.
  json::Value MergeAllOf(const json::Array& subschemas) {
    json::Object merged_props;
    json::Array merged_required;
    bool additional = true;
    for (const json::Value& entry : subschemas) {
      const json::Value& sub =
          entry.Find("$ref") != nullptr ? ResolveRef(entry.Find("$ref")->AsString())
                                        : entry;
      XGR_CHECK(sub.IsObject()) << "allOf subschema must be an object";
      const json::Value* type = sub.Find("type");
      XGR_CHECK(type != nullptr && type->IsString() && type->AsString() == "object")
          << "allOf is supported only for compositions of object schemas";
      for (const auto& [key, unused] : sub.AsObject()) {
        XGR_CHECK(key == "type" || key == "properties" || key == "required" ||
                  key == "additionalProperties" || key == "description" ||
                  key == "title")
            << "allOf subschema keyword '" << key
            << "' is outside the supported subset";
      }
      if (const json::Value* props = sub.Find("properties")) {
        for (const auto& [key, prop_schema] : props->AsObject()) {
          auto [it, inserted] = merged_props.emplace(key, prop_schema);
          XGR_CHECK(inserted || it->second.Dump() == prop_schema.Dump())
              << "allOf redefines property '" << key << "' differently";
        }
      }
      if (const json::Value* required = sub.Find("required")) {
        for (const json::Value& r : required->AsArray()) {
          bool seen = false;
          for (const json::Value& existing : merged_required) {
            seen = seen || existing.AsString() == r.AsString();
          }
          if (!seen) merged_required.push_back(r);
        }
      }
      if (const json::Value* ap = sub.Find("additionalProperties")) {
        additional = additional && (!ap->IsBool() || ap->AsBool());
      }
    }
    return json::Value(json::Object{
        {"type", json::Value("object")},
        {"properties", json::Value(std::move(merged_props))},
        {"required", json::Value(std::move(merged_required))},
        {"additionalProperties", json::Value(additional)},
    });
  }

  ExprId ConvertRef(const std::string& ref) {
    auto it = ref_rules_.find(ref);
    if (it != ref_rules_.end()) return grammar_.AddRuleRef(it->second);
    // Declare first so recursive references terminate.
    RuleId rule = grammar_.DeclareRule("ref_" + std::to_string(ref_rules_.size()));
    ref_rules_.emplace(ref, rule);
    grammar_.SetRuleBody(rule, ConvertSchema(ResolveRef(ref), ref));
    return grammar_.AddRuleRef(rule);
  }

  const json::Value& ResolveRef(const std::string& ref) {
    XGR_CHECK(StartsWith(ref, "#/")) << "only local $ref supported: " << ref;
    const json::Value* node = &root_schema_;
    for (const std::string& part : SplitString(ref.substr(2), '/')) {
      const json::Value* next = node->Find(part);
      XGR_CHECK(next != nullptr) << "$ref path not found: " << ref;
      node = next;
    }
    return *node;
  }

  ExprId ConvertEnum(const json::Value& enumeration) {
    std::vector<ExprId> alternatives;
    for (const json::Value& v : enumeration.AsArray()) {
      alternatives.push_back(grammar_.AddByteString(v.Dump()));
    }
    XGR_CHECK(!alternatives.empty()) << "empty enum";
    return grammar_.AddChoice(std::move(alternatives));
  }

  ExprId ConvertUnion(const json::Value& list, const std::string& hint) {
    std::vector<ExprId> alternatives;
    for (const json::Value& sub : list.AsArray()) {
      alternatives.push_back(ConvertSchema(sub, hint));
    }
    XGR_CHECK(!alternatives.empty()) << "empty anyOf/oneOf";
    return grammar_.AddChoice(std::move(alternatives));
  }

  // Enforceable "format" values, compiled through the regex engine (unknown
  // formats are annotations per the JSON-Schema spec and fall through to the
  // plain string rule). The patterns are the practical subsets the reference
  // implementation enforces, not full RFC grammars.
  static const char* FormatPattern(const std::string& format) {
    if (format == "date") {
      return "[0-9]{4}-(0[1-9]|1[0-2])-(0[1-9]|[12][0-9]|3[01])";
    }
    if (format == "time") {
      return "([01][0-9]|2[0-3]):[0-5][0-9]:[0-5][0-9]([.][0-9]+)?"
             "(Z|[+-]([01][0-9]|2[0-3]):[0-5][0-9])";
    }
    if (format == "date-time") {
      return "[0-9]{4}-(0[1-9]|1[0-2])-(0[1-9]|[12][0-9]|3[01])T"
             "([01][0-9]|2[0-3]):[0-5][0-9]:[0-5][0-9]([.][0-9]+)?"
             "(Z|[+-]([01][0-9]|2[0-3]):[0-5][0-9])";
    }
    if (format == "uuid") {
      return "[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-"
             "[0-9a-fA-F]{4}-[0-9a-fA-F]{12}";
    }
    if (format == "email") {
      return "[A-Za-z0-9._%+\\-]+@[A-Za-z0-9.\\-]+[.][A-Za-z]{2,}";
    }
    if (format == "ipv4") {
      return "((25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])[.]){3}"
             "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])";
    }
    if (format == "hostname") {
      return "[A-Za-z0-9]([A-Za-z0-9\\-]{0,61}[A-Za-z0-9])?"
             "([.][A-Za-z0-9]([A-Za-z0-9\\-]{0,61}[A-Za-z0-9])?)*";
    }
    return nullptr;
  }

  ExprId ConvertString(const json::Value& schema) {
    if (const json::Value* pattern = schema.Find("pattern")) {
      regex::RegexParseResult parsed = regex::ParseRegex(pattern->AsString());
      XGR_CHECK(parsed.ok()) << "bad string pattern: " << parsed.error;
      return grammar_.AddSequence({grammar_.AddByteString("\""),
                                   AddRegexExpr(&grammar_, *parsed.root),
                                   grammar_.AddByteString("\"")});
    }
    if (const json::Value* format = schema.Find("format")) {
      if (const char* fmt_pattern = FormatPattern(format->AsString())) {
        regex::RegexParseResult parsed = regex::ParseRegex(fmt_pattern);
        XGR_CHECK(parsed.ok()) << "bad format pattern: " << parsed.error;
        return grammar_.AddSequence({grammar_.AddByteString("\""),
                                     AddRegexExpr(&grammar_, *parsed.root),
                                     grammar_.AddByteString("\"")});
      }
    }
    const json::Value* min_length = schema.Find("minLength");
    const json::Value* max_length = schema.Find("maxLength");
    if (min_length != nullptr || max_length != nullptr) {
      std::int32_t lo = min_length != nullptr
                            ? static_cast<std::int32_t>(min_length->AsInteger())
                            : 0;
      std::int32_t hi = max_length != nullptr
                            ? static_cast<std::int32_t>(max_length->AsInteger())
                            : -1;
      lo = std::min(lo, options_.max_unroll);
      if (hi != -1) hi = std::min(hi, options_.max_unroll);
      // Reuse json_char via the shared string rule's character rule.
      StringRule();
      RuleId char_rule = grammar_.FindRule("json_char");
      return grammar_.AddSequence(
          {grammar_.AddByteString("\""),
           grammar_.AddRepeat(grammar_.AddRuleRef(char_rule), lo, hi),
           grammar_.AddByteString("\"")});
    }
    return grammar_.AddRuleRef(StringRule());
  }

  // --- Objects --------------------------------------------------------------
  //
  // Optional properties use the part/tail scheme: PartRule(i) emits the first
  // member (no comma), TailRule(i) emits subsequent members (leading comma).
  // Each becomes its own small rule — deliberately fragment-heavy so rule
  // inlining (§3.4) has real work to do on schema grammars.
  ExprId ConvertObject(const json::Value& schema, const std::string& hint) {
    struct Property {
      std::string key;
      ExprId value;
      bool required;
    };
    std::vector<Property> properties;
    const json::Value* props = schema.Find("properties");
    const json::Value* required = schema.Find("required");
    auto is_required = [&](const std::string& key) {
      if (required == nullptr) return false;
      for (const json::Value& r : required->AsArray()) {
        if (r.IsString() && r.AsString() == key) return true;
      }
      return false;
    };
    if (props != nullptr) {
      for (const auto& [key, sub_schema] : props->AsObject()) {
        properties.push_back(Property{key, ConvertSchema(sub_schema, hint + "_" + key),
                                      is_required(key)});
      }
    }

    // additionalProperties: value schema for extra members, or disallowed.
    const json::Value* additional = schema.Find("additionalProperties");
    bool allow_additional = options_.default_additional_properties;
    ExprId additional_value = kInvalidExpr;
    if (additional != nullptr) {
      if (additional->IsBool()) {
        allow_additional = additional->AsBool();
        if (allow_additional) additional_value = grammar_.AddRuleRef(AnyValueRule());
      } else {
        allow_additional = true;
        additional_value = ConvertSchema(*additional, hint + "_additional");
      }
    } else if (allow_additional) {
      additional_value = grammar_.AddRuleRef(AnyValueRule());
    }

    if (properties.empty() && !allow_additional) {
      return grammar_.AddByteString("{}");
    }

    auto member_literal = [&](const Property& p, bool leading_comma) {
      std::string lit = leading_comma ? "," : "";
      lit += json::Value(p.key).Dump();
      lit += ":";
      return lit;
    };
    auto additional_member = [&](bool leading_comma) {
      std::vector<ExprId> seq;
      if (leading_comma) seq.push_back(grammar_.AddByteString(","));
      seq.push_back(grammar_.AddRuleRef(StringRule()));
      seq.push_back(grammar_.AddByteString(":"));
      seq.push_back(grammar_.CopyExpr(additional_value));
      return grammar_.AddSequence(std::move(seq));
    };

    std::size_t n = properties.size();
    std::string prefix = "obj" + std::to_string(object_counter_++) + "_";
    // TailRule(i): members i..n-1 with leading commas, then additionals.
    std::vector<RuleId> tail_rules(n + 1, kInvalidRule);
    tail_rules[n] = grammar_.DeclareRule(prefix + "tail" + std::to_string(n));
    {
      ExprId rest = allow_additional
                        ? grammar_.AddStar(additional_member(/*leading_comma=*/true))
                        : grammar_.AddEmpty();
      grammar_.SetRuleBody(tail_rules[n], rest);
    }
    for (std::size_t i = n; i-- > 0;) {
      tail_rules[i] = grammar_.DeclareRule(prefix + "tail" + std::to_string(i));
      ExprId emit = grammar_.AddSequence(
          {grammar_.AddByteString(member_literal(properties[i], true)),
           grammar_.CopyExpr(properties[i].value),
           grammar_.AddRuleRef(tail_rules[i + 1])});
      if (properties[i].required) {
        grammar_.SetRuleBody(tail_rules[i], emit);
      } else {
        grammar_.SetRuleBody(
            tail_rules[i],
            grammar_.AddChoice({emit, grammar_.AddRuleRef(tail_rules[i + 1])}));
      }
    }
    // PartRule(i): first emitted member is i (no comma) or later.
    std::vector<ExprId> part_exprs(n + 1, kInvalidExpr);
    part_exprs[n] = allow_additional
                        ? grammar_.AddOptional(grammar_.AddSequence(
                              {additional_member(/*leading_comma=*/false),
                               grammar_.AddStar(additional_member(true))}))
                        : grammar_.AddEmpty();
    for (std::size_t i = n; i-- > 0;) {
      ExprId emit = grammar_.AddSequence(
          {grammar_.AddByteString(member_literal(properties[i], false)),
           grammar_.CopyExpr(properties[i].value),
           grammar_.AddRuleRef(tail_rules[i + 1])});
      if (properties[i].required) {
        part_exprs[i] = emit;
      } else {
        part_exprs[i] = grammar_.AddChoice({emit, part_exprs[i + 1]});
      }
    }

    return grammar_.AddSequence({grammar_.AddByteString("{"), part_exprs[0],
                                 grammar_.AddByteString("}")});
  }

  // --- Arrays ----------------------------------------------------------------
  ExprId ConvertArray(const json::Value& schema, const std::string& hint) {
    // Tuple typing (2020-12 prefixItems): every prefix item is required (a
    // simplification of the spec, which lets minItems shorten tuples), and
    // "items" then governs the elements past the tuple — a schema, absent
    // (any value) or false (no extras). maxItems bounds the extras.
    if (const json::Value* prefix_items = schema.Find("prefixItems")) {
      const json::Array& tuple = prefix_items->AsArray();
      XGR_CHECK(!tuple.empty()) << "empty prefixItems";
      std::vector<ExprId> seq{grammar_.AddByteString("[")};
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) seq.push_back(grammar_.AddByteString(","));
        seq.push_back(
            ConvertSchema(tuple[i], hint + "_tuple" + std::to_string(i)));
      }
      const json::Value* items = schema.Find("items");
      bool allow_extras = items == nullptr || !items->IsBool() || items->AsBool();
      if (allow_extras) {
        ExprId extra = items != nullptr && !items->IsBool()
                           ? ConvertSchema(*items, hint + "_item")
                           : grammar_.AddRuleRef(AnyValueRule());
        std::int32_t max_extras = -1;
        if (const json::Value* v = schema.Find("maxItems")) {
          max_extras = std::max<std::int32_t>(
              0, std::min(static_cast<std::int32_t>(v->AsInteger()),
                          options_.max_unroll) -
                     static_cast<std::int32_t>(tuple.size()));
        }
        seq.push_back(grammar_.AddRepeat(
            grammar_.AddSequence({grammar_.AddByteString(","), extra}), 0,
            max_extras));
      }
      seq.push_back(grammar_.AddByteString("]"));
      return grammar_.AddSequence(std::move(seq));
    }

    const json::Value* items = schema.Find("items");
    ExprId item = items != nullptr ? ConvertSchema(*items, hint + "_item")
                                   : grammar_.AddRuleRef(AnyValueRule());
    std::int32_t min_items = 0;
    std::int32_t max_items = -1;
    if (const json::Value* v = schema.Find("minItems")) {
      min_items = std::min(static_cast<std::int32_t>(v->AsInteger()), options_.max_unroll);
    }
    if (const json::Value* v = schema.Find("maxItems")) {
      max_items = std::min(static_cast<std::int32_t>(v->AsInteger()), options_.max_unroll);
    }
    XGR_CHECK(max_items == -1 || max_items >= min_items) << "maxItems < minItems";
    if (max_items == 0) return grammar_.AddByteString("[]");

    ExprId non_empty = grammar_.AddSequence(
        {grammar_.AddByteString("["), grammar_.CopyExpr(item),
         grammar_.AddRepeat(
             grammar_.AddSequence({grammar_.AddByteString(","), grammar_.CopyExpr(item)}),
             std::max(0, min_items - 1), max_items == -1 ? -1 : max_items - 1),
         grammar_.AddByteString("]")});
    if (min_items == 0) {
      return grammar_.AddChoice({grammar_.AddByteString("[]"), non_empty});
    }
    return non_empty;
  }

  const json::Value& root_schema_;
  JsonSchemaOptions options_;
  Grammar grammar_;
  RuleId string_rule_ = kInvalidRule;
  RuleId number_rule_ = kInvalidRule;
  RuleId integer_rule_ = kInvalidRule;
  RuleId any_value_rule_ = kInvalidRule;
  std::unordered_map<std::string, RuleId> ref_rules_;
  int object_counter_ = 0;
};

}  // namespace

Grammar JsonSchemaToGrammar(const json::Value& schema,
                            const JsonSchemaOptions& options) {
  return SchemaConverter(schema, options).Run();
}

Grammar JsonSchemaTextToGrammar(const std::string& schema_text,
                                const JsonSchemaOptions& options) {
  json::ParseResult parsed = json::Parse(schema_text);
  XGR_CHECK(parsed.ok()) << parsed.error;
  return JsonSchemaToGrammar(*parsed.value, options);
}

}  // namespace xgr::grammar
