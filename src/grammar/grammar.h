// Context-free grammar representation (§2.2 of the paper).
//
// A Grammar is a set of named rules; each rule body is an expression tree of
// sequences, choices, repetitions, byte-string literals, character classes
// (over Unicode codepoints; negation resolved at construction time) and
// references to other rules. Expressions live in a flat arena owned by the
// Grammar, referenced by dense ExprId — the same storage strategy as the
// reference implementation, keeping traversal cache-friendly and making
// structural rewrites (flattening, inlining) cheap.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "regex/regex.h"

namespace xgr::grammar {

using ExprId = std::int32_t;
using RuleId = std::int32_t;
inline constexpr ExprId kInvalidExpr = -1;
inline constexpr RuleId kInvalidRule = -1;

enum class ExprType : std::uint8_t {
  kEmpty,       // matches ""
  kByteString,  // a literal byte sequence (UTF-8 text)
  kCharClass,   // one character from normalized codepoint ranges
  kRuleRef,     // reference to another rule
  kSequence,    // children in order
  kChoice,      // any child
  kRepeat,      // child repeated [min, max] times (max = -1: unbounded)
};

struct Expr {
  ExprType type = ExprType::kEmpty;
  std::string bytes;                         // kByteString
  std::vector<regex::CodepointRange> ranges; // kCharClass (normalized)
  RuleId rule_ref = kInvalidRule;            // kRuleRef
  std::vector<ExprId> children;              // kSequence/kChoice/kRepeat
  std::int32_t min_repeat = 0;               // kRepeat
  std::int32_t max_repeat = -1;              // kRepeat (-1 = unbounded)
};

struct Rule {
  std::string name;
  ExprId body = kInvalidExpr;
};

class Grammar {
 public:
  // --- Expression construction ------------------------------------------
  ExprId AddEmpty() { return AddExpr(Expr{}); }
  ExprId AddByteString(std::string bytes);
  // `ranges` are raw; pass negated=true to complement against all scalars.
  ExprId AddCharClass(std::vector<regex::CodepointRange> ranges, bool negated = false);
  ExprId AddRuleRef(RuleId rule);
  ExprId AddSequence(std::vector<ExprId> children);
  ExprId AddChoice(std::vector<ExprId> children);
  ExprId AddRepeat(ExprId child, std::int32_t min_repeat, std::int32_t max_repeat);
  // Kleene star / plus / optional conveniences.
  ExprId AddStar(ExprId child) { return AddRepeat(child, 0, -1); }
  ExprId AddPlus(ExprId child) { return AddRepeat(child, 1, -1); }
  ExprId AddOptional(ExprId child) { return AddRepeat(child, 0, 1); }

  // --- Rule construction --------------------------------------------------
  // Declares a rule by name so recursive references can be created before the
  // body exists. Re-declaring returns the existing id.
  RuleId DeclareRule(const std::string& name);
  RuleId AddRule(const std::string& name, ExprId body);
  void SetRuleBody(RuleId rule, ExprId body);

  RuleId FindRule(const std::string& name) const;  // kInvalidRule if absent
  RuleId RootRule() const { return root_rule_; }
  void SetRootRule(RuleId rule) { root_rule_ = rule; }

  // --- Accessors -----------------------------------------------------------
  std::int32_t NumRules() const { return static_cast<std::int32_t>(rules_.size()); }
  std::int32_t NumExprs() const { return static_cast<std::int32_t>(exprs_.size()); }
  const Rule& GetRule(RuleId rule) const;
  const Expr& GetExpr(ExprId expr) const;
  Expr& MutableExpr(ExprId expr);

  // Number of atoms (leaf expressions) under `expr`, counted with
  // tree-expansion semantics (a shared subexpression is counted once per
  // reference, mirroring what Thompson construction will emit); used by the
  // inliner's and the FSA-minimizer's size caps. Saturates at INT32_MAX.
  std::int32_t ExprSize(ExprId expr) const;

  // Deep-copies an expression tree (within this grammar). Used by inlining.
  // Shared subexpressions are copied once and re-shared in the copy.
  ExprId CopyExpr(ExprId expr);

  // Bytes held by the expression arena (structs + out-of-line payloads).
  // Counts every slot, live or stranded — the number the optimizer's
  // compaction pass exists to shrink; reported per pass in PassStats.
  std::size_t ArenaBytes() const;

  // EBNF-ish rendering, stable across runs; used by tests and debugging.
  std::string ToString() const;

  // Validates internal invariants (all ids in range, bodies set, root set).
  void Validate() const;

 private:
  ExprId AddExpr(Expr expr);

  std::vector<Rule> rules_;
  std::vector<Expr> exprs_;
  std::unordered_map<std::string, RuleId> rule_by_name_;
  RuleId root_rule_ = kInvalidRule;
};

// --- Parsing / printing (ebnf_parser.cc, grammar_printer.cc) ---------------

struct EbnfParseResult {
  Grammar grammar;
  std::string error;
  bool ok = false;
};

// Parses a GBNF-flavoured EBNF text. Syntax summary:
//   rulename ::= alternative1 | alternative2
//   elements: "literal"  [a-z^-]  rulename  ( group )  e*  e+  e?  e{m,n}
//   comments: '#' to end of line.
// The rule named `root_rule` (default "root") becomes the grammar root.
EbnfParseResult ParseEbnf(const std::string& text,
                          const std::string& root_rule = "root");

// Throwing convenience wrapper.
Grammar ParseEbnfOrThrow(const std::string& text,
                         const std::string& root_rule = "root");

// --- Transform passes (grammar_transform.cc) -------------------------------

// Flattens nested sequences/choices, collapses single-child containers and
// drops empty alternates where legal. Produces an equivalent grammar.
void NormalizeGrammar(Grammar* grammar);

// Rule inlining (§3.4): iteratively inlines "fragment" rules — rules whose
// bodies reference no other rule — into their referencing rules, subject to
// size caps. Returns the number of rules inlined away.
struct InlineOptions {
  std::int32_t max_inlinee_atoms = 24;   // size cap on the inlined rule body
  std::int32_t max_result_atoms = 4096;  // cap on the grown referencing body
};
int InlineFragmentRules(Grammar* grammar, const InlineOptions& options = {});

// Drops rules unreachable from the root and renumbers. Returns #removed.
int RemoveUnreachableRules(Grammar* grammar);

// Imports every rule of `src` into `dst`, renaming each rule to
// `prefix + original_name` (rule references are remapped). Returns the id in
// `dst` of `src`'s root rule; `dst`'s own root is left unchanged. Throws
// xgr::CheckError when a renamed rule collides with an existing one — pick
// distinct prefixes when composing several grammars.
RuleId ImportRules(Grammar* dst, const Grammar& src, const std::string& prefix);

// --- Builtin grammars (builtin_grammars.cc) ---------------------------------

// Unconstrained JSON per ECMA-404 (the paper's "CFG (Unconstrained JSON)").
const std::string& JsonGrammarEbnf();
// XML 1.0 subset: nested elements, attributes, text, comments, entity refs.
const std::string& XmlGrammarEbnf();
// Python DSL: if/for/while control flow + str/int/float/bool expressions,
// indentation ignored (paper §4.1).
const std::string& PythonDslGrammarEbnf();
// SQL subset (the paper's introduction motivates SQL as a target structure):
// SELECT/INSERT/UPDATE/DELETE with joins, predicates and expressions, in
// canonical single-space form.
const std::string& SqlGrammarEbnf();

Grammar BuiltinJsonGrammar();
Grammar BuiltinXmlGrammar();
Grammar BuiltinPythonDslGrammar();
Grammar BuiltinSqlGrammar();

}  // namespace xgr::grammar
