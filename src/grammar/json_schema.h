// JSON-Schema → context-free-grammar converter.
//
// Supports the schema subset exercised by function-calling workloads (the
// paper's "JSON Schema" task, mirroring the json-mode-eval dataset):
//   type: object / array / string / integer / number / boolean / null,
//   properties + required + additionalProperties, items + minItems/maxItems,
//   prefixItems (tuples; every prefix item required) with items as the
//   rest-schema or false, enum / const, anyOf / oneOf, allOf (single
//   subschema, or a composition of object schemas merged by property union),
//   $ref into #/$defs and #/definitions (recursive schemas supported),
//   string pattern (via the regex engine), format (date / time / date-time /
//   uuid / email / ipv4 / hostname; unknown formats are annotations) and
//   minLength/maxLength.
// Unsupported numeric range keywords (minimum/maximum) are ignored — numeric
// ranges are not context-free-expressible at the token level; this matches
// the reference implementation's behaviour.
//
// The generated grammar is *strict*: separators are exactly "," and ":" with
// no optional whitespace, matching json::Value::Dump(-1) output, so the
// synthetic LLM's canonical completions are always grammar-conformant.
#pragma once

#include <string>

#include "grammar/grammar.h"
#include "json/json.h"

namespace xgr::grammar {

struct JsonSchemaOptions {
  // When a schema object has no "additionalProperties" keyword, allow extra
  // members iff this flag is set.
  bool default_additional_properties = false;
  // Cap on unrolled bounded repetitions (minItems/maxItems, minLength/...);
  // larger bounds are clamped to keep automata small.
  std::int32_t max_unroll = 64;
};

// Converts a parsed schema document. Throws xgr::CheckError on schemas
// outside the supported subset.
Grammar JsonSchemaToGrammar(const json::Value& schema,
                            const JsonSchemaOptions& options = {});

// Parses `schema_text` then converts. (Distinct name: a const char* argument
// would otherwise be ambiguous between json::Value and std::string.)
Grammar JsonSchemaTextToGrammar(const std::string& schema_text,
                                const JsonSchemaOptions& options = {});

}  // namespace xgr::grammar
