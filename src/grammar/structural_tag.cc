#include "grammar/structural_tag.h"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "support/logging.h"

namespace xgr::grammar {

TriggerAutomaton BuildTriggerAutomaton(const std::vector<std::string>& triggers) {
  XGR_CHECK(!triggers.empty()) << "structural tags need at least one trigger";
  // Collect the alphabet.
  bool used[128] = {};
  for (const std::string& trigger : triggers) {
    XGR_CHECK(!trigger.empty()) << "empty trigger";
    for (char c : trigger) {
      XGR_CHECK(static_cast<unsigned char>(c) >= 0x20 &&
                static_cast<unsigned char>(c) < 0x7F)
          << "triggers must be printable ASCII";
      used[static_cast<unsigned char>(c)] = true;
    }
  }
  TriggerAutomaton ac;
  for (int c = 0; c < 128; ++c) {
    if (used[c]) ac.alphabet.push_back(static_cast<char>(c));
  }
  auto alpha_index = [&](char c) {
    auto it = std::lower_bound(ac.alphabet.begin(), ac.alphabet.end(), c);
    return static_cast<std::size_t>(it - ac.alphabet.begin());
  };

  // Trie construction.
  const std::size_t k = ac.alphabet.size();
  std::vector<std::vector<std::int32_t>> trie(1, std::vector<std::int32_t>(k, -1));
  ac.terminal_triggers.assign(1, {});
  ac.depth.assign(1, 0);
  for (std::size_t t = 0; t < triggers.size(); ++t) {
    std::int32_t state = 0;
    for (char c : triggers[t]) {
      std::size_t idx = alpha_index(c);
      if (trie[static_cast<std::size_t>(state)][idx] < 0) {
        trie[static_cast<std::size_t>(state)][idx] =
            static_cast<std::int32_t>(trie.size());
        trie.emplace_back(k, -1);
        ac.terminal_triggers.emplace_back();
        ac.depth.push_back(ac.depth[static_cast<std::size_t>(state)] + 1);
      }
      state = trie[static_cast<std::size_t>(state)][idx];
    }
    ac.terminal_triggers[static_cast<std::size_t>(state)].push_back(
        static_cast<std::int32_t>(t));
  }

  // Failure links (BFS) + goto-with-failure; a state is dead when its own
  // node is terminal or its failure chain passes through a terminal (some
  // suffix of the prefix read so far is a complete trigger).
  ac.num_states = static_cast<std::int32_t>(trie.size());
  ac.next.assign(trie.size(), std::vector<std::int32_t>(k, 0));
  ac.dead.resize(trie.size());
  for (std::size_t s = 0; s < trie.size(); ++s) {
    ac.dead[s] = !ac.terminal_triggers[s].empty();
  }
  ac.fail.assign(trie.size(), 0);
  std::queue<std::int32_t> bfs;
  for (std::size_t idx = 0; idx < k; ++idx) {
    std::int32_t child = trie[0][idx];
    if (child < 0) {
      ac.next[0][idx] = 0;
    } else {
      ac.next[0][idx] = child;
      ac.fail[static_cast<std::size_t>(child)] = 0;
      bfs.push(child);
    }
  }
  while (!bfs.empty()) {
    std::int32_t state = bfs.front();
    bfs.pop();
    std::int32_t f = ac.fail[static_cast<std::size_t>(state)];
    if (ac.dead[static_cast<std::size_t>(f)]) ac.dead[static_cast<std::size_t>(state)] = true;
    for (std::size_t idx = 0; idx < k; ++idx) {
      std::int32_t child = trie[static_cast<std::size_t>(state)][idx];
      if (child < 0) {
        ac.next[static_cast<std::size_t>(state)][idx] = ac.next[static_cast<std::size_t>(f)][idx];
      } else {
        ac.next[static_cast<std::size_t>(state)][idx] = child;
        ac.fail[static_cast<std::size_t>(child)] = ac.next[static_cast<std::size_t>(f)][idx];
        bfs.push(child);
      }
    }
  }
  return ac;
}

std::int32_t LongestTriggerPrefix(const std::string& begin,
                                  const std::vector<std::string>& triggers) {
  std::int32_t best = -1;
  std::size_t best_len = 0;
  for (std::size_t t = 0; t < triggers.size(); ++t) {
    const std::string& trigger = triggers[t];
    if (begin.size() >= trigger.size() &&
        begin.compare(0, trigger.size(), trigger) == 0 &&
        (best < 0 || trigger.size() > best_len)) {
      best = static_cast<std::int32_t>(t);
      best_len = trigger.size();
    }
  }
  return best;
}

namespace {

// Adds the free-text rules (one per live automaton state) to `grammar` with
// names `<prefix>0`, `<prefix>1`, ...; returns the rule for state 0.
RuleId AddFreeTextRules(Grammar* grammar, const TriggerAutomaton& ac,
                        const std::string& prefix) {
  std::vector<RuleId> state_rule(static_cast<std::size_t>(ac.num_states),
                                 kInvalidRule);
  for (std::int32_t s = 0; s < ac.num_states; ++s) {
    if (ac.dead[static_cast<std::size_t>(s)]) continue;
    state_rule[static_cast<std::size_t>(s)] =
        grammar->DeclareRule(prefix + std::to_string(s));
  }
  for (std::int32_t s = 0; s < ac.num_states; ++s) {
    if (ac.dead[static_cast<std::size_t>(s)]) continue;
    // The free segment may end here.
    std::vector<ExprId> alternatives{grammar->AddEmpty()};
    // Alphabet chars, grouped by target state into one class per target.
    std::map<std::int32_t, std::vector<regex::CodepointRange>> by_target;
    for (std::size_t idx = 0; idx < ac.alphabet.size(); ++idx) {
      std::int32_t t = ac.next[static_cast<std::size_t>(s)][idx];
      if (ac.dead[static_cast<std::size_t>(t)]) continue;  // would complete a trigger
      std::uint32_t c = static_cast<std::uint32_t>(ac.alphabet[idx]);
      by_target[t].push_back({c, c});
    }
    for (auto& [target, ranges] : by_target) {
      alternatives.push_back(grammar->AddSequence(
          {grammar->AddCharClass(std::move(ranges), /*negated=*/false),
           grammar->AddRuleRef(state_rule[static_cast<std::size_t>(target)])}));
    }
    // Every char outside the trigger alphabet resets to state 0.
    std::vector<regex::CodepointRange> alphabet_ranges;
    for (char c : ac.alphabet) {
      std::uint32_t u = static_cast<std::uint32_t>(c);
      alphabet_ranges.push_back({u, u});
    }
    alternatives.push_back(grammar->AddSequence(
        {grammar->AddCharClass(std::move(alphabet_ranges), /*negated=*/true),
         grammar->AddRuleRef(state_rule[0])}));
    grammar->SetRuleBody(state_rule[static_cast<std::size_t>(s)],
                         grammar->AddChoice(std::move(alternatives)));
  }
  return state_rule[0];
}

}  // namespace

Grammar BuildTriggerFreeTextGrammar(const std::vector<std::string>& triggers) {
  Grammar grammar;
  TriggerAutomaton ac = BuildTriggerAutomaton(triggers);
  RuleId free0 = AddFreeTextRules(&grammar, ac, "free_");
  ExprId body = grammar.AddRuleRef(free0);
  grammar.SetRootRule(grammar.AddRule("root", body));
  grammar.Validate();
  return grammar;
}

Grammar BuildStructuralTagGrammar(const std::vector<StructuralTag>& tags,
                                  const std::vector<std::string>& triggers,
                                  const StructuralTagOptions& options) {
  XGR_CHECK(!tags.empty()) << "no structural tags given";
  TriggerAutomaton ac = BuildTriggerAutomaton(triggers);

  // Every begin marker must extend at least one trigger (the dispatch
  // point). Nested trigger sets — one trigger a prefix of another, e.g.
  // "<tool" + "<tool_call" — are legal: several triggers then prefix the same
  // begin marker and the tag dispatches under the longest match, so only the
  // longest matching trigger is counted here. (An earlier version required
  // *exactly* one prefixing trigger, which rejected these configs outright.)
  for (const StructuralTag& tag : tags) {
    XGR_CHECK(!tag.begin.empty()) << "empty begin marker";
    XGR_CHECK(!tag.end.empty()) << "empty end marker";
    XGR_CHECK(LongestTriggerPrefix(tag.begin, triggers) >= 0)
        << "begin marker '" << tag.begin
        << "' must extend a trigger (none of the " << triggers.size()
        << " triggers prefixes it)";
  }

  Grammar grammar;
  RuleId root = grammar.DeclareRule("root");
  grammar.SetRootRule(root);

  // Tag bodies: one imported schema grammar per tag; unconstrained-JSON tags
  // share a single import.
  RuleId shared_json = kInvalidRule;
  std::vector<ExprId> tag_alternatives;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const StructuralTag& tag = tags[i];
    RuleId body_rule;
    if (tag.schema_text.empty()) {
      if (shared_json == kInvalidRule) {
        shared_json = ImportRules(&grammar, BuiltinJsonGrammar(), "json_body_");
      }
      body_rule = shared_json;
    } else {
      Grammar schema_grammar =
          JsonSchemaTextToGrammar(tag.schema_text, options.schema_options);
      body_rule = ImportRules(&grammar, schema_grammar,
                              "tag" + std::to_string(i) + "_");
    }
    tag_alternatives.push_back(grammar.AddSequence(
        {grammar.AddByteString(tag.begin), grammar.AddRuleRef(body_rule),
         grammar.AddByteString(tag.end)}));
  }
  RuleId tag_rule =
      grammar.AddRule("tag", grammar.AddChoice(std::move(tag_alternatives)));

  // Free text between invocations.
  ExprId free_expr;
  if (options.allow_free_text) {
    RuleId free0 = AddFreeTextRules(&grammar, ac, "free_");
    free_expr = grammar.AddRuleRef(free0);
  } else {
    free_expr = grammar.AddEmpty();
  }

  // root ::= free ( tag free ){min,max}
  std::int32_t min_invocations = options.require_invocation ? 1 : 0;
  ExprId invocation =
      grammar.AddSequence({grammar.AddRuleRef(tag_rule), free_expr});
  ExprId invocations =
      grammar.AddRepeat(invocation, min_invocations, options.max_invocations);
  grammar.SetRuleBody(root, grammar.AddSequence({free_expr, invocations}));
  grammar.Validate();
  return grammar;
}

Grammar BuildTagSegmentGrammar(const StructuralTag& tag) {
  XGR_CHECK(!tag.begin.empty()) << "empty begin marker";
  XGR_CHECK(!tag.end.empty()) << "empty end marker";
  Grammar grammar;
  RuleId root = grammar.DeclareRule("root");
  grammar.SetRootRule(root);
  RuleId body_rule;
  if (tag.schema_text.empty()) {
    body_rule = ImportRules(&grammar, BuiltinJsonGrammar(), "body_");
  } else {
    body_rule = ImportRules(&grammar, JsonSchemaTextToGrammar(tag.schema_text),
                            "body_");
  }
  grammar.SetRuleBody(
      root, grammar.AddSequence({grammar.AddByteString(tag.begin),
                                 grammar.AddRuleRef(body_rule),
                                 grammar.AddByteString(tag.end)}));
  grammar.Validate();
  return grammar;
}

// Length-prefixed fields keep the encoding unambiguous for arbitrary marker
// and schema bytes (markers may contain ':' or newlines; schemas certainly
// do). Field order is fixed; any format change must bump the registry's
// artifact space via the key prefix in cache/grammar_compiler.cc.
std::string EncodeTagSegmentSource(const StructuralTag& tag) {
  std::string out;
  auto field = [&out](const std::string& value) {
    out += std::to_string(value.size());
    out += ':';
    out += value;
  };
  field(tag.begin);
  field(tag.schema_text);
  field(tag.end);
  return out;
}

StructuralTag DecodeTagSegmentSource(const std::string& source) {
  StructuralTag tag;
  std::size_t pos = 0;
  auto field = [&](std::string* value) {
    std::size_t colon = source.find(':', pos);
    XGR_CHECK(colon != std::string::npos && colon > pos)
        << "malformed tag-segment source";
    std::size_t len = 0;
    for (std::size_t i = pos; i < colon; ++i) {
      char c = source[i];
      XGR_CHECK(c >= '0' && c <= '9') << "malformed tag-segment source";
      len = len * 10 + static_cast<std::size_t>(c - '0');
    }
    pos = colon + 1;
    XGR_CHECK(pos + len <= source.size()) << "malformed tag-segment source";
    value->assign(source, pos, len);
    pos += len;
  };
  field(&tag.begin);
  field(&tag.schema_text);
  field(&tag.end);
  XGR_CHECK(pos == source.size()) << "malformed tag-segment source";
  return tag;
}

}  // namespace xgr::grammar
