#include "grammar/regex_to_grammar.h"

#include <utility>
#include <vector>

#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::grammar {

namespace {

// True when `node` contributes a fixed byte string (a single codepoint).
bool IsLiteral(const regex::RegexNode& node) {
  return node.type == regex::NodeType::kLiteral;
}

}  // namespace

ExprId AddRegexExpr(Grammar* grammar, const regex::RegexNode& node) {
  XGR_CHECK(grammar != nullptr);
  switch (node.type) {
    case regex::NodeType::kEmpty:
      return grammar->AddEmpty();
    case regex::NodeType::kLiteral: {
      std::string bytes;
      AppendUtf8(node.literal, &bytes);
      return grammar->AddByteString(std::move(bytes));
    }
    case regex::NodeType::kAnyChar:
      // '.' = any codepoint except '\n'; negation resolved here.
      return grammar->AddCharClass(
          regex::NormalizeRanges({{'\n', '\n'}}, /*negated=*/true),
          /*negated=*/false);
    case regex::NodeType::kCharClass:
      // The regex parser already applied negation via NormalizeRanges.
      return grammar->AddCharClass(node.ranges, /*negated=*/false);
    case regex::NodeType::kConcat: {
      std::vector<ExprId> children;
      std::size_t i = 0;
      while (i < node.children.size()) {
        // Coalesce a maximal run of literal children into one byte string.
        if (IsLiteral(*node.children[i])) {
          std::string bytes;
          while (i < node.children.size() && IsLiteral(*node.children[i])) {
            AppendUtf8(node.children[i]->literal, &bytes);
            ++i;
          }
          children.push_back(grammar->AddByteString(std::move(bytes)));
          continue;
        }
        children.push_back(AddRegexExpr(grammar, *node.children[i]));
        ++i;
      }
      if (children.empty()) return grammar->AddEmpty();
      if (children.size() == 1) return children.front();
      return grammar->AddSequence(std::move(children));
    }
    case regex::NodeType::kAlternate: {
      std::vector<ExprId> children;
      children.reserve(node.children.size());
      for (const auto& child : node.children) {
        children.push_back(AddRegexExpr(grammar, *child));
      }
      XGR_CHECK(!children.empty()) << "alternation with no branches";
      return grammar->AddChoice(std::move(children));
    }
    case regex::NodeType::kRepeat:
      XGR_CHECK(node.children.size() == 1);
      return grammar->AddRepeat(AddRegexExpr(grammar, *node.children[0]),
                                node.min_repeat, node.max_repeat);
  }
  XGR_UNREACHABLE();
}

RuleId AddRegexRule(Grammar* grammar, const std::string& pattern,
                    const std::string& rule_name) {
  XGR_CHECK(grammar != nullptr);
  XGR_CHECK(grammar->FindRule(rule_name) == kInvalidRule)
      << "rule already defined: " << rule_name;
  regex::RegexParseResult parsed = regex::ParseRegex(pattern);
  XGR_CHECK(parsed.ok()) << "regex parse error in '" << pattern
                         << "': " << parsed.error;
  return grammar->AddRule(rule_name, AddRegexExpr(grammar, *parsed.root));
}

Grammar RegexToGrammar(const std::string& pattern,
                       const std::string& rule_name) {
  Grammar grammar;
  RuleId root = AddRegexRule(&grammar, pattern, rule_name);
  grammar.SetRootRule(root);
  grammar.Validate();
  return grammar;
}

}  // namespace xgr::grammar
