// Parser for the GBNF-flavoured EBNF surface syntax.
//
// Grammar of the metalanguage:
//   grammar  := (rule)*
//   rule     := IDENT "::=" body
//   body     := sequence ("|" sequence)*
//   sequence := element*            (empty sequence = epsilon)
//   element  := atom ("*" | "+" | "?" | "{" m ("," n?)? "}")?
//   atom     := STRING | CHARCLASS | IDENT | "(" body ")"
// Comments run from '#' to end of line. Rule bodies may span lines; a new
// rule begins where `IDENT ::=` appears.
#include <cctype>
#include <optional>

#include "grammar/grammar.h"
#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::grammar {

namespace {

enum class TokType : std::uint8_t {
  kIdent,
  kDefine,  // ::=
  kPipe,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kQuestion,
  kString,     // decoded literal bytes in `text`
  kCharClass,  // raw class source including brackets in `text`
  kRepeat,     // {m} {m,} {m,n}; bounds in min/max
  kEnd,
};

struct Token {
  TokType type = TokType::kEnd;
  std::string text;
  std::int32_t min_repeat = 0;
  std::int32_t max_repeat = -1;
  std::size_t offset = 0;  // for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  // Tokenizes the whole input; returns false and sets `error` on failure.
  bool Run(std::vector<Token>* tokens, std::string* error) {
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      Token token;
      token.offset = pos_;
      char c = text_[pos_];
      if (c == ':' && text_.compare(pos_, 3, "::=") == 0) {
        token.type = TokType::kDefine;
        pos_ += 3;
      } else if (c == '|') {
        token.type = TokType::kPipe;
        ++pos_;
      } else if (c == '(') {
        token.type = TokType::kLParen;
        ++pos_;
      } else if (c == ')') {
        token.type = TokType::kRParen;
        ++pos_;
      } else if (c == '*') {
        token.type = TokType::kStar;
        ++pos_;
      } else if (c == '+') {
        token.type = TokType::kPlus;
        ++pos_;
      } else if (c == '?') {
        token.type = TokType::kQuestion;
        ++pos_;
      } else if (c == '{') {
        if (!LexRepeat(&token, error)) return false;
      } else if (c == '"' || c == '\'') {
        if (!LexString(c, &token, error)) return false;
      } else if (c == '[') {
        if (!LexCharClass(&token, error)) return false;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.type = TokType::kIdent;
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '-')) {
          ++pos_;
        }
        token.text = text_.substr(start, pos_ - start);
      } else {
        *error = Err(pos_, std::string("unexpected character '") + c + "'");
        return false;
      }
      tokens->push_back(std::move(token));
    }
    tokens->push_back(Token{});  // kEnd
    return true;
  }

 private:
  static std::string Err(std::size_t offset, const std::string& message) {
    return "EBNF error at offset " + std::to_string(offset) + ": " + message;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool LexRepeat(Token* token, std::string* error) {
    std::size_t start = pos_;
    ++pos_;  // '{'
    auto read_int = [&]() -> std::optional<std::int32_t> {
      std::size_t digits = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (digits == pos_) return std::nullopt;
      return std::stoi(text_.substr(digits, pos_ - digits));
    };
    auto min_v = read_int();
    if (!min_v.has_value()) {
      *error = Err(start, "number expected in {m,n}");
      return false;
    }
    token->type = TokType::kRepeat;
    token->min_repeat = *min_v;
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      token->max_repeat = *min_v;
      return true;
    }
    if (pos_ >= text_.size() || text_[pos_] != ',') {
      *error = Err(start, "',' or '}' expected in {m,n}");
      return false;
    }
    ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      token->max_repeat = -1;
      return true;
    }
    auto max_v = read_int();
    if (!max_v.has_value() || pos_ >= text_.size() || text_[pos_] != '}') {
      *error = Err(start, "malformed {m,n}");
      return false;
    }
    ++pos_;
    token->max_repeat = *max_v;
    if (token->max_repeat < token->min_repeat) {
      *error = Err(start, "max < min in {m,n}");
      return false;
    }
    return true;
  }

  bool LexString(char quote, Token* token, std::string* error) {
    std::size_t start = pos_;
    ++pos_;
    token->type = TokType::kString;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        *error = Err(start, "unterminated string literal");
        return false;
      }
      char c = text_[pos_++];
      if (c == quote) break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        *error = Err(start, "dangling backslash");
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back('\0'); break;
        case '"': out.push_back('"'); break;
        case '\'': out.push_back('\''); break;
        case '\\': out.push_back('\\'); break;
        case 'x': {
          if (pos_ + 2 > text_.size()) {
            *error = Err(start, "truncated \\x escape");
            return false;
          }
          int value = 0;
          for (int i = 0; i < 2; ++i) {
            char h = text_[pos_++];
            int digit = (h >= '0' && h <= '9')   ? h - '0'
                        : (h >= 'a' && h <= 'f') ? h - 'a' + 10
                        : (h >= 'A' && h <= 'F') ? h - 'A' + 10
                                                 : -1;
            if (digit < 0) {
              *error = Err(start, "invalid hex digit in \\x");
              return false;
            }
            value = value * 16 + digit;
          }
          out.push_back(static_cast<char>(value));
          break;
        }
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            *error = Err(start, "truncated \\u escape");
            return false;
          }
          std::uint32_t value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            int digit = (h >= '0' && h <= '9')   ? h - '0'
                        : (h >= 'a' && h <= 'f') ? h - 'a' + 10
                        : (h >= 'A' && h <= 'F') ? h - 'A' + 10
                                                 : -1;
            if (digit < 0) {
              *error = Err(start, "invalid hex digit in \\u");
              return false;
            }
            value = value * 16 + static_cast<std::uint32_t>(digit);
          }
          AppendUtf8(value, &out);
          break;
        }
        default:
          *error = Err(start, std::string("unknown escape \\") + esc);
          return false;
      }
    }
    token->text = std::move(out);
    return true;
  }

  bool LexCharClass(Token* token, std::string* error) {
    std::size_t start = pos_;
    token->type = TokType::kCharClass;
    ++pos_;  // '['
    bool escaped = false;
    bool first = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (!escaped && c == ']' && !first) {
        ++pos_;
        token->text = text_.substr(start, pos_ - start);
        return true;
      }
      if (first && c != '^') first = false;
      escaped = !escaped && c == '\\';
      ++pos_;
    }
    *error = Err(start, "unterminated character class");
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

class EbnfParser {
 public:
  EbnfParser(std::vector<Token> tokens, const std::string& root_rule)
      : tokens_(std::move(tokens)), root_name_(root_rule) {}

  EbnfParseResult Run() {
    EbnfParseResult result;
    // Pass 1: declare all rules so forward references resolve.
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].type == TokType::kIdent &&
          tokens_[i + 1].type == TokType::kDefine) {
        grammar_.DeclareRule(tokens_[i].text);
      }
    }
    // Pass 2: parse bodies.
    while (Peek().type != TokType::kEnd) {
      if (!ParseRule()) {
        result.error = error_;
        return result;
      }
    }
    RuleId root = grammar_.FindRule(root_name_);
    if (root == kInvalidRule) {
      result.error = "root rule '" + root_name_ + "' not defined";
      return result;
    }
    for (RuleId r = 0; r < grammar_.NumRules(); ++r) {
      if (grammar_.GetRule(r).body == kInvalidExpr) {
        result.error = "rule '" + grammar_.GetRule(r).name + "' referenced but never defined";
        return result;
      }
    }
    grammar_.SetRootRule(root);
    result.grammar = std::move(grammar_);
    result.ok = true;
    return result;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "EBNF error at offset " + std::to_string(Peek().offset) + ": " + message;
    }
    return false;
  }

  bool ParseRule() {
    if (Peek().type != TokType::kIdent) return Fail("rule name expected");
    std::string name = Advance().text;
    if (Peek().type != TokType::kDefine) return Fail("'::=' expected");
    Advance();
    ExprId body;
    if (!ParseBody(&body)) return false;
    RuleId rule = grammar_.FindRule(name);
    if (grammar_.GetRule(rule).body != kInvalidExpr) {
      return Fail("rule '" + name + "' defined twice");
    }
    grammar_.SetRuleBody(rule, body);
    return true;
  }

  // A body ends at ')', EOF, or the start of the next rule (IDENT '::"=').
  bool AtBodyEnd() const {
    TokType t = Peek().type;
    if (t == TokType::kEnd || t == TokType::kRParen) return true;
    return t == TokType::kIdent && Peek(1).type == TokType::kDefine;
  }

  bool ParseBody(ExprId* out) {
    std::vector<ExprId> alternatives;
    while (true) {
      ExprId seq;
      if (!ParseSequence(&seq)) return false;
      alternatives.push_back(seq);
      if (Peek().type == TokType::kPipe) {
        Advance();
        continue;
      }
      break;
    }
    *out = grammar_.AddChoice(std::move(alternatives));
    return true;
  }

  bool ParseSequence(ExprId* out) {
    std::vector<ExprId> elements;
    while (!AtBodyEnd() && Peek().type != TokType::kPipe) {
      // Initialized only to satisfy GCC 12's -Wmaybe-uninitialized at -O3
      // (the failure paths of ParseElement never reach the push_back).
      ExprId element = -1;
      if (!ParseElement(&element)) return false;
      elements.push_back(element);
    }
    *out = grammar_.AddSequence(std::move(elements));
    return true;
  }

  bool ParseElement(ExprId* out) {
    ExprId atom = -1;
    if (!ParseAtom(&atom)) return false;
    while (true) {
      switch (Peek().type) {
        case TokType::kStar:
          Advance();
          atom = grammar_.AddStar(atom);
          break;
        case TokType::kPlus:
          Advance();
          atom = grammar_.AddPlus(atom);
          break;
        case TokType::kQuestion:
          Advance();
          atom = grammar_.AddOptional(atom);
          break;
        case TokType::kRepeat: {
          const Token& token = Advance();
          atom = grammar_.AddRepeat(atom, token.min_repeat, token.max_repeat);
          break;
        }
        default:
          *out = atom;
          return true;
      }
    }
  }

  bool ParseAtom(ExprId* out) {
    switch (Peek().type) {
      case TokType::kString: {
        *out = grammar_.AddByteString(Advance().text);
        return true;
      }
      case TokType::kCharClass: {
        const Token& token = Advance();
        // Delegate class-body parsing to the regex engine (same syntax).
        regex::RegexParseResult parsed = regex::ParseRegex(token.text);
        if (!parsed.ok() || parsed.root->type != regex::NodeType::kCharClass) {
          return Fail("invalid character class " + token.text +
                      (parsed.ok() ? "" : (": " + parsed.error)));
        }
        // Ranges come pre-normalized (negation resolved) from the regex parser.
        *out = grammar_.AddCharClass(std::move(parsed.root->ranges), false);
        return true;
      }
      case TokType::kIdent: {
        const Token& token = Advance();
        RuleId rule = grammar_.FindRule(token.text);
        if (rule == kInvalidRule) {
          return Fail("reference to undefined rule '" + token.text + "'");
        }
        *out = grammar_.AddRuleRef(rule);
        return true;
      }
      case TokType::kLParen: {
        Advance();
        if (!ParseBody(out)) return false;
        if (Peek().type != TokType::kRParen) return Fail("')' expected");
        Advance();
        return true;
      }
      default:
        return Fail("atom expected");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string root_name_;
  Grammar grammar_;
  std::string error_;
};

}  // namespace

EbnfParseResult ParseEbnf(const std::string& text, const std::string& root_rule) {
  std::vector<Token> tokens;
  std::string error;
  if (!Lexer(text).Run(&tokens, &error)) {
    EbnfParseResult result;
    result.error = std::move(error);
    return result;
  }
  return EbnfParser(std::move(tokens), root_rule).Run();
}

Grammar ParseEbnfOrThrow(const std::string& text, const std::string& root_rule) {
  EbnfParseResult result = ParseEbnf(text, root_rule);
  XGR_CHECK(result.ok) << result.error;
  return std::move(result.grammar);
}

}  // namespace xgr::grammar
