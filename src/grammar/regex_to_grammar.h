// Regular expression → context-free-grammar conversion.
//
// Lets the engine consume regexes natively: a pattern becomes a grammar rule,
// so the full XGrammar pipeline (compilation, adaptive token-mask cache,
// persistent stacks) applies to regex-constrained generation exactly as it
// does to CFGs. This mirrors the reference implementation, which accepts
// regex alongside EBNF and JSON Schema as a grammar source, and is also what
// the JSON-Schema converter uses for the "pattern" keyword.
//
// Matching semantics follow src/regex: full-match, anchors ignored.
#pragma once

#include <string>

#include "grammar/grammar.h"
#include "regex/regex.h"

namespace xgr::grammar {

// Appends expressions equivalent to the regex AST `node` to `grammar` and
// returns the root expression id. Adjacent literal characters are coalesced
// into single byte-string expressions so `"foo"|"bar"` compiles to two
// 3-byte edges rather than six 1-byte ones.
ExprId AddRegexExpr(Grammar* grammar, const regex::RegexNode& node);

// Parses `pattern` and adds it to `grammar` as a new rule named `rule_name`.
// Throws xgr::CheckError when the pattern does not parse or the rule name is
// already taken.
RuleId AddRegexRule(Grammar* grammar, const std::string& pattern,
                    const std::string& rule_name);

// Builds a grammar whose root rule matches exactly the strings of `pattern`.
// Throws xgr::CheckError on parse errors.
Grammar RegexToGrammar(const std::string& pattern,
                       const std::string& rule_name = "root");

}  // namespace xgr::grammar
