// Grammar-level transformation passes: normalization, fragment-rule inlining
// (§3.4 of the paper) and dead-rule elimination.
#include <algorithm>
#include <unordered_set>

#include "grammar/grammar.h"
#include "support/logging.h"

namespace xgr::grammar {

namespace {

// Rebuilds `expr` inside `grammar` with nested sequence/choice flattened and
// degenerate containers collapsed.
ExprId NormalizeExpr(Grammar* grammar, ExprId expr_id) {
  const Expr expr = grammar->GetExpr(expr_id);  // copy: arena may grow below
  switch (expr.type) {
    case ExprType::kEmpty:
    case ExprType::kByteString:
    case ExprType::kCharClass:
    case ExprType::kRuleRef:
      return expr_id;
    case ExprType::kSequence: {
      std::vector<ExprId> flat;
      bool changed = false;
      for (ExprId child_id : expr.children) {
        ExprId norm = NormalizeExpr(grammar, child_id);
        changed = changed || norm != child_id;
        const Expr& child = grammar->GetExpr(norm);
        if (child.type == ExprType::kSequence) {
          flat.insert(flat.end(), child.children.begin(), child.children.end());
          changed = true;
        } else if (child.type == ExprType::kEmpty) {
          changed = true;  // drop epsilon inside sequences
        } else {
          flat.push_back(norm);
        }
      }
      if (!changed) return expr_id;
      return grammar->AddSequence(std::move(flat));
    }
    case ExprType::kChoice: {
      std::vector<ExprId> flat;
      bool changed = false;
      for (ExprId child_id : expr.children) {
        ExprId norm = NormalizeExpr(grammar, child_id);
        changed = changed || norm != child_id;
        const Expr& child = grammar->GetExpr(norm);
        if (child.type == ExprType::kChoice) {
          flat.insert(flat.end(), child.children.begin(), child.children.end());
          changed = true;
        } else {
          flat.push_back(norm);
        }
      }
      if (!changed) return expr_id;
      return grammar->AddChoice(std::move(flat));
    }
    case ExprType::kRepeat: {
      ExprId norm = NormalizeExpr(grammar, expr.children[0]);
      const Expr& child = grammar->GetExpr(norm);
      if (child.type == ExprType::kEmpty) return norm;  // eps{m,n} = eps
      // star-of-star style collapses: (e*)* => e*, (e?)? => e?, etc. Only the
      // fully-unbounded/optional combinations are safe to fuse.
      if (child.type == ExprType::kRepeat) {
        bool outer_simple = expr.min_repeat <= 1 && (expr.max_repeat == -1 || expr.max_repeat == 1);
        bool inner_simple = child.min_repeat <= 1 && (child.max_repeat == -1 || child.max_repeat == 1);
        if (outer_simple && inner_simple) {
          std::int32_t min_r = std::min(expr.min_repeat, child.min_repeat);
          std::int32_t max_r = (expr.max_repeat == -1 || child.max_repeat == -1) ? -1 : 1;
          return grammar->AddRepeat(child.children[0], min_r, max_r);
        }
      }
      if (norm == expr.children[0]) return expr_id;
      return grammar->AddRepeat(norm, expr.min_repeat, expr.max_repeat);
    }
  }
  XGR_UNREACHABLE();
}

// Collects the set of rules referenced anywhere under `expr`.
void CollectRuleRefs(const Grammar& grammar, ExprId expr_id,
                     std::unordered_set<RuleId>* out) {
  const Expr& expr = grammar.GetExpr(expr_id);
  if (expr.type == ExprType::kRuleRef) {
    out->insert(expr.rule_ref);
    return;
  }
  for (ExprId child : expr.children) CollectRuleRefs(grammar, child, out);
}

// Replaces references to `target` under `expr` with fresh copies of `body`.
// Returns the rewritten expression id.
ExprId SubstituteRule(Grammar* grammar, ExprId expr_id, RuleId target,
                      ExprId body) {
  const Expr expr = grammar->GetExpr(expr_id);  // copy (arena growth)
  if (expr.type == ExprType::kRuleRef) {
    if (expr.rule_ref == target) return grammar->CopyExpr(body);
    return expr_id;
  }
  if (expr.children.empty()) return expr_id;
  std::vector<ExprId> children = expr.children;
  bool changed = false;
  for (ExprId& child : children) {
    ExprId rewritten = SubstituteRule(grammar, child, target, body);
    changed = changed || rewritten != child;
    child = rewritten;
  }
  if (!changed) return expr_id;
  Expr updated = expr;
  updated.children = std::move(children);
  switch (updated.type) {
    case ExprType::kSequence:
      return grammar->AddSequence(std::move(updated.children));
    case ExprType::kChoice:
      return grammar->AddChoice(std::move(updated.children));
    case ExprType::kRepeat:
      return grammar->AddRepeat(updated.children[0], updated.min_repeat,
                                updated.max_repeat);
    default:
      XGR_UNREACHABLE();
  }
}

// Deep-copies expression trees from one grammar into another, remapping rule
// references through `remap` (indexed by source RuleId). Shared by
// RemoveUnreachableRules and ImportRules.
struct CrossGrammarCopier {
  const Grammar& src;
  Grammar& dst;
  const std::vector<RuleId>& remap;
  ExprId Copy(ExprId expr_id) {  // NOLINT(misc-no-recursion)
    const Expr& expr = src.GetExpr(expr_id);
    switch (expr.type) {
      case ExprType::kEmpty:
        return dst.AddEmpty();
      case ExprType::kByteString:
        return dst.AddByteString(expr.bytes);
      case ExprType::kCharClass: {
        // Bypass re-normalization: ranges are already normalized.
        return dst.AddCharClass(expr.ranges, false);
      }
      case ExprType::kRuleRef:
        return dst.AddRuleRef(remap[static_cast<std::size_t>(expr.rule_ref)]);
      case ExprType::kSequence:
      case ExprType::kChoice:
      case ExprType::kRepeat: {
        std::vector<ExprId> children;
        children.reserve(expr.children.size());
        for (ExprId child : expr.children) children.push_back(Copy(child));
        if (expr.type == ExprType::kSequence) return dst.AddSequence(std::move(children));
        if (expr.type == ExprType::kChoice) return dst.AddChoice(std::move(children));
        return dst.AddRepeat(children[0], expr.min_repeat, expr.max_repeat);
      }
    }
    XGR_UNREACHABLE();
  }
};

}  // namespace

void NormalizeGrammar(Grammar* grammar) {
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    ExprId body = grammar->GetRule(r).body;
    grammar->SetRuleBody(r, NormalizeExpr(grammar, body));
  }
}

int InlineFragmentRules(Grammar* grammar, const InlineOptions& options) {
  int inlined_count = 0;
  // Iterate to fixpoint: inlining a fragment may turn its parents into
  // fragments themselves.
  constexpr int kMaxPasses = 32;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    // Identify current fragments: small rules whose bodies reference no other
    // rule. The root rule is never inlined away (it is the PDA entry).
    std::vector<RuleId> fragments;
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      if (r == grammar->RootRule()) continue;
      ExprId body = grammar->GetRule(r).body;
      std::unordered_set<RuleId> refs;
      CollectRuleRefs(*grammar, body, &refs);
      if (!refs.empty()) continue;
      if (grammar->ExprSize(body) > options.max_inlinee_atoms) continue;
      fragments.push_back(r);
    }
    if (fragments.empty()) break;

    bool changed = false;
    std::unordered_set<RuleId> fragment_set(fragments.begin(), fragments.end());
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      if (fragment_set.count(r) != 0) continue;  // fragments keep their bodies
      ExprId body = grammar->GetRule(r).body;
      std::unordered_set<RuleId> refs;
      CollectRuleRefs(*grammar, body, &refs);
      for (RuleId fragment : fragments) {
        if (refs.count(fragment) == 0) continue;
        ExprId fragment_body = grammar->GetRule(fragment).body;
        // Respect the growth cap: the reference count times fragment size
        // must keep the resulting body bounded.
        std::int32_t projected =
            grammar->ExprSize(body) + grammar->ExprSize(fragment_body) * 8;
        if (projected > options.max_result_atoms) continue;
        ExprId rewritten = SubstituteRule(grammar, body, fragment, fragment_body);
        if (rewritten != body) {
          body = rewritten;
          grammar->SetRuleBody(r, body);
          changed = true;
          ++inlined_count;
        }
      }
    }
    if (!changed) break;
  }
  RemoveUnreachableRules(grammar);
  return inlined_count;
}

int RemoveUnreachableRules(Grammar* grammar) {
  // BFS over rule references from the root.
  std::vector<char> reachable(static_cast<std::size_t>(grammar->NumRules()), 0);
  std::vector<RuleId> queue{grammar->RootRule()};
  reachable[static_cast<std::size_t>(grammar->RootRule())] = 1;
  while (!queue.empty()) {
    RuleId r = queue.back();
    queue.pop_back();
    std::unordered_set<RuleId> refs;
    CollectRuleRefs(*grammar, grammar->GetRule(r).body, &refs);
    for (RuleId ref : refs) {
      if (!reachable[static_cast<std::size_t>(ref)]) {
        reachable[static_cast<std::size_t>(ref)] = 1;
        queue.push_back(ref);
      }
    }
  }
  int removed = 0;
  for (char flag : reachable) {
    if (!flag) ++removed;
  }
  if (removed == 0) return 0;

  // Rebuild a compact grammar with only reachable rules.
  Grammar result;
  std::vector<RuleId> remap(static_cast<std::size_t>(grammar->NumRules()), kInvalidRule);
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    if (reachable[static_cast<std::size_t>(r)]) {
      remap[static_cast<std::size_t>(r)] = result.DeclareRule(grammar->GetRule(r).name);
    }
  }
  // Deep-copy bodies with remapped references.
  CrossGrammarCopier copier{*grammar, result, remap};
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    if (!reachable[static_cast<std::size_t>(r)]) continue;
    result.SetRuleBody(remap[static_cast<std::size_t>(r)],
                       copier.Copy(grammar->GetRule(r).body));
  }
  result.SetRootRule(remap[static_cast<std::size_t>(grammar->RootRule())]);
  *grammar = std::move(result);
  return removed;
}

RuleId ImportRules(Grammar* dst, const Grammar& src, const std::string& prefix) {
  XGR_CHECK(dst != nullptr);
  XGR_CHECK(src.RootRule() != kInvalidRule) << "source grammar has no root";
  std::vector<RuleId> remap(static_cast<std::size_t>(src.NumRules()), kInvalidRule);
  for (RuleId r = 0; r < src.NumRules(); ++r) {
    const std::string name = prefix + src.GetRule(r).name;
    XGR_CHECK(dst->FindRule(name) == kInvalidRule)
        << "ImportRules name collision: " << name;
    remap[static_cast<std::size_t>(r)] = dst->DeclareRule(name);
  }
  CrossGrammarCopier copier{src, *dst, remap};
  for (RuleId r = 0; r < src.NumRules(); ++r) {
    dst->SetRuleBody(remap[static_cast<std::size_t>(r)],
                     copier.Copy(src.GetRule(r).body));
  }
  return remap[static_cast<std::size_t>(src.RootRule())];
}

}  // namespace xgr::grammar
