// Grammar-level transformation passes: normalization, fragment-rule inlining
// (§3.4 of the paper) and dead-rule elimination with arena compaction.
//
// All walks here are explicit-stack (see expr_rewrite.h): rule bodies can
// nest ~100k deep without touching the C++ call stack.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "grammar/expr_rewrite.h"
#include "grammar/grammar.h"
#include "support/logging.h"

namespace xgr::grammar {

namespace detail {

std::unordered_map<RuleId, std::int64_t> CountRuleRefs(const Grammar& grammar,
                                                       ExprId root) {
  std::unordered_map<RuleId, std::int64_t> counts;
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    const Expr& expr = grammar.GetExpr(stack.back());
    stack.pop_back();
    if (expr.type == ExprType::kRuleRef) {
      ++counts[expr.rule_ref];
      continue;
    }
    for (ExprId child : expr.children) stack.push_back(child);
  }
  return counts;
}

ExprId SubstituteRule(Grammar* grammar, ExprId expr_id, RuleId target,
                      ExprId body) {
  return RewriteExprBottomUp(
      grammar, expr_id,
      [&](ExprId id, std::vector<ExprId> children, bool changed) -> ExprId {
        const Expr& expr = grammar->GetExpr(id);
        if (expr.type == ExprType::kRuleRef) {
          return expr.rule_ref == target ? grammar->CopyExpr(body) : id;
        }
        if (!changed) return id;
        switch (expr.type) {
          case ExprType::kSequence:
            return grammar->AddSequence(std::move(children));
          case ExprType::kChoice:
            return grammar->AddChoice(std::move(children));
          case ExprType::kRepeat:
            return grammar->AddRepeat(children[0], expr.min_repeat,
                                      expr.max_repeat);
          default:
            XGR_UNREACHABLE();
        }
      });
}

}  // namespace detail

namespace {

// Rebuilds `expr` inside `grammar` with nested sequence/choice flattened and
// degenerate containers collapsed.
ExprId NormalizeExpr(Grammar* grammar, ExprId expr_id) {
  return detail::RewriteExprBottomUp(
      grammar, expr_id,
      [&](ExprId id, std::vector<ExprId> children, bool changed) -> ExprId {
        // Copy, not reference: AddSequence/AddChoice below may grow the arena.
        const ExprType type = grammar->GetExpr(id).type;
        switch (type) {
          case ExprType::kEmpty:
          case ExprType::kByteString:
          case ExprType::kCharClass:
          case ExprType::kRuleRef:
            return id;
          case ExprType::kSequence: {
            std::vector<ExprId> flat;
            for (ExprId child_id : children) {
              const Expr& child = grammar->GetExpr(child_id);
              if (child.type == ExprType::kSequence) {
                flat.insert(flat.end(), child.children.begin(),
                            child.children.end());
                changed = true;
              } else if (child.type == ExprType::kEmpty) {
                changed = true;  // drop epsilon inside sequences
              } else {
                flat.push_back(child_id);
              }
            }
            if (!changed) return id;
            return grammar->AddSequence(std::move(flat));
          }
          case ExprType::kChoice: {
            std::vector<ExprId> flat;
            for (ExprId child_id : children) {
              const Expr& child = grammar->GetExpr(child_id);
              if (child.type == ExprType::kChoice) {
                flat.insert(flat.end(), child.children.begin(),
                            child.children.end());
                changed = true;
              } else {
                flat.push_back(child_id);
              }
            }
            if (!changed) return id;
            return grammar->AddChoice(std::move(flat));
          }
          case ExprType::kRepeat: {
            const Expr self = grammar->GetExpr(id);  // copy (arena growth)
            ExprId norm = children[0];
            const Expr& child = grammar->GetExpr(norm);
            if (child.type == ExprType::kEmpty) return norm;  // eps{m,n} = eps
            // star-of-star style collapses: (e*)* => e*, (e?)? => e?, etc.
            // Only the fully-unbounded/optional combinations are safe to fuse.
            if (child.type == ExprType::kRepeat) {
              bool outer_simple = self.min_repeat <= 1 &&
                                  (self.max_repeat == -1 || self.max_repeat == 1);
              bool inner_simple =
                  child.min_repeat <= 1 &&
                  (child.max_repeat == -1 || child.max_repeat == 1);
              if (outer_simple && inner_simple) {
                std::int32_t min_r = std::min(self.min_repeat, child.min_repeat);
                std::int32_t max_r =
                    (self.max_repeat == -1 || child.max_repeat == -1) ? -1 : 1;
                return grammar->AddRepeat(child.children[0], min_r, max_r);
              }
            }
            if (!changed) return id;
            return grammar->AddRepeat(norm, self.min_repeat, self.max_repeat);
          }
        }
        XGR_UNREACHABLE();
      });
}

// Deep-copies expression trees from one grammar into another, remapping rule
// references through `remap` (indexed by source RuleId). Shared by
// RemoveUnreachableRules and ImportRules. Iterative post-order with a memo
// shared across Copy calls, so subtrees shared between rules stay shared.
struct CrossGrammarCopier {
  const Grammar& src;
  Grammar& dst;
  const std::vector<RuleId>& remap;
  std::unordered_map<ExprId, ExprId> done;

  ExprId Copy(ExprId root) {
    std::vector<ExprId> stack{root};
    while (!stack.empty()) {
      ExprId id = stack.back();
      if (done.count(id) != 0) {
        stack.pop_back();
        continue;
      }
      const Expr& expr = src.GetExpr(id);
      bool ready = true;
      for (ExprId child : expr.children) {
        if (done.count(child) == 0) {
          ready = false;
          stack.push_back(child);
        }
      }
      if (!ready) continue;
      stack.pop_back();
      done.emplace(id, CopyNode(expr));
    }
    return done.at(root);
  }

 private:
  ExprId CopyNode(const Expr& expr) {
    switch (expr.type) {
      case ExprType::kEmpty:
        return dst.AddEmpty();
      case ExprType::kByteString:
        return dst.AddByteString(expr.bytes);
      case ExprType::kCharClass:
        // Bypass re-normalization: ranges are already normalized.
        return dst.AddCharClass(expr.ranges, false);
      case ExprType::kRuleRef:
        return dst.AddRuleRef(remap[static_cast<std::size_t>(expr.rule_ref)]);
      case ExprType::kSequence:
      case ExprType::kChoice:
      case ExprType::kRepeat: {
        std::vector<ExprId> children;
        children.reserve(expr.children.size());
        for (ExprId child : expr.children) children.push_back(done.at(child));
        if (expr.type == ExprType::kSequence)
          return dst.AddSequence(std::move(children));
        if (expr.type == ExprType::kChoice)
          return dst.AddChoice(std::move(children));
        return dst.AddRepeat(children[0], expr.min_repeat, expr.max_repeat);
      }
    }
    XGR_UNREACHABLE();
  }
};

}  // namespace

void NormalizeGrammar(Grammar* grammar) {
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    ExprId body = grammar->GetRule(r).body;
    grammar->SetRuleBody(r, NormalizeExpr(grammar, body));
  }
}

int InlineFragmentRules(Grammar* grammar, const InlineOptions& options) {
  int inlined_count = 0;
  // Iterate to fixpoint: inlining a fragment may turn its parents into
  // fragments themselves.
  constexpr int kMaxPasses = 32;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    // Identify current fragments: small rules whose bodies reference no other
    // rule. The root rule is never inlined away (it is the PDA entry).
    std::vector<RuleId> fragments;
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      if (r == grammar->RootRule()) continue;
      ExprId body = grammar->GetRule(r).body;
      if (!detail::CountRuleRefs(*grammar, body).empty()) continue;
      if (grammar->ExprSize(body) > options.max_inlinee_atoms) continue;
      fragments.push_back(r);
    }
    if (fragments.empty()) break;

    bool changed = false;
    std::unordered_set<RuleId> fragment_set(fragments.begin(), fragments.end());
    for (RuleId r = 0; r < grammar->NumRules(); ++r) {
      if (fragment_set.count(r) != 0) continue;  // fragments keep their bodies
      ExprId body = grammar->GetRule(r).body;
      // Reference counts for this body, computed once per pass. Substituting
      // one fragment cannot change the counts of the others (fragment bodies
      // reference no rules), so the counts stay valid across the inner loop.
      std::unordered_map<RuleId, std::int64_t> ref_counts =
          detail::CountRuleRefs(*grammar, body);
      for (RuleId fragment : fragments) {
        auto it = ref_counts.find(fragment);
        if (it == ref_counts.end()) continue;
        const std::int64_t refs = it->second;
        ExprId fragment_body = grammar->GetRule(fragment).body;
        // Growth cap with the real reference count: each of the `refs`
        // one-atom kRuleRef nodes becomes a copy of the fragment body, so the
        // body grows by refs * (fragment_atoms - 1) atoms exactly.
        const std::int64_t fragment_atoms = grammar->ExprSize(fragment_body);
        const std::int64_t projected =
            grammar->ExprSize(body) + refs * (fragment_atoms - 1);
        if (projected > options.max_result_atoms) continue;
        ExprId rewritten =
            detail::SubstituteRule(grammar, body, fragment, fragment_body);
        if (rewritten != body) {
          body = rewritten;
          grammar->SetRuleBody(r, body);
          changed = true;
          ++inlined_count;
        }
      }
    }
    if (!changed) break;
  }
  RemoveUnreachableRules(grammar);
  return inlined_count;
}

int RemoveUnreachableRules(Grammar* grammar) {
  // BFS over rule references from the root.
  std::vector<char> reachable(static_cast<std::size_t>(grammar->NumRules()), 0);
  std::vector<RuleId> queue{grammar->RootRule()};
  reachable[static_cast<std::size_t>(grammar->RootRule())] = 1;
  while (!queue.empty()) {
    RuleId r = queue.back();
    queue.pop_back();
    for (const auto& [ref, count] :
         detail::CountRuleRefs(*grammar, grammar->GetRule(r).body)) {
      (void)count;
      if (!reachable[static_cast<std::size_t>(ref)]) {
        reachable[static_cast<std::size_t>(ref)] = 1;
        queue.push_back(ref);
      }
    }
  }
  int removed = 0;
  for (char flag : reachable) {
    if (!flag) ++removed;
  }

  // Rebuild a compact grammar even when every rule survives: rewrites such as
  // SubstituteRule and NormalizeExpr strand their intermediate exprs in the
  // arena, and this rebuild is where those stranded slots are reclaimed
  // before serialization.
  Grammar result;
  std::vector<RuleId> remap(static_cast<std::size_t>(grammar->NumRules()), kInvalidRule);
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    if (reachable[static_cast<std::size_t>(r)]) {
      remap[static_cast<std::size_t>(r)] = result.DeclareRule(grammar->GetRule(r).name);
    }
  }
  // Deep-copy bodies with remapped references.
  CrossGrammarCopier copier{*grammar, result, remap, {}};
  for (RuleId r = 0; r < grammar->NumRules(); ++r) {
    if (!reachable[static_cast<std::size_t>(r)]) continue;
    result.SetRuleBody(remap[static_cast<std::size_t>(r)],
                       copier.Copy(grammar->GetRule(r).body));
  }
  result.SetRootRule(remap[static_cast<std::size_t>(grammar->RootRule())]);
  *grammar = std::move(result);
  return removed;
}

RuleId ImportRules(Grammar* dst, const Grammar& src, const std::string& prefix) {
  XGR_CHECK(dst != nullptr);
  XGR_CHECK(src.RootRule() != kInvalidRule) << "source grammar has no root";
  std::vector<RuleId> remap(static_cast<std::size_t>(src.NumRules()), kInvalidRule);
  for (RuleId r = 0; r < src.NumRules(); ++r) {
    const std::string name = prefix + src.GetRule(r).name;
    XGR_CHECK(dst->FindRule(name) == kInvalidRule)
        << "ImportRules name collision: " << name;
    remap[static_cast<std::size_t>(r)] = dst->DeclareRule(name);
  }
  CrossGrammarCopier copier{src, *dst, remap, {}};
  for (RuleId r = 0; r < src.NumRules(); ++r) {
    dst->SetRuleBody(remap[static_cast<std::size_t>(r)],
                     copier.Copy(src.GetRule(r).body));
  }
  return remap[static_cast<std::size_t>(src.RootRule())];
}

}  // namespace xgr::grammar
