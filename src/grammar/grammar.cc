#include "grammar/grammar.h"

#include <limits>
#include <unordered_map>

#include "support/logging.h"

namespace xgr::grammar {

ExprId Grammar::AddExpr(Expr expr) {
  exprs_.push_back(std::move(expr));
  return static_cast<ExprId>(exprs_.size()) - 1;
}

ExprId Grammar::AddByteString(std::string bytes) {
  if (bytes.empty()) return AddEmpty();
  Expr expr;
  expr.type = ExprType::kByteString;
  expr.bytes = std::move(bytes);
  return AddExpr(std::move(expr));
}

ExprId Grammar::AddCharClass(std::vector<regex::CodepointRange> ranges,
                             bool negated) {
  Expr expr;
  expr.type = ExprType::kCharClass;
  expr.ranges = regex::NormalizeRanges(std::move(ranges), negated);
  XGR_CHECK(!expr.ranges.empty()) << "character class matches nothing";
  return AddExpr(std::move(expr));
}

ExprId Grammar::AddRuleRef(RuleId rule) {
  XGR_CHECK(rule >= 0 && rule < NumRules()) << "bad rule id " << rule;
  Expr expr;
  expr.type = ExprType::kRuleRef;
  expr.rule_ref = rule;
  return AddExpr(std::move(expr));
}

ExprId Grammar::AddSequence(std::vector<ExprId> children) {
  if (children.empty()) return AddEmpty();
  if (children.size() == 1) return children[0];
  Expr expr;
  expr.type = ExprType::kSequence;
  expr.children = std::move(children);
  return AddExpr(std::move(expr));
}

ExprId Grammar::AddChoice(std::vector<ExprId> children) {
  XGR_CHECK(!children.empty()) << "choice needs at least one alternative";
  if (children.size() == 1) return children[0];
  Expr expr;
  expr.type = ExprType::kChoice;
  expr.children = std::move(children);
  return AddExpr(std::move(expr));
}

ExprId Grammar::AddRepeat(ExprId child, std::int32_t min_repeat,
                          std::int32_t max_repeat) {
  XGR_CHECK(min_repeat >= 0) << "negative repetition";
  XGR_CHECK(max_repeat == -1 || max_repeat >= min_repeat)
      << "bad repetition bounds {" << min_repeat << "," << max_repeat << "}";
  if (max_repeat == 1 && min_repeat == 1) return child;
  Expr expr;
  expr.type = ExprType::kRepeat;
  expr.children = {child};
  expr.min_repeat = min_repeat;
  expr.max_repeat = max_repeat;
  return AddExpr(std::move(expr));
}

RuleId Grammar::DeclareRule(const std::string& name) {
  auto it = rule_by_name_.find(name);
  if (it != rule_by_name_.end()) return it->second;
  RuleId id = static_cast<RuleId>(rules_.size());
  rules_.push_back(Rule{name, kInvalidExpr});
  rule_by_name_.emplace(name, id);
  return id;
}

RuleId Grammar::AddRule(const std::string& name, ExprId body) {
  RuleId id = DeclareRule(name);
  SetRuleBody(id, body);
  return id;
}

void Grammar::SetRuleBody(RuleId rule, ExprId body) {
  XGR_CHECK(rule >= 0 && rule < NumRules()) << "bad rule id " << rule;
  XGR_CHECK(body >= 0 && body < NumExprs()) << "bad expr id " << body;
  rules_[static_cast<std::size_t>(rule)].body = body;
}

RuleId Grammar::FindRule(const std::string& name) const {
  auto it = rule_by_name_.find(name);
  return it == rule_by_name_.end() ? kInvalidRule : it->second;
}

const Rule& Grammar::GetRule(RuleId rule) const {
  XGR_CHECK(rule >= 0 && rule < NumRules()) << "bad rule id " << rule;
  return rules_[static_cast<std::size_t>(rule)];
}

const Expr& Grammar::GetExpr(ExprId expr) const {
  XGR_CHECK(expr >= 0 && expr < NumExprs()) << "bad expr id " << expr;
  return exprs_[static_cast<std::size_t>(expr)];
}

Expr& Grammar::MutableExpr(ExprId expr) {
  XGR_CHECK(expr >= 0 && expr < NumExprs()) << "bad expr id " << expr;
  return exprs_[static_cast<std::size_t>(expr)];
}

std::int32_t Grammar::ExprSize(ExprId expr_id) const {
  // Explicit-stack walk: grammars arrive from untrusted EBNF text and can nest
  // arbitrarily deep, so no tree traversal in this file may use the C++ call
  // stack. No memoization on purpose — a subtree referenced twice costs twice
  // (tree-expansion semantics), which is what Thompson lowering will pay.
  std::int64_t total = 0;
  std::vector<ExprId> stack{expr_id};
  while (!stack.empty()) {
    const Expr& expr = GetExpr(stack.back());
    stack.pop_back();
    switch (expr.type) {
      case ExprType::kEmpty:
      case ExprType::kCharClass:
      case ExprType::kRuleRef:
        total += 1;
        break;
      case ExprType::kByteString:
        total += static_cast<std::int64_t>(expr.bytes.size());
        break;
      case ExprType::kSequence:
      case ExprType::kChoice:
      case ExprType::kRepeat:
        total += 1;
        for (ExprId child : expr.children) stack.push_back(child);
        break;
    }
    if (total >= std::numeric_limits<std::int32_t>::max()) {
      return std::numeric_limits<std::int32_t>::max();
    }
  }
  return static_cast<std::int32_t>(total);
}

ExprId Grammar::CopyExpr(ExprId expr_id) {
  // Iterative post-order copy, memoized per source id: a subtree shared via
  // DAG structure is copied once and re-shared, and deep chains cannot
  // overflow the call stack.
  std::unordered_map<ExprId, ExprId> done;
  std::vector<ExprId> stack{expr_id};
  while (!stack.empty()) {
    ExprId id = stack.back();
    if (done.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    // Copy of the children list: AddExpr below may reallocate the arena.
    const std::vector<ExprId> children = GetExpr(id).children;
    bool ready = true;
    for (ExprId child : children) {
      if (done.count(child) == 0) {
        if (ready) ready = false;
        stack.push_back(child);
      }
    }
    if (!ready) continue;
    stack.pop_back();
    Expr copy = GetExpr(id);  // value copy
    for (ExprId& child : copy.children) child = done.at(child);
    done.emplace(id, AddExpr(std::move(copy)));
  }
  return done.at(expr_id);
}

std::size_t Grammar::ArenaBytes() const {
  std::size_t total = exprs_.capacity() * sizeof(Expr);
  for (const Expr& expr : exprs_) {
    total += expr.bytes.capacity();
    total += expr.ranges.capacity() * sizeof(regex::CodepointRange);
    total += expr.children.capacity() * sizeof(ExprId);
  }
  return total;
}

void Grammar::Validate() const {
  XGR_CHECK(root_rule_ >= 0 && root_rule_ < NumRules()) << "root rule not set";
  for (std::int32_t r = 0; r < NumRules(); ++r) {
    const Rule& rule = rules_[static_cast<std::size_t>(r)];
    XGR_CHECK(rule.body != kInvalidExpr) << "rule '" << rule.name << "' has no body";
    XGR_CHECK(rule.body >= 0 && rule.body < NumExprs());
  }
  for (std::int32_t e = 0; e < NumExprs(); ++e) {
    const Expr& expr = exprs_[static_cast<std::size_t>(e)];
    for (ExprId child : expr.children) {
      XGR_CHECK(child >= 0 && child < NumExprs()) << "dangling child expr";
    }
    if (expr.type == ExprType::kRuleRef) {
      XGR_CHECK(expr.rule_ref >= 0 && expr.rule_ref < NumRules()) << "dangling rule ref";
    }
  }
}

}  // namespace xgr::grammar
