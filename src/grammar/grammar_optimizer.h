// Composable grammar optimization passes (§3.4 of the paper).
//
// Every compile-time cost downstream — adaptive token-mask cache build time,
// serialized artifact bytes, live PDA stacks per decoded token — scales with
// grammar size, so grammar rewriting is organized as a pipeline of small
// passes, each of which must preserve the byte-level language EXACTLY
// (language equality is what guarantees bit-identical per-token masks; the
// differential suite in tests/grammar_optimizer_test.cc enforces it).
//
// The standard pipeline (BuildOptimizerPipeline), in order:
//   normalize    flatten nested seq/choice, drop eps in seq, fuse star-star
//   eps-elim     substitute away rules whose body is epsilon
//   unit-collapse redirect refs through single-RuleRef alias rules
//   inline       fragment-rule inlining under real-ref-count growth caps
//   atom-merge   concatenate adjacent byte strings; union char-class and
//                single-codepoint alternates inside choices
//   fsa-minimize lower recursion-free rule bodies through NFA → DFA →
//                Hopcroft-minimal DFA → GNFA state elimination, keep the
//                result only when strictly smaller
//   dead-compact drop unreachable rules and rebuild the expr arena, GC'ing
//                every expr stranded by the passes above (runs last)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "grammar/grammar.h"

namespace xgr::grammar {

// Before/after snapshot of one pass invocation; threaded into
// CacheBuildStats::optimizer_passes and the bench JSON.
struct PassStats {
  std::string name;
  std::int32_t rules_before = 0;
  std::int32_t rules_after = 0;
  std::int32_t exprs_before = 0;
  std::int32_t exprs_after = 0;
  std::int64_t arena_bytes_before = 0;
  std::int64_t arena_bytes_after = 0;
  std::int64_t wall_us = 0;
  bool changed = false;
};

class GrammarPass {
 public:
  virtual ~GrammarPass() = default;
  virtual const char* Name() const = 0;
  // Rewrites `grammar` in place; returns true if anything changed. The
  // byte-level language of every rule reachable from the root must be
  // preserved exactly.
  virtual bool Run(Grammar* grammar) = 0;
};

class PassPipeline {
 public:
  void Add(std::unique_ptr<GrammarPass> pass);
  std::size_t NumPasses() const { return passes_.size(); }
  // Runs every pass in order. Appends one PassStats per pass to `stats` when
  // non-null. Returns true if any pass changed the grammar.
  bool Run(Grammar* grammar, std::vector<PassStats>* stats = nullptr) const;

 private:
  std::vector<std::unique_ptr<GrammarPass>> passes_;
};

struct OptimizerOptions {
  bool normalize = true;
  bool epsilon_elimination = true;
  bool unit_rule_collapse = true;
  bool rule_inlining = true;
  bool atom_merging = true;
  bool fsa_minimization = true;
  bool dead_rule_elimination = true;
  InlineOptions inline_options;

  // FSA-minimization legality guards: a rule body is only lowered when it is
  // recursion-free (no rule refs at all), its atom count is at most
  // `fsa_max_source_atoms`, its DFA stays within `fsa_max_dfa_states`, and
  // the re-emitted expression has fewer than `fsa_max_result_atoms` atoms
  // AND fewer atoms than the original body. Rules that fail any guard keep
  // their original body.
  std::int32_t fsa_max_dfa_states = 128;
  std::int32_t fsa_max_source_atoms = 4096;
  std::int32_t fsa_max_result_atoms = 256;

  // Everything off except normalization, which downstream lowering relies on
  // for flat bodies (matches the historical always-on NormalizeGrammar).
  static OptimizerOptions AllDisabled() {
    OptimizerOptions o;
    o.epsilon_elimination = false;
    o.unit_rule_collapse = false;
    o.rule_inlining = false;
    o.atom_merging = false;
    o.fsa_minimization = false;
    o.dead_rule_elimination = false;
    return o;
  }
};

// Assembles the standard pipeline for `options` (disabled passes are simply
// not added, so PassStats rows only exist for passes that ran).
PassPipeline BuildOptimizerPipeline(const OptimizerOptions& options = {});

// Convenience: build + run the standard pipeline.
bool OptimizeGrammar(Grammar* grammar, const OptimizerOptions& options = {},
                     std::vector<PassStats>* stats = nullptr);

}  // namespace xgr::grammar
