#include "grammar/earley.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::grammar {

namespace {

// Lowering context: builds productions bottom-up, creating fresh
// nonterminals for choices, repeats and character classes.
class Lowering {
 public:
  explicit Lowering(const Grammar& grammar) : grammar_(grammar) {
    // One nonterminal per grammar rule, in rule order, so rule references
    // can be resolved immediately.
    bnf_.num_nonterminals = grammar.NumRules();
  }

  BnfGrammar Run() {
    // Fresh start symbol S' -> <root rule> keeps production 0 canonical.
    std::int32_t start = NewNonterminal();
    bnf_.start = start;
    AddProduction(start,
                  {NonterminalSymbol(static_cast<std::int32_t>(grammar_.RootRule()))});
    for (RuleId r = 0; r < grammar_.NumRules(); ++r) {
      // rhs of rule r: one production per top-level alternative.
      ExprId body = grammar_.GetRule(r).body;
      for (std::vector<BnfGrammar::Symbol>& rhs : LowerToAlternatives(body)) {
        AddProduction(static_cast<std::int32_t>(r), std::move(rhs));
      }
    }
    IndexAndComputeNullable();
    return std::move(bnf_);
  }

 private:
  static BnfGrammar::Symbol TerminalSymbol(std::uint8_t lo, std::uint8_t hi) {
    BnfGrammar::Symbol s;
    s.is_terminal = true;
    s.lo = lo;
    s.hi = hi;
    return s;
  }
  static BnfGrammar::Symbol NonterminalSymbol(std::int32_t nt) {
    BnfGrammar::Symbol s;
    s.nonterminal = nt;
    return s;
  }

  std::int32_t NewNonterminal() { return bnf_.num_nonterminals++; }

  void AddProduction(std::int32_t lhs, std::vector<BnfGrammar::Symbol> rhs) {
    bnf_.productions.push_back({lhs, std::move(rhs)});
  }

  // Lowers `expr` into a single symbol (introducing a fresh nonterminal
  // when the expression is not already atomic).
  BnfGrammar::Symbol LowerToSymbol(ExprId expr_id) {
    const Expr& expr = grammar_.GetExpr(expr_id);
    switch (expr.type) {
      case ExprType::kRuleRef:
        return NonterminalSymbol(static_cast<std::int32_t>(expr.rule_ref));
      case ExprType::kByteString:
        if (expr.bytes.size() == 1) {
          std::uint8_t b = static_cast<std::uint8_t>(expr.bytes[0]);
          return TerminalSymbol(b, b);
        }
        break;
      default:
        break;
    }
    std::int32_t fresh = NewNonterminal();
    for (std::vector<BnfGrammar::Symbol>& rhs : LowerToAlternatives(expr_id)) {
      AddProduction(fresh, std::move(rhs));
    }
    return NonterminalSymbol(fresh);
  }

  // Lowers `expr` into one or more alternative symbol strings.
  std::vector<std::vector<BnfGrammar::Symbol>> LowerToAlternatives(ExprId expr_id) {
    const Expr& expr = grammar_.GetExpr(expr_id);
    switch (expr.type) {
      case ExprType::kEmpty:
        return {{}};
      case ExprType::kByteString: {
        std::vector<BnfGrammar::Symbol> rhs;
        for (char c : expr.bytes) {
          std::uint8_t b = static_cast<std::uint8_t>(c);
          rhs.push_back(TerminalSymbol(b, b));
        }
        return {std::move(rhs)};
      }
      case ExprType::kCharClass: {
        // One alternative per UTF-8 byte-range sequence of each codepoint
        // interval — deliberately NOT sharing the automaton compiler.
        std::vector<std::vector<BnfGrammar::Symbol>> alternatives;
        for (const regex::CodepointRange& range : expr.ranges) {
          for (const ByteRangeSeq& seq : CompileCodepointRange(range.lo, range.hi)) {
            std::vector<BnfGrammar::Symbol> rhs;
            for (const ByteRange& br : seq) rhs.push_back(TerminalSymbol(br.lo, br.hi));
            alternatives.push_back(std::move(rhs));
          }
        }
        XGR_CHECK(!alternatives.empty()) << "empty character class";
        return alternatives;
      }
      case ExprType::kRuleRef:
        return {{NonterminalSymbol(static_cast<std::int32_t>(expr.rule_ref))}};
      case ExprType::kSequence: {
        std::vector<BnfGrammar::Symbol> rhs;
        for (ExprId child : expr.children) rhs.push_back(LowerToSymbol(child));
        return {std::move(rhs)};
      }
      case ExprType::kChoice: {
        std::vector<std::vector<BnfGrammar::Symbol>> alternatives;
        for (ExprId child : expr.children) {
          for (std::vector<BnfGrammar::Symbol>& rhs : LowerToAlternatives(child)) {
            alternatives.push_back(std::move(rhs));
          }
        }
        return alternatives;
      }
      case ExprType::kRepeat: {
        // X{m,n}: emit m mandatory copies then either an unbounded tail
        // nonterminal (n = -1) or n-m optional nested copies.
        BnfGrammar::Symbol child = LowerToSymbol(expr.children[0]);
        std::vector<BnfGrammar::Symbol> rhs(
            static_cast<std::size_t>(expr.min_repeat), child);
        if (expr.max_repeat == -1) {
          std::int32_t star = NewNonterminal();  // star -> eps | child star
          AddProduction(star, {});
          AddProduction(star, {child, NonterminalSymbol(star)});
          rhs.push_back(NonterminalSymbol(star));
        } else if (expr.max_repeat > expr.min_repeat) {
          // opt_k -> eps | child opt_{k-1}, nested for the optional budget.
          std::int32_t next = -1;
          for (std::int32_t k = 0; k < expr.max_repeat - expr.min_repeat; ++k) {
            std::int32_t opt = NewNonterminal();
            AddProduction(opt, {});
            if (next == -1) {
              AddProduction(opt, {child});
            } else {
              AddProduction(opt, {child, NonterminalSymbol(next)});
            }
            next = opt;
          }
          rhs.push_back(NonterminalSymbol(next));
        }
        return {std::move(rhs)};
      }
    }
    XGR_UNREACHABLE();
  }

  void IndexAndComputeNullable() {
    bnf_.productions_of.assign(static_cast<std::size_t>(bnf_.num_nonterminals), {});
    for (std::size_t p = 0; p < bnf_.productions.size(); ++p) {
      bnf_.productions_of[static_cast<std::size_t>(bnf_.productions[p].lhs)]
          .push_back(static_cast<std::int32_t>(p));
    }
    // Fixpoint nullability.
    bnf_.nullable.assign(static_cast<std::size_t>(bnf_.num_nonterminals), false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const BnfGrammar::Production& production : bnf_.productions) {
        if (bnf_.nullable[static_cast<std::size_t>(production.lhs)]) continue;
        bool all_nullable = true;
        for (const BnfGrammar::Symbol& symbol : production.rhs) {
          if (symbol.is_terminal ||
              !bnf_.nullable[static_cast<std::size_t>(symbol.nonterminal)]) {
            all_nullable = false;
            break;
          }
        }
        if (all_nullable) {
          bnf_.nullable[static_cast<std::size_t>(production.lhs)] = true;
          changed = true;
        }
      }
    }
  }

  const Grammar& grammar_;
  BnfGrammar bnf_;
};

// One Earley item: production `prod` with the dot before rhs[dot], started
// at input position `origin`.
struct Item {
  std::int32_t prod;
  std::int32_t dot;
  std::int32_t origin;
  friend bool operator==(const Item&, const Item&) = default;
};

struct ItemHash {
  std::size_t operator()(const Item& item) const {
    std::size_t h = static_cast<std::size_t>(item.prod);
    h = h * 1000003u + static_cast<std::size_t>(item.dot);
    h = h * 1000003u + static_cast<std::size_t>(item.origin);
    return h;
  }
};

}  // namespace

BnfGrammar LowerToBnf(const Grammar& grammar) {
  XGR_CHECK(grammar.RootRule() != kInvalidRule) << "grammar has no root";
  return Lowering(grammar).Run();
}

bool EarleyAccepts(const BnfGrammar& bnf, std::string_view input) {
  const std::int32_t n = static_cast<std::int32_t>(input.size());
  std::vector<std::vector<Item>> sets(static_cast<std::size_t>(n) + 1);
  std::vector<std::unordered_set<Item, ItemHash>> members(
      static_cast<std::size_t>(n) + 1);

  auto add = [&](std::int32_t position, Item item) {
    if (members[static_cast<std::size_t>(position)].insert(item).second) {
      sets[static_cast<std::size_t>(position)].push_back(item);
    }
  };

  for (std::int32_t p : bnf.productions_of[static_cast<std::size_t>(bnf.start)]) {
    add(0, {p, 0, 0});
  }

  for (std::int32_t pos = 0; pos <= n; ++pos) {
    auto& set = sets[static_cast<std::size_t>(pos)];
    for (std::size_t i = 0; i < set.size(); ++i) {
      Item item = set[i];
      const BnfGrammar::Production& production =
          bnf.productions[static_cast<std::size_t>(item.prod)];
      if (item.dot < static_cast<std::int32_t>(production.rhs.size())) {
        const BnfGrammar::Symbol& next =
            production.rhs[static_cast<std::size_t>(item.dot)];
        if (next.is_terminal) {
          // Scanner.
          if (pos < n) {
            std::uint8_t byte = static_cast<std::uint8_t>(input[static_cast<std::size_t>(pos)]);
            if (next.lo <= byte && byte <= next.hi) {
              add(pos + 1, {item.prod, item.dot + 1, item.origin});
            }
          }
        } else {
          // Predictor (+ Aycock–Horspool: skip over nullable predictions).
          for (std::int32_t p :
               bnf.productions_of[static_cast<std::size_t>(next.nonterminal)]) {
            add(pos, {p, 0, pos});
          }
          if (bnf.nullable[static_cast<std::size_t>(next.nonterminal)]) {
            add(pos, {item.prod, item.dot + 1, item.origin});
          }
        }
      } else {
        // Completer: finish `production.lhs` spanning [origin, pos]. Index
        // through `sets` on every step — when origin == pos, add() grows the
        // set being walked and may reallocate it.
        for (std::size_t j = 0; j < sets[static_cast<std::size_t>(item.origin)].size();
             ++j) {
          Item waiting = sets[static_cast<std::size_t>(item.origin)][j];
          const BnfGrammar::Production& wp =
              bnf.productions[static_cast<std::size_t>(waiting.prod)];
          if (waiting.dot < static_cast<std::int32_t>(wp.rhs.size()) &&
              !wp.rhs[static_cast<std::size_t>(waiting.dot)].is_terminal &&
              wp.rhs[static_cast<std::size_t>(waiting.dot)].nonterminal ==
                  production.lhs) {
            add(pos, {waiting.prod, waiting.dot + 1, waiting.origin});
          }
        }
      }
    }
  }

  for (const Item& item : sets[static_cast<std::size_t>(n)]) {
    const BnfGrammar::Production& production =
        bnf.productions[static_cast<std::size_t>(item.prod)];
    if (production.lhs == bnf.start && item.origin == 0 &&
        item.dot == static_cast<std::int32_t>(production.rhs.size())) {
      return true;
    }
  }
  return false;
}

bool EarleyAccepts(const Grammar& grammar, std::string_view input) {
  return EarleyAccepts(LowerToBnf(grammar), input);
}

}  // namespace xgr::grammar
