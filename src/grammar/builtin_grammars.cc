// Builtin grammars used throughout the evaluation (§4.1 of the paper):
//  - Unconstrained JSON straight from ECMA-404.
//  - An XML 1.0 subset: nested elements, attributes, character data,
//    comments and entity/character references (tag-name matching is beyond
//    CFG and, as in the paper, not enforced).
//  - A Python DSL covering control flow (if/elif/else, for, while) and the
//    str/int/float/bool data types, with indentation ignored.
#include "grammar/grammar.h"

namespace xgr::grammar {

const std::string& JsonGrammarEbnf() {
  // Written in the paper's own style (Figure 3): leaf lexical structure is
  // expressed with inline character classes rather than fragment rules, so
  // `string` and `number` are self-contained. (The fragment-heavy style is
  // what rule inlining (§3.4) normalizes toward anyway.)
  static const std::string kText = R"EBNF(
# ECMA-404 JSON
root ::= element
value ::= object | array | string | number | "true" | "false" | "null"
object ::= "{" ws "}" | "{" members "}"
members ::= member ("," member)*
member ::= ws string ws ":" element
array ::= "[" ws "]" | "[" elements "]"
elements ::= element ("," element)*
element ::= ws value ws
string ::= "\"" ([^"\\\x00-\x1F] | "\\" (["\\/bfnrt] | "u" [0-9a-fA-F]{4}))* "\""
number ::= "-"? ("0" | [1-9] [0-9]*) ("." [0-9]+)? ([eE] [-+]? [0-9]+)?
ws ::= [ \t\n\r]*
)EBNF";
  return kText;
}

const std::string& XmlGrammarEbnf() {
  static const std::string kText = R"EBNF(
# XML 1.0 subset
root ::= ws element ws
element ::= "<" name attributes ws ("/>" | ">" content "</" name ">")
attributes ::= (wsp attribute)*
attribute ::= name "=" "\"" attvalue "\""
attvalue ::= (attchar | reference)*
attchar ::= [^"<&]
content ::= (element | chardata | comment | reference)*
chardata ::= [^<&]+
reference ::= "&" ("amp" | "lt" | "gt" | "quot" | "apos" | "#" [0-9]+ | "#x" [0-9a-fA-F]+) ";"
comment ::= "<!--" ([^\-] | "-" [^\-])* "-->"
name ::= [a-zA-Z_:] [a-zA-Z0-9_.:\-]*
wsp ::= [ \t\n\r]+
ws ::= [ \t\n\r]*
)EBNF";
  return kText;
}

const std::string& PythonDslGrammarEbnf() {
  static const std::string kText = R"EBNF(
# Python DSL: control flow + basic data types, indentation ignored (paper 4.1)
root ::= nl* statement+
statement ::= simple_stmt | compound_stmt
simple_stmt ::= small_stmt nl+
small_stmt ::= assignment | return_stmt | "pass" | "break" | "continue" | expression
assignment ::= identifier wso assign_op wso expression
assign_op ::= "=" | "+=" | "-=" | "*=" | "/="
return_stmt ::= "return" (" " expression)?
compound_stmt ::= if_stmt | while_stmt | for_stmt
if_stmt ::= "if " expression ":" suite elif_clause* else_clause?
elif_clause ::= "elif " expression ":" suite
else_clause ::= "else:" suite
while_stmt ::= "while " expression ":" suite
for_stmt ::= "for " identifier " in " expression ":" suite
suite ::= " " small_stmt nl+ | nl+ statement+
expression ::= disjunction
disjunction ::= conjunction (" or " conjunction)*
conjunction ::= inversion (" and " inversion)*
inversion ::= "not " inversion | comparison
comparison ::= sum (wso compare_op wso sum)?
compare_op ::= "==" | "!=" | "<=" | ">=" | "<" | ">" | " in " | " not in "
sum ::= term (wso add_op wso term)*
add_op ::= "+" | "-"
term ::= factor (wso mul_op wso factor)*
mul_op ::= "*" | "/" | "%" | "//"
factor ::= "-" factor | "+" factor | power
power ::= primary ("**" factor)?
primary ::= atom trailer*
trailer ::= "(" wso arguments? wso ")" | "[" wso expression wso "]" | "." identifier
arguments ::= expression ("," wso expression)*
atom ::= identifier | float_lit | int_lit | string_lit | "True" | "False" | "None" | list_lit | "(" expression ")"
list_lit ::= "[" wso (expression ("," wso expression)*)? wso "]"
identifier ::= [a-zA-Z_] [a-zA-Z0-9_]*
int_lit ::= [0-9]+
float_lit ::= [0-9]+ "." [0-9]+
string_lit ::= "\"" dq_char* "\"" | "'" sq_char* "'"
dq_char ::= [^"\\\n] | "\\" [^\n]
sq_char ::= [^'\\\n] | "\\" [^\n]
nl ::= "\n"
wso ::= " "?
)EBNF";
  return kText;
}

const std::string& SqlGrammarEbnf() {
  // SQL subset in canonical form: single spaces, uppercase keywords, explicit
  // AS for aliases. SELECT with JOIN/WHERE/GROUP BY/ORDER BY/LIMIT, INSERT,
  // UPDATE, DELETE; expressions with boolean/comparison/arithmetic operators,
  // LIKE / IN / BETWEEN / IS NULL predicates, aggregate and scalar function
  // calls, qualified column references and '?' parameter placeholders.
  static const std::string kText = R"EBNF(
# SQL subset (canonical spacing)
root ::= statement ";"?
statement ::= select_stmt | insert_stmt | update_stmt | delete_stmt
select_stmt ::= "SELECT " distinct? select_list from_clause? where_clause? group_clause? order_clause? limit_clause?
distinct ::= "DISTINCT "
select_list ::= "*" | result_col ("," wso result_col)*
result_col ::= expression (" AS " identifier)?
from_clause ::= " FROM " table_ref join_clause*
table_ref ::= identifier (" AS " identifier)?
join_clause ::= join_kind table_ref " ON " expression
join_kind ::= " JOIN " | " LEFT JOIN " | " INNER JOIN " | " CROSS JOIN "
where_clause ::= " WHERE " expression
group_clause ::= " GROUP BY " expr_list having_clause?
having_clause ::= " HAVING " expression
order_clause ::= " ORDER BY " order_item ("," wso order_item)*
order_item ::= expression (" ASC" | " DESC")?
limit_clause ::= " LIMIT " int_lit (" OFFSET " int_lit)?
insert_stmt ::= "INSERT INTO " identifier wso "(" wso column_list wso ")" " VALUES " values_row ("," wso values_row)*
values_row ::= "(" wso expr_list wso ")"
column_list ::= identifier ("," wso identifier)*
update_stmt ::= "UPDATE " identifier " SET " set_item ("," wso set_item)* where_clause?
set_item ::= identifier wso "=" wso expression
delete_stmt ::= "DELETE FROM " identifier where_clause?
expression ::= and_expr (" OR " and_expr)*
and_expr ::= not_expr (" AND " not_expr)*
not_expr ::= "NOT " not_expr | predicate
predicate ::= operand predicate_tail?
predicate_tail ::= wso compare_op wso operand | " IS NULL" | " IS NOT NULL" | " LIKE " string_lit | " IN " "(" wso expr_list wso ")" | " BETWEEN " operand " AND " operand
compare_op ::= "=" | "<>" | "!=" | "<=" | ">=" | "<" | ">"
operand ::= term (wso add_op wso term)*
add_op ::= "+" | "-"
term ::= factor (wso mul_op wso factor)*
mul_op ::= "*" | "/" | "%"
factor ::= "-" factor | primary
primary ::= literal | func_call | column_ref | "(" wso expression wso ")" | "?"
func_call ::= func_name "(" wso ("*" | "DISTINCT " expression | expr_list)? wso ")"
func_name ::= "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "UPPER" | "LOWER" | "LENGTH" | "ABS" | "ROUND" | "COALESCE"
column_ref ::= identifier ("." identifier)?
literal ::= float_lit | int_lit | string_lit | "NULL" | "TRUE" | "FALSE"
expr_list ::= expression ("," wso expression)*
identifier ::= [a-zA-Z_] [a-zA-Z0-9_]*
int_lit ::= [0-9]+
float_lit ::= [0-9]+ "." [0-9]+
string_lit ::= "'" ([^'] | "''")* "'"
wso ::= " "?
)EBNF";
  return kText;
}

Grammar BuiltinJsonGrammar() { return ParseEbnfOrThrow(JsonGrammarEbnf()); }
Grammar BuiltinXmlGrammar() { return ParseEbnfOrThrow(XmlGrammarEbnf()); }
Grammar BuiltinPythonDslGrammar() {
  return ParseEbnfOrThrow(PythonDslGrammarEbnf());
}
Grammar BuiltinSqlGrammar() { return ParseEbnfOrThrow(SqlGrammarEbnf()); }

}  // namespace xgr::grammar
