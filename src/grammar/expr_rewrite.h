// Internal iterative expression-walk helpers shared by grammar_transform.cc
// and grammar_optimizer.cc.
//
// Grammars arrive from untrusted EBNF text (and from schema converters that
// mechanically nest deeply), so no traversal in the grammar layer may recurse
// on the C++ call stack. Every walker here drives an explicit stack and
// memoizes per ExprId, which also means DAG-shared subtrees are rewritten
// once and stay shared in the output — a strict improvement over the old
// recursive walkers, which duplicated shared subtrees on every path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grammar/grammar.h"

namespace xgr::grammar::detail {

// Bottom-up memoized rewrite over the expr DAG under `root`.
//
// `fn(ExprId id, std::vector<ExprId> children, bool children_changed)` is
// called exactly once per distinct reachable expr, after all its children
// have been rewritten; `children` holds the rewritten child ids and
// `children_changed` is true iff any differs from the original. `fn` must
// return the rewritten id for the node (return `id` unchanged to keep it).
// `fn` may allocate new exprs in the arena.
template <typename Fn>
ExprId RewriteExprBottomUp(Grammar* grammar, ExprId root, Fn&& fn) {
  std::unordered_map<ExprId, ExprId> done;
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    ExprId id = stack.back();
    if (done.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    // Copy of the child list: `fn` may grow the arena and invalidate refs.
    const std::vector<ExprId> children = grammar->GetExpr(id).children;
    bool ready = true;
    for (ExprId child : children) {
      if (done.count(child) == 0) {
        ready = false;
        stack.push_back(child);
      }
    }
    if (!ready) continue;
    stack.pop_back();
    std::vector<ExprId> rewritten;
    rewritten.reserve(children.size());
    bool changed = false;
    for (ExprId child : children) {
      ExprId r = done.at(child);
      changed = changed || r != child;
      rewritten.push_back(r);
    }
    done.emplace(id, fn(id, std::move(rewritten), changed));
  }
  return done.at(root);
}

// Visits every distinct expr reachable from `root` once (pre-order-ish,
// unspecified order). `fn(ExprId)` must not mutate the arena.
template <typename Fn>
void VisitExprs(const Grammar& grammar, ExprId root, Fn&& fn) {
  std::vector<char> seen(static_cast<std::size_t>(grammar.NumExprs()), 0);
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    ExprId id = stack.back();
    stack.pop_back();
    char& flag = seen[static_cast<std::size_t>(id)];
    if (flag) continue;
    flag = 1;
    fn(id);
    for (ExprId child : grammar.GetExpr(id).children) stack.push_back(child);
  }
}

// Occurrence counts of every rule referenced under `root`, with
// tree-expansion semantics: a reference sitting under a DAG-shared subtree
// counts once per path, mirroring what SubstituteRule / Thompson lowering
// will actually materialize. Counts saturate alongside ExprSize's cap.
std::unordered_map<RuleId, std::int64_t> CountRuleRefs(const Grammar& grammar,
                                                       ExprId root);

// Replaces references to `target` under `expr` with fresh copies of `body`.
// Returns the rewritten expression id (== `expr` when no reference exists).
ExprId SubstituteRule(Grammar* grammar, ExprId expr, RuleId target,
                      ExprId body);

}  // namespace xgr::grammar::detail
