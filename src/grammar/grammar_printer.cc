// EBNF rendering of a Grammar (round-trips through ParseEbnf).
#include <sstream>

#include "grammar/grammar.h"
#include "support/logging.h"
#include "support/string_utils.h"
#include "support/utf8.h"

namespace xgr::grammar {

namespace {

void PrintCodepoint(std::uint32_t cp, std::ostringstream* out) {
  if (cp == '\n') {
    *out << "\\n";
  } else if (cp == '\t') {
    *out << "\\t";
  } else if (cp == '\r') {
    *out << "\\r";
  } else if (cp == '\\' || cp == ']' || cp == '^' || cp == '-' || cp == '[') {
    *out << '\\' << static_cast<char>(cp);
  } else if (cp >= 0x20 && cp < 0x7F) {
    *out << static_cast<char>(cp);
  } else if (cp <= 0xFF) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\x%02X", cp);
    *out << buf;
  } else if (cp <= 0xFFFF) {
    char buf[12];
    std::snprintf(buf, sizeof(buf), "\\u%04X", cp);
    *out << buf;
  } else {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "\\u{%X}", cp);
    *out << buf;
  }
}

// Precedence levels: 0 = choice, 1 = sequence, 2 = postfix/atom.
void PrintExpr(const Grammar& grammar, ExprId expr_id, int parent_level,
               std::ostringstream* out) {
  const Expr& expr = grammar.GetExpr(expr_id);
  auto parenthesize = [&](int level, auto&& body) {
    bool need = level < parent_level;
    if (need) *out << "(";
    body();
    if (need) *out << ")";
  };
  switch (expr.type) {
    case ExprType::kEmpty:
      *out << "\"\"";
      return;
    case ExprType::kByteString:
      *out << '"' << EscapeBytes(expr.bytes) << '"';
      return;
    case ExprType::kCharClass: {
      *out << '[';
      for (const regex::CodepointRange& r : expr.ranges) {
        PrintCodepoint(r.lo, out);
        if (r.hi != r.lo) {
          *out << '-';
          PrintCodepoint(r.hi, out);
        }
      }
      *out << ']';
      return;
    }
    case ExprType::kRuleRef:
      *out << grammar.GetRule(expr.rule_ref).name;
      return;
    case ExprType::kSequence:
      parenthesize(1, [&] {
        for (std::size_t i = 0; i < expr.children.size(); ++i) {
          if (i > 0) *out << ' ';
          PrintExpr(grammar, expr.children[i], 2, out);
        }
      });
      return;
    case ExprType::kChoice:
      parenthesize(0, [&] {
        for (std::size_t i = 0; i < expr.children.size(); ++i) {
          if (i > 0) *out << " | ";
          PrintExpr(grammar, expr.children[i], 1, out);
        }
      });
      return;
    case ExprType::kRepeat: {
      PrintExpr(grammar, expr.children[0], 3, out);  // atoms only unparenthesized
      if (expr.min_repeat == 0 && expr.max_repeat == -1) {
        *out << '*';
      } else if (expr.min_repeat == 1 && expr.max_repeat == -1) {
        *out << '+';
      } else if (expr.min_repeat == 0 && expr.max_repeat == 1) {
        *out << '?';
      } else if (expr.max_repeat == -1) {
        *out << '{' << expr.min_repeat << ",}";
      } else if (expr.min_repeat == expr.max_repeat) {
        *out << '{' << expr.min_repeat << '}';
      } else {
        *out << '{' << expr.min_repeat << ',' << expr.max_repeat << '}';
      }
      return;
    }
  }
  XGR_UNREACHABLE();
}

}  // namespace

std::string Grammar::ToString() const {
  std::ostringstream out;
  for (RuleId r = 0; r < NumRules(); ++r) {
    const Rule& rule = GetRule(r);
    out << rule.name << " ::= ";
    if (rule.body == kInvalidExpr) {
      out << "<unset>";
    } else {
      PrintExpr(*this, rule.body, 0, &out);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace xgr::grammar
