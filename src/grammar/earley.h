// Earley recognizer over grammars — the independent correctness oracle.
//
// The production engine executes grammars through a long pipeline
// (normalization, inlining, Thompson construction, node merging, context
// expansion, persistent-stack execution); this recognizer shares none of
// that code. It lowers the grammar expression trees to plain BNF productions
// whose terminals are byte ranges (codepoint classes are expanded with the
// same UTF-8 range decomposition the automata use, but through a separate
// code path) and runs the textbook Earley algorithm with the
// Aycock–Horspool nullable fix. Differential tests compare it against the
// PDA matcher on random grammars and random inputs.
//
// Complexity is O(n^3 · |G|) — fine for tests, not for serving; the paper's
// point is precisely that naive general parsing is too slow for per-token
// masking.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "grammar/grammar.h"

namespace xgr::grammar {

// A grammar lowered to BNF. Symbols are either terminals (inclusive byte
// ranges) or nonterminal indices. Production 0's lhs is the start symbol.
struct BnfGrammar {
  struct Symbol {
    bool is_terminal = false;
    std::uint8_t lo = 0, hi = 0;     // terminal byte range
    std::int32_t nonterminal = -1;   // nonterminal index
  };
  struct Production {
    std::int32_t lhs = -1;
    std::vector<Symbol> rhs;  // empty = epsilon production
  };
  std::vector<Production> productions;
  std::int32_t num_nonterminals = 0;
  std::int32_t start = 0;

  // Indices of productions per lhs, and nullability per nonterminal
  // (computed by LowerToBnf).
  std::vector<std::vector<std::int32_t>> productions_of;
  std::vector<bool> nullable;
};

// Lowers `grammar` (rooted at its root rule) into BNF productions.
BnfGrammar LowerToBnf(const Grammar& grammar);

// Textbook Earley recognition on the lowered grammar.
bool EarleyAccepts(const BnfGrammar& bnf, std::string_view input);

// Convenience: lower + recognize in one call (lowering is O(|G|); callers
// checking many inputs should lower once).
bool EarleyAccepts(const Grammar& grammar, std::string_view input);

}  // namespace xgr::grammar
