#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::json {

bool Value::AsBool() const {
  XGR_CHECK(IsBool()) << "JSON value is not a bool";
  return bool_;
}

double Value::AsNumber() const {
  XGR_CHECK(IsNumber()) << "JSON value is not a number";
  return number_;
}

bool Value::IsInteger() const {
  if (!IsNumber()) return false;
  return std::floor(number_) == number_ && std::abs(number_) < 9.0e18;
}

std::int64_t Value::AsInteger() const {
  XGR_CHECK(IsInteger()) << "JSON value is not an integer";
  return static_cast<std::int64_t>(number_);
}

const std::string& Value::AsString() const {
  XGR_CHECK(IsString()) << "JSON value is not a string";
  return string_;
}

const Array& Value::AsArray() const {
  XGR_CHECK(IsArray()) << "JSON value is not an array";
  return *array_;
}

const Object& Value::AsObject() const {
  XGR_CHECK(IsObject()) << "JSON value is not an object";
  return *object_;
}

Array& Value::MutableArray() {
  XGR_CHECK(IsArray()) << "JSON value is not an array";
  if (array_.use_count() > 1) array_ = std::make_shared<Array>(*array_);
  return *array_;
}

Object& Value::MutableObject() {
  XGR_CHECK(IsObject()) << "JSON value is not an object";
  if (object_.use_count() > 1) object_ = std::make_shared<Object>(*object_);
  return *object_;
}

const Value* Value::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::kNull: return true;
    case Type::kBool: return a.bool_ == b.bool_;
    case Type::kNumber: return a.number_ == b.number_;
    case Type::kString: return a.string_ == b.string_;
    case Type::kArray: return *a.array_ == *b.array_;
    case Type::kObject: return *a.object_ == *b.object_;
  }
  XGR_UNREACHABLE();
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04X", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double value, std::string* out) {
  if (std::floor(value) == value && std::abs(value) < 9.0e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    *out += buf;
  }
}

void DumpValue(const Value& v, int indent, int depth, std::string* out) {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (v.GetType()) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case Type::kNumber:
      DumpNumber(v.AsNumber(), out);
      return;
    case Type::kString:
      DumpString(v.AsString(), out);
      return;
    case Type::kArray: {
      const Array& arr = v.AsArray();
      if (arr.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        DumpValue(arr[i], indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      const Object& obj = v.AsObject();
      if (obj.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        DumpString(key, out);
        *out += indent >= 0 ? ": " : ":";
        DumpValue(value, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
  XGR_UNREACHABLE();
}

// Recursive-descent parser with explicit depth cap (stack safety on
// adversarial inputs, e.g. deeply nested arrays from an unconstrained model).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult Run() {
    ParseResult result;
    SkipWhitespace();
    std::optional<Value> value = ParseValue(0);
    if (!value.has_value()) {
      result.error = error_;
      return result;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      result.error = Fail("trailing characters after document");
      return result;
    }
    result.value = std::move(value);
    return result;
  }

 private:
  static constexpr int kMaxDepth = 512;

  std::string Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " + message;
    }
    return error_;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("maximum nesting depth exceeded");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't': return ParseKeyword("true", Value(true));
      case 'f': return ParseKeyword("false", Value(false));
      case 'n': return ParseKeyword("null", Value(nullptr));
      default: return ParseNumber();
    }
  }

  std::optional<Value> ParseKeyword(std::string_view keyword, Value value) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      Fail("invalid literal");
      return std::nullopt;
    }
    pos_ += keyword.size();
    return value;
  }

  std::optional<Value> ParseNumber() {
    std::size_t start = pos_;
    if (Consume('-')) {
      // fallthrough: digits must follow
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Fail("invalid number");
      return std::nullopt;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("digit expected after decimal point");
        return std::nullopt;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("digit expected in exponent");
        return std::nullopt;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string literal(text_.substr(start, pos_ - start));
    return Value(std::strtod(literal.c_str(), nullptr));
  }

  std::optional<Value> ParseString() {
    std::optional<std::string> s = ParseRawString();
    if (!s.has_value()) return std::nullopt;
    return Value(std::move(*s));
  }

  std::optional<std::string> ParseRawString() {
    if (!Consume('"')) {
      Fail("'\"' expected");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x80) {
          out.push_back(c);
          continue;
        }
        // Raw multi-byte character: ECMA-404 documents are sequences of
        // Unicode code points, so the bytes must form valid UTF-8 (no
        // truncated, overlong or surrogate encodings).
        DecodedChar decoded = DecodeUtf8(text_, pos_ - 1);
        if (!decoded.ok) {
          Fail("invalid UTF-8 in string");
          return std::nullopt;
        }
        out.append(text_.substr(pos_ - 1, static_cast<std::size_t>(decoded.length)));
        pos_ += static_cast<std::size_t>(decoded.length) - 1;
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
        return std::nullopt;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::optional<std::uint32_t> cp = ParseHex4();
          if (!cp.has_value()) return std::nullopt;
          std::uint32_t codepoint = *cp;
          // Surrogate pair handling.
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              std::optional<std::uint32_t> low = ParseHex4();
              if (!low.has_value()) return std::nullopt;
              if (*low >= 0xDC00 && *low <= 0xDFFF) {
                codepoint = 0x10000 + ((codepoint - 0xD800) << 10) + (*low - 0xDC00);
              } else {
                Fail("invalid low surrogate");
                return std::nullopt;
              }
            } else {
              Fail("unpaired high surrogate");
              return std::nullopt;
            }
          } else if (codepoint >= 0xDC00 && codepoint <= 0xDFFF) {
            Fail("unpaired low surrogate");
            return std::nullopt;
          }
          AppendUtf8(codepoint, &out);
          break;
        }
        default:
          Fail("invalid escape character");
          return std::nullopt;
      }
    }
  }

  std::optional<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return std::nullopt;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        Fail("invalid hex digit in \\u escape");
        return std::nullopt;
      }
    }
    return value;
  }

  std::optional<Value> ParseArray(int depth) {
    Consume('[');
    Array items;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(items));
    while (true) {
      SkipWhitespace();
      std::optional<Value> item = ParseValue(depth + 1);
      if (!item.has_value()) return std::nullopt;
      items.push_back(std::move(*item));
      SkipWhitespace();
      if (Consume(']')) return Value(std::move(items));
      if (!Consume(',')) {
        Fail("',' or ']' expected in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> ParseObject(int depth) {
    Consume('{');
    Object members;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(members));
    while (true) {
      SkipWhitespace();
      std::optional<std::string> key = ParseRawString();
      if (!key.has_value()) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("':' expected in object");
        return std::nullopt;
      }
      SkipWhitespace();
      std::optional<Value> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      members.insert_or_assign(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume('}')) return Value(std::move(members));
      if (!Consume(',')) {
        Fail("',' or '}' expected in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string Value::Dump(int indent) const {
  std::string out;
  DumpValue(*this, indent, 0, &out);
  return out;
}

ParseResult Parse(std::string_view text) { return Parser(text).Run(); }

bool IsValid(std::string_view text) { return Parse(text).ok(); }

}  // namespace xgr::json
