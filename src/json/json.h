// Minimal ECMA-404 JSON library.
//
// Substrate for three things: parsing JSON Schemas fed to the schema→grammar
// converter, generating synthetic datasets, and validating model outputs for
// the Table 4 accuracy experiment. Numbers are stored as double plus the raw
// literal so integer-ness survives round trips.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xgr::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered deterministically, which keeps the
// schema→grammar conversion and dataset generation reproducible.
using Object = std::map<std::string, Value>;

enum class Type : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

// A JSON document node with value semantics.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(double num) : type_(Type::kNumber), number_(num) {}  // NOLINT
  Value(int num)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), number_(static_cast<double>(num)) {}
  Value(std::int64_t num)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), number_(static_cast<double>(num)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(Array a)  // NOLINT(runtime/explicit)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o)  // NOLINT(runtime/explicit)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  Type GetType() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool() const;
  double AsNumber() const;
  // True when the number is integral and fits an int64.
  bool IsInteger() const;
  std::int64_t AsInteger() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;
  Array& MutableArray();
  Object& MutableObject();

  // Object convenience: returns nullptr if absent or not an object.
  const Value* Find(std::string_view key) const;

  // Serializes the document. `indent` < 0 → compact single-line output.
  std::string Dump(int indent = -1) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Containers are shared_ptr so Value stays cheap to copy; all mutation is
  // explicit through MutableArray/MutableObject.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

// Parse outcome; on failure `error` holds a message with byte offset.
struct ParseResult {
  std::optional<Value> value;
  std::string error;
  bool ok() const { return value.has_value(); }
};

// Parses a complete JSON document (trailing whitespace allowed, nothing else).
ParseResult Parse(std::string_view text);

// True iff `text` is a syntactically valid JSON document.
bool IsValid(std::string_view text);

}  // namespace xgr::json
