#include "serialize/serialize.h"

#include <cstring>
#include <utility>
#include <vector>

#include "fsa/fsa.h"
#include "support/array_ref.h"
#include "support/logging.h"

namespace xgr::serialize {

// --- Little-endian byte writer/reader (file-local; named so the friend
// gateways below can take them as parameters) --------------------------------

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void I32Vec(const std::vector<std::int32_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::int32_t x : v) I32(x);
  }
  void I32Vec(const support::ArrayRef<std::int32_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::int32_t x : v) I32(x);
  }
  void U8Vec(const std::vector<std::uint8_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::uint8_t x : v) U8(x);
  }
  void U8Vec(const support::ArrayRef<std::uint8_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::uint8_t x : v) U8(x);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(Bytes(1)[0]); }
  std::uint32_t U32() {
    std::string_view b = Bytes(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
               b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t U64() {
    std::string_view b = Bytes(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
               b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() {
    std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    std::uint32_t n = U32();
    return std::string(Bytes(n));
  }
  std::vector<std::int32_t> I32Vec() {
    std::uint32_t n = U32();
    XGR_CHECK(static_cast<std::size_t>(n) * 4 <= Remaining())
        << "corrupt artifact: vector length " << n << " exceeds payload";
    std::vector<std::int32_t> v(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = I32();
    return v;
  }
  std::vector<std::uint8_t> U8Vec() {
    std::uint32_t n = U32();
    XGR_CHECK(static_cast<std::size_t>(n) <= Remaining())
        << "corrupt artifact: byte-vector length " << n << " exceeds payload";
    std::vector<std::uint8_t> v(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = U8();
    return v;
  }
  std::size_t Remaining() const { return data_.size() - pos_; }
  void ExpectEnd() const {
    XGR_CHECK(pos_ == data_.size())
        << "corrupt artifact: " << Remaining() << " trailing bytes";
  }

 private:
  std::string_view Bytes(std::size_t n) {
    XGR_CHECK(pos_ + n <= data_.size()) << "corrupt artifact: truncated";
    std::string_view view = data_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

namespace {

// --- Envelope -----------------------------------------------------------------

constexpr char kMagic[4] = {'X', 'G', 'R', 'S'};

enum class ArtifactKind : std::uint8_t {
  kGrammar = 1,
  kCompiledGrammar = 2,
  kEngineArtifact = 3,
};

std::uint64_t Fnv1a(std::string_view data,
                    std::uint64_t seed = 0xCBF29CE484222325ull) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string Seal(ArtifactKind kind, std::string payload) {
  Writer envelope;
  for (char c : kMagic) envelope.U8(static_cast<std::uint8_t>(c));
  envelope.U32(kFormatVersion);
  envelope.U8(static_cast<std::uint8_t>(kind));
  envelope.U64(Fnv1a(payload));
  std::string out = envelope.Take();
  out += payload;
  return out;
}

// Validates the envelope and returns the payload view.
std::string_view Open(ArtifactKind kind, std::string_view bytes) {
  constexpr std::size_t kHeader = 4 + 4 + 1 + 8;
  XGR_CHECK(bytes.size() >= kHeader) << "corrupt artifact: too short";
  XGR_CHECK(std::memcmp(bytes.data(), kMagic, 4) == 0)
      << "not an XGrammar artifact (bad magic)";
  Reader header(bytes.substr(4, kHeader - 4));
  std::uint32_t version = header.U32();
  XGR_CHECK(version == kFormatVersion)
      << "unsupported artifact version " << version;
  std::uint8_t stored_kind = header.U8();
  XGR_CHECK(stored_kind == static_cast<std::uint8_t>(kind))
      << "artifact kind mismatch: got " << static_cast<int>(stored_kind);
  std::uint64_t checksum = header.U64();
  std::string_view payload = bytes.substr(kHeader);
  XGR_CHECK(Fnv1a(payload) == checksum) << "artifact checksum mismatch";
  return payload;
}

// --- Grammar payload ------------------------------------------------------------
//
// Layout: rule names first (so references resolve while reading expressions),
// then the expression arena in id order, then rule bodies and the root.

void WriteGrammar(Writer* w, const grammar::Grammar& g) {
  w->I32(g.NumRules());
  for (grammar::RuleId r = 0; r < g.NumRules(); ++r) {
    w->Str(g.GetRule(r).name);
  }
  w->I32(g.NumExprs());
  for (grammar::ExprId e = 0; e < g.NumExprs(); ++e) {
    const grammar::Expr& expr = g.GetExpr(e);
    w->U8(static_cast<std::uint8_t>(expr.type));
    w->Str(expr.bytes);
    w->U32(static_cast<std::uint32_t>(expr.ranges.size()));
    for (const regex::CodepointRange& r : expr.ranges) {
      w->U32(r.lo);
      w->U32(r.hi);
    }
    w->I32(expr.rule_ref);
    for (grammar::ExprId child : expr.children) {
      XGR_CHECK(child < e) << "expression arena is not topologically ordered";
    }
    w->I32Vec(expr.children);
    w->I32(expr.min_repeat);
    w->I32(expr.max_repeat);
  }
  for (grammar::RuleId r = 0; r < g.NumRules(); ++r) {
    w->I32(g.GetRule(r).body);
  }
  w->I32(g.RootRule());
}

grammar::Grammar ReadGrammar(Reader* r) {
  grammar::Grammar g;
  std::int32_t num_rules = r->I32();
  XGR_CHECK(num_rules > 0) << "corrupt artifact: no rules";
  for (std::int32_t i = 0; i < num_rules; ++i) {
    grammar::RuleId id = g.DeclareRule(r->Str());
    XGR_CHECK(id == i) << "corrupt artifact: duplicate rule name";
  }
  std::int32_t num_exprs = r->I32();
  XGR_CHECK(num_exprs >= 0) << "corrupt artifact: negative expr count";
  for (std::int32_t e = 0; e < num_exprs; ++e) {
    auto type = static_cast<grammar::ExprType>(r->U8());
    std::string bytes = r->Str();
    std::uint32_t num_ranges = r->U32();
    std::vector<regex::CodepointRange> ranges;
    ranges.reserve(num_ranges);
    for (std::uint32_t i = 0; i < num_ranges; ++i) {
      std::uint32_t lo = r->U32();
      std::uint32_t hi = r->U32();
      ranges.push_back({lo, hi});
    }
    std::int32_t rule_ref = r->I32();
    std::vector<std::int32_t> children = r->I32Vec();
    for (std::int32_t child : children) {
      XGR_CHECK(child >= 0 && child < e) << "corrupt artifact: bad child id";
    }
    std::int32_t min_repeat = r->I32();
    std::int32_t max_repeat = r->I32();

    // Re-adding in arena order reproduces identical ids (each Add* call
    // appends exactly one expression; the arena never contains repeat{1,1},
    // the one collapsing case).
    grammar::ExprId added = grammar::kInvalidExpr;
    switch (type) {
      case grammar::ExprType::kEmpty:
        added = g.AddEmpty();
        break;
      case grammar::ExprType::kByteString:
        added = g.AddByteString(std::move(bytes));
        break;
      case grammar::ExprType::kCharClass:
        added = g.AddCharClass(std::move(ranges), /*negated=*/false);
        break;
      case grammar::ExprType::kRuleRef:
        XGR_CHECK(rule_ref >= 0 && rule_ref < num_rules)
            << "corrupt artifact: rule reference out of range";
        added = g.AddRuleRef(rule_ref);
        break;
      case grammar::ExprType::kSequence:
        added = g.AddSequence(std::move(children));
        break;
      case grammar::ExprType::kChoice:
        added = g.AddChoice(std::move(children));
        break;
      case grammar::ExprType::kRepeat:
        XGR_CHECK(children.size() == 1) << "corrupt artifact: repeat arity";
        added = g.AddRepeat(children[0], min_repeat, max_repeat);
        break;
    }
    XGR_CHECK(added == e) << "corrupt artifact: expression ids diverged";
  }
  for (std::int32_t i = 0; i < num_rules; ++i) {
    std::int32_t body = r->I32();
    XGR_CHECK(body >= 0 && body < num_exprs) << "corrupt artifact: rule body";
    g.SetRuleBody(i, body);
  }
  std::int32_t root = r->I32();
  XGR_CHECK(root >= 0 && root < num_rules) << "corrupt artifact: root rule";
  g.SetRootRule(root);
  g.Validate();
  return g;
}

// --- FSA payload ------------------------------------------------------------------

void WriteFsa(Writer* w, const fsa::Fsa& automaton) {
  w->I32(automaton.NumStates());
  for (std::int32_t s = 0; s < automaton.NumStates(); ++s) {
    w->U8(automaton.IsAccepting(s) ? 1 : 0);
    const auto& edges = automaton.EdgesFrom(s);
    w->U32(static_cast<std::uint32_t>(edges.size()));
    for (const fsa::Edge& edge : edges) {
      w->U8(static_cast<std::uint8_t>(edge.kind));
      w->U8(edge.min_byte);
      w->U8(edge.max_byte);
      w->I32(edge.rule_ref);
      w->I32(edge.target);
    }
  }
  w->I32(automaton.Start());
}

fsa::Fsa ReadFsa(Reader* r) {
  fsa::Fsa automaton;
  std::int32_t num_states = r->I32();
  XGR_CHECK(num_states >= 0) << "corrupt artifact: negative state count";
  for (std::int32_t s = 0; s < num_states; ++s) automaton.AddState();
  for (std::int32_t s = 0; s < num_states; ++s) {
    automaton.SetAccepting(s, r->U8() != 0);
    std::uint32_t num_edges = r->U32();
    for (std::uint32_t i = 0; i < num_edges; ++i) {
      fsa::Edge edge;
      edge.kind = static_cast<fsa::EdgeKind>(r->U8());
      edge.min_byte = r->U8();
      edge.max_byte = r->U8();
      edge.rule_ref = r->I32();
      edge.target = r->I32();
      XGR_CHECK(edge.target >= 0 && edge.target < num_states)
          << "corrupt artifact: edge target out of range";
      automaton.AddEdge(s, edge);
    }
  }
  std::int32_t start = r->I32();
  if (num_states > 0) automaton.SetStart(start);
  return automaton;
}

}  // namespace

std::uint64_t VocabularyHash(const tokenizer::TokenizerInfo& tokenizer) {
  // Precomputed at TokenizerInfo construction (same FNV-1a spec); rehashing
  // the vocabulary here would put an O(vocab) step on every artifact load.
  return tokenizer.ContentHash();
}

std::string SerializeGrammar(const grammar::Grammar& g) {
  Writer w;
  WriteGrammar(&w, g);
  return Seal(ArtifactKind::kGrammar, w.Take());
}

grammar::Grammar DeserializeGrammar(std::string_view bytes) {
  Reader r(Open(ArtifactKind::kGrammar, bytes));
  grammar::Grammar g = ReadGrammar(&r);
  r.ExpectEnd();
  return g;
}

// Payload writers re-exposed to the gateways (the anonymous-namespace
// versions are file-local; these are defined at the bottom of the file).
void WriteGrammarPayload(Writer* w, const grammar::Grammar& g);
grammar::Grammar ReadGrammarPayload(Reader* r);
void WriteFsaPayload(Writer* w, const fsa::Fsa& automaton);
fsa::Fsa ReadFsaPayload(Reader* r);

}  // namespace xgr::serialize

// --- Private-state gateways (friends of the two classes) -----------------------

namespace xgr::serialize_detail {

struct CompiledGrammarAccess {
  static void Write(serialize::Writer* w, const pda::CompiledGrammar& c) {
    // SourceGrammar(), not grammar_: a trusted flat load defers the AST
    // parse, and re-serializing such an artifact must force it.
    serialize::WriteGrammarPayload(w, c.SourceGrammar());
    w->U8(c.options_.rule_inlining ? 1 : 0);
    w->U8(c.options_.node_merging ? 1 : 0);
    w->U8(c.options_.context_expansion ? 1 : 0);
    // Format v3: the full grammar-optimizer configuration (pass switches +
    // guards). Options participate in the artifact so a cache hit proves the
    // artifact was built the way the caller asked.
    w->U8(c.options_.optimizer.normalize ? 1 : 0);
    w->U8(c.options_.optimizer.epsilon_elimination ? 1 : 0);
    w->U8(c.options_.optimizer.unit_rule_collapse ? 1 : 0);
    w->U8(c.options_.optimizer.rule_inlining ? 1 : 0);
    w->U8(c.options_.optimizer.atom_merging ? 1 : 0);
    w->U8(c.options_.optimizer.fsa_minimization ? 1 : 0);
    w->U8(c.options_.optimizer.dead_rule_elimination ? 1 : 0);
    w->I32(c.options_.optimizer.inline_options.max_inlinee_atoms);
    w->I32(c.options_.optimizer.inline_options.max_result_atoms);
    w->I32(c.options_.optimizer.fsa_max_dfa_states);
    w->I32(c.options_.optimizer.fsa_max_source_atoms);
    w->I32(c.options_.optimizer.fsa_max_result_atoms);
    serialize::WriteFsaPayload(w, c.automaton_);
    w->I32Vec(c.rule_starts_);
    w->I32Vec(c.node_rule_);
    w->U8(c.context_automaton_ != nullptr ? 1 : 0);
    if (c.context_automaton_ != nullptr) {
      serialize::WriteFsaPayload(w, *c.context_automaton_);
      w->I32Vec(c.context_starts_);
    }
    w->I32(c.root_rule_);
  }

  static std::shared_ptr<const pda::CompiledGrammar> Read(serialize::Reader* r) {
    auto compiled = std::shared_ptr<pda::CompiledGrammar>(new pda::CompiledGrammar());
    compiled->grammar_ = serialize::ReadGrammarPayload(r);
    compiled->options_.rule_inlining = r->U8() != 0;
    compiled->options_.node_merging = r->U8() != 0;
    compiled->options_.context_expansion = r->U8() != 0;
    compiled->options_.optimizer.normalize = r->U8() != 0;
    compiled->options_.optimizer.epsilon_elimination = r->U8() != 0;
    compiled->options_.optimizer.unit_rule_collapse = r->U8() != 0;
    compiled->options_.optimizer.rule_inlining = r->U8() != 0;
    compiled->options_.optimizer.atom_merging = r->U8() != 0;
    compiled->options_.optimizer.fsa_minimization = r->U8() != 0;
    compiled->options_.optimizer.dead_rule_elimination = r->U8() != 0;
    compiled->options_.optimizer.inline_options.max_inlinee_atoms = r->I32();
    compiled->options_.optimizer.inline_options.max_result_atoms = r->I32();
    compiled->options_.optimizer.fsa_max_dfa_states = r->I32();
    compiled->options_.optimizer.fsa_max_source_atoms = r->I32();
    compiled->options_.optimizer.fsa_max_result_atoms = r->I32();
    compiled->automaton_ = serialize::ReadFsaPayload(r);
    compiled->rule_starts_ = r->I32Vec();
    compiled->node_rule_ = r->I32Vec();
    XGR_CHECK(static_cast<std::int32_t>(compiled->node_rule_.size()) ==
              compiled->automaton_.NumStates())
        << "corrupt artifact: node-rule table size";
    if (r->U8() != 0) {
      compiled->context_automaton_ =
          std::make_unique<fsa::Fsa>(serialize::ReadFsaPayload(r));
      compiled->context_starts_ = r->I32Vec();
    }
    compiled->root_rule_ = r->I32();
    XGR_CHECK(compiled->root_rule_ >= 0 &&
              compiled->root_rule_ < compiled->grammar_.NumRules())
        << "corrupt artifact: compiled root rule";
    return compiled;
  }
};

// Structural validation of a deserialized ctx sub-trie: the runtime DFS
// indexes these arrays unchecked, so a corrupt (but checksum-colliding or
// hand-edited) artifact must be rejected at load time.
inline void ValidateCtxTrie(const cache::NodeMaskEntry& entry) {
  using TrieAccess = tokenizer::PrefixTrieSliceAccess;
  const auto& edge_bytes = TrieAccess::EdgeBytes(entry.ctx_trie);
  const auto& depths = TrieAccess::Depths(entry.ctx_trie);
  const auto& skips = TrieAccess::Skips(entry.ctx_trie);
  const auto& token_begins = TrieAccess::TokenBegins(entry.ctx_trie);
  auto nodes = static_cast<std::int32_t>(edge_bytes.size());
  XGR_CHECK(depths.size() == edge_bytes.size() && skips.size() == edge_bytes.size())
      << "corrupt artifact: ctx-trie array sizes disagree";
  // Build never produces nodes without tokens (every node's subtree holds at
  // least one terminal), and the per-node loop below indexes token_begins —
  // so an empty ctx list must mean an entirely empty trie.
  XGR_CHECK(entry.context_dependent.empty()
                ? nodes == 0 && token_begins.empty()
                : token_begins.size() == edge_bytes.size() + 1)
      << "corrupt artifact: ctx-trie token-range table size";
  XGR_CHECK(token_begins.empty() ||
            token_begins.back() ==
                static_cast<std::int32_t>(entry.context_dependent.size()))
      << "corrupt artifact: ctx-trie token count";
  for (std::int32_t i = 0; i < nodes; ++i) {
    auto index = static_cast<std::size_t>(i);
    // Preorder depth chain: the first node is a root child and a successor
    // descends at most one level — this is what keeps the DFS's
    // RollbackToDepth targets within the consumed depth.
    XGR_CHECK(depths[index] >= 1 &&
              depths[index] <= (i == 0 ? 1 : depths[index - 1] + 1))
        << "corrupt artifact: ctx-trie depth chain";
    XGR_CHECK(skips[index] > i && skips[index] <= nodes)
        << "corrupt artifact: ctx-trie skip pointer";
    // A cut-off jumps to the skip node after consuming depth-1 bytes, so the
    // skip target may not sit deeper than the pruned node — otherwise the
    // DFS would roll "back" to a depth it never reached.
    XGR_CHECK(skips[index] == nodes ||
              depths[static_cast<std::size_t>(skips[index])] <= depths[index])
        << "corrupt artifact: ctx-trie skip target deeper than source";
    XGR_CHECK(token_begins[index] >= 0 &&
              token_begins[index] <= token_begins[index + 1])
        << "corrupt artifact: ctx-trie token ranges not monotone";
  }
}

struct CacheAccess {
  static void Write(serialize::Writer* w, const cache::AdaptiveTokenMaskCache& c) {
    w->U64(serialize::VocabularyHash(*c.tokenizer_));
    w->U32(static_cast<std::uint32_t>(c.entries_.size()));
    using TrieAccess = tokenizer::PrefixTrieSliceAccess;
    for (const cache::NodeMaskEntry& entry : c.entries_) {
      w->U8(static_cast<std::uint8_t>(entry.kind));
      w->I32Vec(entry.stored);
      w->U32(static_cast<std::uint32_t>(entry.accepted_bits.Size()));
      for (std::size_t i = 0; i < entry.accepted_bits.WordCount(); ++i) {
        w->U64(entry.accepted_bits.Data()[i]);
      }
      w->I32Vec(entry.context_dependent);
      // Ctx sub-trie: the four flat arrays as-is (cheaper to load than to
      // rebuild from context_dependent, and keeps the artifact the single
      // source of truth for what the runtime walks).
      w->U8Vec(TrieAccess::EdgeBytes(entry.ctx_trie));
      w->I32Vec(TrieAccess::Depths(entry.ctx_trie));
      w->I32Vec(TrieAccess::Skips(entry.ctx_trie));
      w->I32Vec(TrieAccess::TokenBegins(entry.ctx_trie));
    }
    const cache::CacheBuildStats& stats = c.stats_;
    w->I64(stats.nodes);
    w->I64(stats.tokens_classified);
    w->I64(stats.ci_accepted);
    w->I64(stats.ci_rejected);
    w->I64(stats.context_dependent);
    w->I64(stats.max_ctx_dependent_per_node);
    w->I64(stats.bytes_checked);
    w->I64(stats.bytes_total);
    w->I64(stats.tokens_pruned);
    w->I64(stats.subtree_cutoffs);
    w->U64(stats.memory_bytes);
    w->U64(stats.full_bitset_bytes);
    // Deliberately not the wall-clock: artifact bytes must be a pure
    // function of (grammar, vocabulary, options) so independent builds are
    // bit-identical — the content-addressed disk tier and the runtime's
    // reproducibility tests depend on it. Loaded artifacts report 0 ("not
    // built in this process"). Field kept for format-v2 layout stability.
    w->F64(0.0);
    for (std::int64_t count : stats.storage_kind_counts) w->I64(count);
  }

  static std::shared_ptr<const cache::AdaptiveTokenMaskCache> Read(
      serialize::Reader* r, std::shared_ptr<const pda::CompiledGrammar> pda,
      std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer) {
    auto cache = std::shared_ptr<cache::AdaptiveTokenMaskCache>(
        new cache::AdaptiveTokenMaskCache());
    std::uint64_t vocab_hash = r->U64();
    XGR_CHECK(vocab_hash == serialize::VocabularyHash(*tokenizer))
        << "engine artifact was built for a different vocabulary";
    cache->pda_ = std::move(pda);
    cache->tokenizer_ = std::move(tokenizer);
    std::uint32_t num_entries = r->U32();
    XGR_CHECK(static_cast<std::int32_t>(num_entries) ==
              cache->pda_->NumNodes())
        << "corrupt artifact: cache entry count";
    cache->entries_.resize(num_entries);
    using TrieAccess = tokenizer::PrefixTrieSliceAccess;
    for (cache::NodeMaskEntry& entry : cache->entries_) {
      entry.kind = static_cast<cache::StorageKind>(r->U8());
      entry.stored = support::ArrayRef<std::int32_t>(r->I32Vec());
      std::uint32_t bits = r->U32();
      DynamicBitset accepted(bits);
      for (std::size_t i = 0; i < accepted.WordCount(); ++i) {
        accepted.MutableData()[i] = r->U64();
      }
      entry.accepted_bits = FrozenBitset(accepted);
      entry.context_dependent = support::ArrayRef<std::int32_t>(r->I32Vec());
      TrieAccess::EdgeBytes(entry.ctx_trie) =
          support::ArrayRef<std::uint8_t>(r->U8Vec());
      TrieAccess::Depths(entry.ctx_trie) =
          support::ArrayRef<std::int32_t>(r->I32Vec());
      TrieAccess::Skips(entry.ctx_trie) =
          support::ArrayRef<std::int32_t>(r->I32Vec());
      TrieAccess::TokenBegins(entry.ctx_trie) =
          support::ArrayRef<std::int32_t>(r->I32Vec());
      ValidateCtxTrie(entry);
    }
    cache::CacheBuildStats& stats = cache->stats_;
    stats.nodes = r->I64();
    stats.tokens_classified = r->I64();
    stats.ci_accepted = r->I64();
    stats.ci_rejected = r->I64();
    stats.context_dependent = r->I64();
    stats.max_ctx_dependent_per_node = r->I64();
    stats.bytes_checked = r->I64();
    stats.bytes_total = r->I64();
    stats.tokens_pruned = r->I64();
    stats.subtree_cutoffs = r->I64();
    stats.memory_bytes = r->U64();
    stats.full_bitset_bytes = r->U64();
    stats.build_seconds = r->F64();
    for (std::int64_t& count : stats.storage_kind_counts) count = r->I64();
    return cache;
  }
};

}  // namespace xgr::serialize_detail

namespace xgr::serialize {

void WriteGrammarPayload(Writer* w, const grammar::Grammar& g) {
  WriteGrammar(w, g);
}
grammar::Grammar ReadGrammarPayload(Reader* r) { return ReadGrammar(r); }
void WriteFsaPayload(Writer* w, const fsa::Fsa& automaton) {
  WriteFsa(w, automaton);
}
fsa::Fsa ReadFsaPayload(Reader* r) { return ReadFsa(r); }

std::string SerializeCompiledGrammar(const pda::CompiledGrammar& compiled) {
  Writer w;
  serialize_detail::CompiledGrammarAccess::Write(&w, compiled);
  return Seal(ArtifactKind::kCompiledGrammar, w.Take());
}

std::shared_ptr<const pda::CompiledGrammar> DeserializeCompiledGrammar(
    std::string_view bytes) {
  Reader r(Open(ArtifactKind::kCompiledGrammar, bytes));
  auto compiled = serialize_detail::CompiledGrammarAccess::Read(&r);
  r.ExpectEnd();
  return compiled;
}

std::string SerializeEngineArtifact(const cache::AdaptiveTokenMaskCache& cache) {
  Writer w;
  serialize_detail::CompiledGrammarAccess::Write(&w, cache.Pda());
  serialize_detail::CacheAccess::Write(&w, cache);
  return Seal(ArtifactKind::kEngineArtifact, w.Take());
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> DeserializeEngineArtifact(
    std::string_view bytes,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer) {
  Reader r(Open(ArtifactKind::kEngineArtifact, bytes));
  auto pda = serialize_detail::CompiledGrammarAccess::Read(&r);
  auto cache = serialize_detail::CacheAccess::Read(&r, std::move(pda),
                                                   std::move(tokenizer));
  r.ExpectEnd();
  return cache;
}

std::string SerializeCompiledGrammarPayload(const pda::CompiledGrammar& compiled) {
  Writer w;
  serialize_detail::CompiledGrammarAccess::Write(&w, compiled);
  return w.Take();
}

std::shared_ptr<const pda::CompiledGrammar> DeserializeCompiledGrammarPayload(
    std::string_view bytes) {
  Reader r(bytes);
  auto compiled = serialize_detail::CompiledGrammarAccess::Read(&r);
  r.ExpectEnd();
  return compiled;
}

void ValidateCtxTrieEntry(const cache::NodeMaskEntry& entry) {
  serialize_detail::ValidateCtxTrie(entry);
}

}  // namespace xgr::serialize
