// Binary serialization of compiled artifacts (deployment substrate).
//
// Grammar compilation plus mask-cache construction is the expensive,
// vocabulary-dependent preprocessing step (§3.1). Deployments that cannot
// afford it at startup — the browser/WASM and mobile targets of Appendix C,
// or serving fleets sharing compiled grammars across processes — persist the
// compiled artifact once and map it back in. This module provides that path:
//
//   * SerializeGrammar / DeserializeGrammar          — grammar AST
//   * SerializeCompiledGrammar / Deserialize...      — PDA + optimizations
//   * SerializeEngineArtifact / Deserialize...       — PDA + token-mask cache
//
// Format: little-endian, versioned envelope ("XGRS", format version, artifact
// kind, FNV-1a payload checksum). Every load validates the envelope and
// checksum and throws xgr::CheckError on mismatch or truncation; the engine
// artifact additionally pins the vocabulary via a content hash so a cache is
// never paired with the wrong tokenizer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::serialize {

// v2: NodeMaskEntry carries its flattened ctx sub-trie (PrefixTrieSlice
// arrays) and CacheBuildStats gained tokens_pruned / subtree_cutoffs.
// v3: CompileOptions carries the grammar-optimizer configuration (pass
// switches, inline caps moved under optimizer, FSA-minimization guards).
inline constexpr std::uint32_t kFormatVersion = 3;

std::string SerializeGrammar(const grammar::Grammar& g);
grammar::Grammar DeserializeGrammar(std::string_view bytes);

std::string SerializeCompiledGrammar(const pda::CompiledGrammar& compiled);
std::shared_ptr<const pda::CompiledGrammar> DeserializeCompiledGrammar(
    std::string_view bytes);

// The full preprocessed engine state: compiled grammar + adaptive token-mask
// cache. `tokenizer` at load time must be the vocabulary the cache was built
// for (checked via a content hash, not just the size).
std::string SerializeEngineArtifact(const cache::AdaptiveTokenMaskCache& cache);
std::shared_ptr<const cache::AdaptiveTokenMaskCache> DeserializeEngineArtifact(
    std::string_view bytes,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer);

// FNV-1a content hash of a vocabulary (token bytes + special ids); the pin
// stored inside engine artifacts.
std::uint64_t VocabularyHash(const tokenizer::TokenizerInfo& tokenizer);

// Envelope-free payload forms used by the flat zero-copy artifact format
// (src/artifact), which embeds the compiled grammar as a nested blob inside
// its own checksummed 64-byte-aligned container.
std::string SerializeCompiledGrammarPayload(const pda::CompiledGrammar& compiled);
std::shared_ptr<const pda::CompiledGrammar> DeserializeCompiledGrammarPayload(
    std::string_view bytes);

// Structural validation of one cache entry's ctx sub-trie (throws CheckError).
// Exposed for the flat-artifact loader, which views arrays in place instead
// of copying and must reject hand-edited or bit-flipped files before the
// runtime DFS indexes them unchecked.
void ValidateCtxTrieEntry(const cache::NodeMaskEntry& entry);

}  // namespace xgr::serialize
