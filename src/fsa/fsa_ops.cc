// Automaton rewriting passes: epsilon elimination, node merging (§3.4),
// unreachable-state pruning, union.
#include <algorithm>
#include <unordered_map>

#include "fsa/fsa.h"
#include "support/logging.h"

namespace xgr::fsa {

namespace {

// Sorts and deduplicates an edge list; order: byte edges by (min, max,
// target), then rule refs, then epsilons. Deterministic output keeps golden
// tests stable.
void NormalizeEdges(std::vector<Edge>* edges) {
  auto key = [](const Edge& e) {
    return std::tuple(static_cast<int>(e.kind), e.min_byte, e.max_byte,
                      e.rule_ref, e.target);
  };
  std::sort(edges->begin(), edges->end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

std::vector<std::vector<std::int32_t>> ComputeEpsilonClosures(const Fsa& fsa) {
  std::int32_t n = fsa.NumStates();
  std::vector<std::vector<std::int32_t>> closures(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) {
    std::fill(visited.begin(), visited.end(), 0);
    std::vector<std::int32_t>& closure = closures[static_cast<std::size_t>(s)];
    closure.push_back(s);
    visited[static_cast<std::size_t>(s)] = 1;
    for (std::size_t i = 0; i < closure.size(); ++i) {
      for (const Edge& e : fsa.EdgesFrom(closure[i])) {
        if (e.kind == EdgeKind::kEpsilon &&
            !visited[static_cast<std::size_t>(e.target)]) {
          visited[static_cast<std::size_t>(e.target)] = 1;
          closure.push_back(e.target);
        }
      }
    }
  }
  return closures;
}

}  // namespace

Fsa PruneUnreachable(const Fsa& fsa, std::vector<std::int32_t>* roots) {
  std::int32_t n = fsa.NumStates();
  std::vector<std::int32_t> remap(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> order;
  auto visit = [&](std::int32_t s) {
    if (remap[static_cast<std::size_t>(s)] == -1) {
      remap[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(order.size());
      order.push_back(s);
    }
  };
  // Rule-ref edges jump to the referenced rule's start state; callers include
  // all rule starts in `roots`, so following target edges here is sufficient.
  for (std::int32_t root : *roots) visit(root);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const Edge& e : fsa.EdgesFrom(order[i])) visit(e.target);
  }

  Fsa result;
  for (std::size_t i = 0; i < order.size(); ++i) result.AddState();
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::int32_t old_id = order[i];
    auto new_id = static_cast<std::int32_t>(i);
    result.SetAccepting(new_id, fsa.IsAccepting(old_id));
    for (Edge e : fsa.EdgesFrom(old_id)) {
      e.target = remap[static_cast<std::size_t>(e.target)];
      result.AddEdge(new_id, e);
    }
    NormalizeEdges(&result.MutableEdgesFrom(new_id));
  }
  for (std::int32_t& root : *roots) root = remap[static_cast<std::size_t>(root)];
  if (fsa.Start() < n && remap[static_cast<std::size_t>(fsa.Start())] != -1) {
    result.SetStart(remap[static_cast<std::size_t>(fsa.Start())]);
  }
  return result;
}

Fsa EliminateEpsilon(const Fsa& fsa, std::vector<std::int32_t>* roots) {
  auto closures = ComputeEpsilonClosures(fsa);
  Fsa result;
  for (std::int32_t s = 0; s < fsa.NumStates(); ++s) result.AddState();
  for (std::int32_t s = 0; s < fsa.NumStates(); ++s) {
    bool accepting = false;
    for (std::int32_t c : closures[static_cast<std::size_t>(s)]) {
      accepting = accepting || fsa.IsAccepting(c);
      for (const Edge& e : fsa.EdgesFrom(c)) {
        if (e.kind != EdgeKind::kEpsilon) result.AddEdge(s, e);
      }
    }
    result.SetAccepting(s, accepting);
    NormalizeEdges(&result.MutableEdgesFrom(s));
  }
  result.SetStart(fsa.Start());
  return PruneUnreachable(result, roots);
}

Fsa MergeEquivalentNodes(const Fsa& input, std::vector<std::int32_t>* roots) {
  Fsa fsa = input;  // working copy mutated in place
  std::vector<char> is_root(static_cast<std::size_t>(fsa.NumStates()), 0);
  for (std::int32_t root : *roots) is_root[static_cast<std::size_t>(root)] = 1;

  constexpr int kMaxIterations = 64;
  for (int iteration = 0; iteration < kMaxIterations; ++iteration) {
    std::int32_t n = fsa.NumStates();
    // In-degree over all edges (rule-ref targets included: those are return
    // positions reached by pops, so they count as entries).
    std::vector<std::int32_t> in_degree(static_cast<std::size_t>(n), 0);
    for (std::int32_t s = 0; s < n; ++s) {
      for (const Edge& e : fsa.EdgesFrom(s)) {
        ++in_degree[static_cast<std::size_t>(e.target)];
      }
    }

    bool changed = false;
    for (std::int32_t s = 0; s < n; ++s) {
      std::vector<Edge>& edges = fsa.MutableEdgesFrom(s);
      NormalizeEdges(&edges);
      // Group consecutive same-label edges (NormalizeEdges sorted by label
      // first, so groups are contiguous).
      for (std::size_t i = 0; i < edges.size();) {
        std::size_t j = i + 1;
        while (j < edges.size() && edges[j].SameLabel(edges[i])) ++j;
        if (j - i >= 2) {
          // Candidate group [i, j): merge targets with in-degree 1 that are
          // neither roots nor the source itself.
          std::int32_t keeper = -1;
          std::vector<std::int32_t> absorbed;
          for (std::size_t k = i; k < j; ++k) {
            std::int32_t t = edges[k].target;
            if (t == s || is_root[static_cast<std::size_t>(t)] ||
                in_degree[static_cast<std::size_t>(t)] != 1) {
              continue;
            }
            if (keeper == -1) {
              keeper = t;
            } else if (t != keeper) {
              absorbed.push_back(t);
            }
          }
          if (!absorbed.empty()) {
            for (std::int32_t t : absorbed) {
              // Move t's out-edges and acceptance into keeper.
              for (const Edge& e : fsa.EdgesFrom(t)) fsa.AddEdge(keeper, e);
              fsa.MutableEdgesFrom(t).clear();
              if (fsa.IsAccepting(t)) fsa.SetAccepting(keeper, true);
              // Redirect the group edge. Other in-edges do not exist
              // (in-degree was 1). Keep in_degree consistent: dedup below can
              // only shrink true in-degrees, so stored values stay safe
              // overestimates, but redirects must be counted exactly.
              for (std::size_t k = i; k < j; ++k) {
                if (edges[k].target == t) {
                  edges[k].target = keeper;
                  --in_degree[static_cast<std::size_t>(t)];
                  ++in_degree[static_cast<std::size_t>(keeper)];
                }
              }
            }
            NormalizeEdges(&fsa.MutableEdgesFrom(keeper));
            NormalizeEdges(&edges);
            changed = true;
            // Restart the grouping for this state: edges changed.
            i = 0;
            continue;
          }
        }
        i = j;
      }
    }
    if (!changed) break;
  }
  return PruneUnreachable(fsa, roots);
}

Fsa UnionFsa(const Fsa& a, const Fsa& b) {
  XGR_CHECK(IsPureByteFsa(a) && IsPureByteFsa(b))
      << "UnionFsa supports pure byte automata only";
  Fsa result;
  std::int32_t start = result.AddState();
  std::int32_t offset_a = result.NumStates();
  for (std::int32_t s = 0; s < a.NumStates(); ++s) result.AddState();
  std::int32_t offset_b = result.NumStates();
  for (std::int32_t s = 0; s < b.NumStates(); ++s) result.AddState();

  auto copy = [&result](const Fsa& src, std::int32_t offset) {
    for (std::int32_t s = 0; s < src.NumStates(); ++s) {
      result.SetAccepting(offset + s, src.IsAccepting(s));
      for (Edge e : src.EdgesFrom(s)) {
        e.target += offset;
        result.AddEdge(offset + s, e);
      }
    }
  };
  copy(a, offset_a);
  copy(b, offset_b);
  result.AddEpsilonEdge(start, offset_a + a.Start());
  result.AddEpsilonEdge(start, offset_b + b.Start());
  result.SetStart(start);
  return result;
}

}  // namespace xgr::fsa
