// Finite-state automaton over bytes, with rule-reference edges.
//
// This is the shared automaton substrate: regex compilation produces pure
// byte FSAs; the grammar compiler produces one FSA per grammar rule whose
// edges are either byte ranges or *rule references* (the PDA variant of
// Appendix A in the paper). Epsilon edges exist transiently during Thompson
// construction and are removed/contracted by the optimization passes in
// fsa_ops.cc.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/array_ref.h"
#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::fsa {

enum class EdgeKind : std::uint8_t {
  kByteRange,  // consumes one byte in [min_byte, max_byte]
  kRuleRef,    // recurses into rule `rule_ref` (PDA push)
  kEpsilon,    // consumes nothing
};

struct Edge {
  EdgeKind kind = EdgeKind::kEpsilon;
  std::uint8_t min_byte = 0;
  std::uint8_t max_byte = 0;
  std::int32_t rule_ref = -1;
  std::int32_t target = -1;

  static Edge ByteRange(std::uint8_t lo, std::uint8_t hi, std::int32_t target) {
    return Edge{EdgeKind::kByteRange, lo, hi, -1, target};
  }
  static Edge RuleRef(std::int32_t rule, std::int32_t target) {
    return Edge{EdgeKind::kRuleRef, 0, 0, rule, target};
  }
  static Edge Epsilon(std::int32_t target) {
    return Edge{EdgeKind::kEpsilon, 0, 0, -1, target};
  }

  // Label equality ignoring the target (used by node merging).
  bool SameLabel(const Edge& other) const {
    return kind == other.kind && min_byte == other.min_byte &&
           max_byte == other.max_byte && rule_ref == other.rule_ref;
  }
  friend bool operator==(const Edge&, const Edge&) = default;
};

// Growable automaton. States are dense int32 ids. Multiple "root" states are
// supported because the grammar compiler places every rule's automaton in one
// shared state space.
//
// Two storage modes share the read API: the growable builder mode
// (vector-of-vectors, every construction/optimization pass) and a frozen CSR
// mode over borrowed storage (FrozenView — the zero-copy artifact loader
// points it straight into an mmap'd file). Frozen automata are immutable;
// the mutators check.
class Fsa {
 public:
  std::int32_t AddState() {
    XGR_DCHECK(!frozen_) << "frozen automaton is immutable";
    edges_.emplace_back();
    accepting_.push_back(false);
    return static_cast<std::int32_t>(edges_.size()) - 1;
  }

  std::int32_t NumStates() const {
    return frozen_ ? num_states_ : static_cast<std::int32_t>(edges_.size());
  }

  void AddEdge(std::int32_t from, Edge edge) {
    XGR_DCHECK(!frozen_) << "frozen automaton is immutable";
    edges_[CheckState(from)].push_back(edge);
  }
  void AddByteEdge(std::int32_t from, std::uint8_t lo, std::uint8_t hi, std::int32_t to) {
    AddEdge(from, Edge::ByteRange(lo, hi, to));
  }
  void AddRuleEdge(std::int32_t from, std::int32_t rule, std::int32_t to) {
    AddEdge(from, Edge::RuleRef(rule, to));
  }
  void AddEpsilonEdge(std::int32_t from, std::int32_t to) {
    AddEdge(from, Edge::Epsilon(to));
  }

  // Adds states/edges matching the byte-range sequence (UTF-8 compilation
  // output) from `from` to `to`.
  void AddByteSeqPath(std::int32_t from, const ByteRangeSeq& seq, std::int32_t to);

  // Adds a literal byte-string path from `from` to `to`.
  void AddLiteralPath(std::int32_t from, const std::string& bytes, std::int32_t to);

  std::span<const Edge> EdgesFrom(std::int32_t state) const {
    auto s = static_cast<std::size_t>(CheckState(state));
    if (frozen_) {
      auto begin = static_cast<std::size_t>(flat_offsets_[s]);
      auto count = static_cast<std::size_t>(flat_offsets_[s + 1]) - begin;
      return {flat_edges_.data() + begin, count};
    }
    return {edges_[s].data(), edges_[s].size()};
  }
  std::vector<Edge>& MutableEdgesFrom(std::int32_t state) {
    XGR_CHECK(!frozen_) << "frozen automaton is immutable";
    return edges_[CheckState(state)];
  }

  bool IsAccepting(std::int32_t state) const {
    auto s = static_cast<std::size_t>(CheckState(state));
    return frozen_ ? flat_accepting_[s] != 0 : accepting_[s];
  }
  void SetAccepting(std::int32_t state, bool value = true) {
    XGR_CHECK(!frozen_) << "frozen automaton is immutable";
    accepting_[static_cast<std::size_t>(CheckState(state))] = value;
  }

  std::int32_t Start() const { return start_; }
  void SetStart(std::int32_t state) {
    XGR_CHECK(!frozen_) << "frozen automaton is immutable";
    start_ = CheckState(state);
  }

  std::size_t TotalEdges() const;

  bool IsFrozen() const { return frozen_; }

  // CSR automaton over borrowed storage: `edge_offsets` (NumStates()+1
  // entries, monotone, offsets into `edges`) and `accepting` (one byte per
  // state). Structural safety is established here once — offset-table shape
  // and every edge target — so readers never bounds-check again; the caller
  // guarantees the storage outlives every copy (the artifact loader parks the
  // mmap keep-alive on the owning CompiledGrammar). Throws CheckError on
  // structurally invalid input.
  static Fsa FrozenView(support::ArrayRef<Edge> edges,
                        support::ArrayRef<std::int32_t> edge_offsets,
                        support::ArrayRef<std::uint8_t> accepting,
                        std::int32_t start);

  // Human-readable dump for debugging / golden tests.
  std::string DebugString() const;

 private:
  std::int32_t CheckState(std::int32_t state) const;

  std::vector<std::vector<Edge>> edges_;
  std::vector<bool> accepting_;
  std::int32_t start_ = 0;
  // Frozen (CSR view) mode.
  bool frozen_ = false;
  std::int32_t num_states_ = 0;
  support::ArrayRef<Edge> flat_edges_;
  support::ArrayRef<std::int32_t> flat_offsets_;
  support::ArrayRef<std::uint8_t> flat_accepting_;
};

// ---------------------------------------------------------------------------
// Optimization / construction passes (fsa_ops.cc)
// ---------------------------------------------------------------------------

// Contracts epsilon edges where safe (paper §3.4 "node merging", epsilon
// case), then eliminates any remaining epsilon edges by closure expansion.
// `roots` are entry points that must survive (rule start states).
// Returns the rewritten automaton and writes the new id of each old root into
// `roots` in place.
Fsa EliminateEpsilon(const Fsa& fsa, std::vector<std::int32_t>* roots);

// Merges sibling states reached from one source via identical labels when
// they have no other in-edges (paper §3.4 node merging). Requires an
// epsilon-free automaton. Applies to fixpoint, then prunes unreachable
// states. Updates `roots` in place.
Fsa MergeEquivalentNodes(const Fsa& fsa, std::vector<std::int32_t>* roots);

// Drops states unreachable from `roots` and renumbers densely.
Fsa PruneUnreachable(const Fsa& fsa, std::vector<std::int32_t>* roots);

// Builds the union automaton: new start state with epsilon edges to both
// starts. Only for single-root automata (regex/suffix FSAs).
Fsa UnionFsa(const Fsa& a, const Fsa& b);

// True if the automaton has no kRuleRef edge (pure byte NFA).
bool IsPureByteFsa(const Fsa& fsa);

// ---------------------------------------------------------------------------
// NFA simulation over pure byte automata (used by context expansion and the
// regex engine before determinization).
// ---------------------------------------------------------------------------

class NfaRunner {
 public:
  // `fsa` must outlive the runner and contain no rule-ref edges.
  explicit NfaRunner(const Fsa& fsa);

  // Resets to the epsilon closure of the start state.
  void Reset();
  // Consumes a byte; returns false when the state set becomes empty (dead).
  bool Advance(std::uint8_t byte);
  bool InAcceptingState() const;
  bool Dead() const { return states_.empty(); }
  const std::vector<std::int32_t>& States() const { return states_; }
  void SetStates(std::vector<std::int32_t> states);

 private:
  void EpsilonClose(std::vector<std::int32_t>* states) const;

  const Fsa& fsa_;
  std::vector<std::int32_t> states_;
  mutable std::vector<char> visited_;  // scratch, sized NumStates
};

// Convenience: whether the pure byte FSA accepts exactly `bytes`.
bool FsaAccepts(const Fsa& fsa, const std::string& bytes);

// Whether some string with prefix `bytes` is accepted (i.e. the state set is
// still alive after consuming `bytes`).
bool FsaAcceptsPrefix(const Fsa& fsa, const std::string& bytes);

}  // namespace xgr::fsa
