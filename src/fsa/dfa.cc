#include "fsa/dfa.h"

#include <algorithm>
#include <bitset>
#include <deque>
#include <map>
#include <queue>
#include <utility>

#include "support/logging.h"

namespace xgr::fsa {

std::int32_t Dfa::Run(const std::string& bytes) const {
  std::int32_t state = start_;
  for (char c : bytes) {
    state = Next(state, static_cast<std::uint8_t>(c));
    if (state == kDead) return kDead;
  }
  return state;
}

bool Dfa::Accepts(const std::string& bytes) const {
  std::int32_t state = Run(bytes);
  return state != kDead && IsAccepting(state);
}

void Dfa::ComputeLiveStates() {
  // Reverse reachability from accepting states.
  std::int32_t n = NumStates();
  std::vector<std::vector<std::int32_t>> reverse(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) {
    for (int b = 0; b < 256; ++b) {
      std::int32_t t = transitions_[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)];
      if (t != kDead) reverse[static_cast<std::size_t>(t)].push_back(s);
    }
  }
  live_.assign(static_cast<std::size_t>(n), false);
  std::queue<std::int32_t> queue;
  for (std::int32_t s = 0; s < n; ++s) {
    if (accepting_[static_cast<std::size_t>(s)]) {
      live_[static_cast<std::size_t>(s)] = true;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    std::int32_t s = queue.front();
    queue.pop();
    for (std::int32_t p : reverse[static_cast<std::size_t>(s)]) {
      if (!live_[static_cast<std::size_t>(p)]) {
        live_[static_cast<std::size_t>(p)] = true;
        queue.push(p);
      }
    }
  }
}

Dfa Determinize(const Fsa& nfa, std::int32_t max_states) {
  XGR_CHECK(IsPureByteFsa(nfa)) << "cannot determinize automaton with rule refs";

  // Epsilon closure helper over the NFA.
  auto close = [&nfa](std::vector<std::int32_t>* states) {
    std::vector<char> visited(static_cast<std::size_t>(nfa.NumStates()), 0);
    for (std::int32_t s : *states) visited[static_cast<std::size_t>(s)] = 1;
    for (std::size_t i = 0; i < states->size(); ++i) {
      for (const Edge& e : nfa.EdgesFrom((*states)[i])) {
        if (e.kind == EdgeKind::kEpsilon &&
            !visited[static_cast<std::size_t>(e.target)]) {
          visited[static_cast<std::size_t>(e.target)] = 1;
          states->push_back(e.target);
        }
      }
    }
    std::sort(states->begin(), states->end());
    states->erase(std::unique(states->begin(), states->end()), states->end());
  };

  Dfa dfa;
  std::map<std::vector<std::int32_t>, std::int32_t> subset_ids;
  std::vector<std::vector<std::int32_t>> subsets;

  auto intern = [&](std::vector<std::int32_t> subset) -> std::int32_t {
    auto [it, inserted] = subset_ids.try_emplace(subset, static_cast<std::int32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      dfa.transitions_.emplace_back();
      dfa.transitions_.back().fill(Dfa::kDead);
      bool accepting = false;
      for (std::int32_t s : subsets.back()) accepting = accepting || nfa.IsAccepting(s);
      dfa.accepting_.push_back(accepting);
      XGR_CHECK(static_cast<std::int32_t>(subsets.size()) <= max_states)
          << "DFA state explosion beyond " << max_states;
    }
    return it->second;
  };

  std::vector<std::int32_t> initial{nfa.Start()};
  close(&initial);
  dfa.start_ = intern(std::move(initial));

  for (std::size_t work = 0; work < subsets.size(); ++work) {
    // Gather the byte transition function of this subset. Instead of scanning
    // 256 bytes × edges, bucket edges by byte via boundary sweeping.
    const std::vector<std::int32_t> subset = subsets[work];  // copy: subsets grows
    struct Interval {
      std::int32_t lo, hi, target;
    };
    std::vector<Interval> intervals;
    for (std::int32_t s : subset) {
      for (const Edge& e : nfa.EdgesFrom(s)) {
        if (e.kind == EdgeKind::kByteRange) {
          intervals.push_back({e.min_byte, e.max_byte, e.target});
        }
      }
    }
    if (intervals.empty()) continue;
    // Boundary sweep: candidate cut points where the active target set changes.
    std::vector<std::int32_t> bounds;
    for (const Interval& iv : intervals) {
      bounds.push_back(iv.lo);
      bounds.push_back(iv.hi + 1);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (std::size_t bi = 0; bi + 1 <= bounds.size(); ++bi) {
      std::int32_t lo = bounds[bi];
      std::int32_t hi = (bi + 1 < bounds.size()) ? bounds[bi + 1] - 1 : 255;
      if (lo > 255) break;
      hi = std::min<std::int32_t>(hi, 255);
      std::vector<std::int32_t> next;
      for (const Interval& iv : intervals) {
        if (iv.lo <= lo && hi <= iv.hi) next.push_back(iv.target);
      }
      if (next.empty()) continue;
      close(&next);
      std::int32_t id = intern(std::move(next));
      for (std::int32_t b = lo; b <= hi; ++b) {
        dfa.transitions_[work][static_cast<std::size_t>(b)] = id;
      }
    }
  }

  dfa.ComputeLiveStates();
  return dfa;
}

Dfa Minimize(const Dfa& dfa) {
  const std::int32_t n = dfa.NumStates();
  XGR_CHECK(n > 0) << "cannot minimize an empty DFA";
  // Complete the transition function with an explicit sink state so kDead
  // participates in refinement like any other target.
  const std::int32_t sink = n;
  const std::int32_t total = n + 1;
  auto next = [&dfa, sink](std::int32_t s, int b) -> std::int32_t {
    if (s == sink) return sink;
    std::int32_t t = dfa.Next(s, static_cast<std::uint8_t>(b));
    return t == Dfa::kDead ? sink : t;
  };

  // CSR inverse transition table: predecessors of target t on byte b live at
  // preds[offset[b*total+t] .. offset[b*total+t+1]).
  std::vector<std::int32_t> offset(static_cast<std::size_t>(256) * total + 1, 0);
  for (std::int32_t s = 0; s < total; ++s) {
    for (int b = 0; b < 256; ++b) {
      ++offset[static_cast<std::size_t>(b) * total + next(s, b) + 1];
    }
  }
  for (std::size_t i = 1; i < offset.size(); ++i) offset[i] += offset[i - 1];
  std::vector<std::int32_t> preds(static_cast<std::size_t>(256) * total);
  {
    std::vector<std::int32_t> cursor(offset.begin(), offset.end() - 1);
    for (std::int32_t s = 0; s < total; ++s) {
      for (int b = 0; b < 256; ++b) {
        std::size_t key = static_cast<std::size_t>(b) * total + next(s, b);
        preds[static_cast<std::size_t>(cursor[key]++)] = s;
      }
    }
  }

  // Initial partition: accepting vs everything else (the sink never accepts).
  std::vector<std::int32_t> block_of(static_cast<std::size_t>(total), 0);
  std::vector<std::vector<std::int32_t>> blocks;
  {
    std::vector<std::int32_t> rest, acc;
    for (std::int32_t s = 0; s < n; ++s) {
      (dfa.IsAccepting(s) ? acc : rest).push_back(s);
    }
    rest.push_back(sink);
    blocks.push_back(std::move(rest));
    if (!acc.empty()) blocks.push_back(std::move(acc));
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      for (std::int32_t s : blocks[bi]) {
        block_of[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(bi);
      }
    }
  }

  // Worklist of (block, byte) splitters. Seeding every initial block on every
  // byte keeps the logic textbook-simple; the smaller-half rule below is what
  // carries the n·log n bound.
  std::deque<std::pair<std::int32_t, int>> work;
  std::vector<std::bitset<256>> queued(blocks.size());
  auto enqueue = [&work, &queued](std::int32_t blk, int b) {
    if (!queued[static_cast<std::size_t>(blk)][static_cast<std::size_t>(b)]) {
      queued[static_cast<std::size_t>(blk)][static_cast<std::size_t>(b)] = true;
      work.emplace_back(blk, b);
    }
  };
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    for (int b = 0; b < 256; ++b) enqueue(static_cast<std::int32_t>(bi), b);
  }

  std::vector<char> in_x(static_cast<std::size_t>(total), 0);
  std::vector<char> touched_mark;
  while (!work.empty()) {
    auto [a, b] = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = false;
    // X = all states whose b-transition lands inside block a.
    std::vector<std::int32_t> x;
    for (std::int32_t t : blocks[static_cast<std::size_t>(a)]) {
      std::size_t key = static_cast<std::size_t>(b) * total + t;
      for (std::int32_t i = offset[key]; i < offset[key + 1]; ++i) {
        x.push_back(preds[static_cast<std::size_t>(i)]);
      }
    }
    if (x.empty()) continue;
    touched_mark.assign(blocks.size(), 0);
    std::vector<std::int32_t> touched;
    for (std::int32_t s : x) {
      in_x[static_cast<std::size_t>(s)] = 1;
      std::int32_t y = block_of[static_cast<std::size_t>(s)];
      if (!touched_mark[static_cast<std::size_t>(y)]) {
        touched_mark[static_cast<std::size_t>(y)] = 1;
        touched.push_back(y);
      }
    }
    for (std::int32_t y : touched) {
      std::vector<std::int32_t> inside, outside;
      for (std::int32_t s : blocks[static_cast<std::size_t>(y)]) {
        (in_x[static_cast<std::size_t>(s)] ? inside : outside).push_back(s);
      }
      if (inside.empty() || outside.empty()) continue;
      // Split y; the smaller half becomes the new block z. Hopcroft's update
      // rule — enqueue (z, c) when (y, c) is pending, else the smaller of the
      // halves — collapses to "always enqueue z" since z IS the smaller half.
      std::int32_t z = static_cast<std::int32_t>(blocks.size());
      bool move_inside = inside.size() <= outside.size();
      blocks[static_cast<std::size_t>(y)] =
          std::move(move_inside ? outside : inside);
      blocks.push_back(std::move(move_inside ? inside : outside));
      queued.emplace_back();
      for (std::int32_t s : blocks[static_cast<std::size_t>(z)]) {
        block_of[static_cast<std::size_t>(s)] = z;
      }
      for (int c = 0; c < 256; ++c) enqueue(z, c);
    }
    for (std::int32_t s : x) in_x[static_cast<std::size_t>(s)] = 0;
  }

  // Emit: BFS-renumber blocks reachable from the start block; the sink's
  // block maps back to kDead.
  const std::int32_t sink_block = block_of[static_cast<std::size_t>(sink)];
  const std::int32_t start_block = block_of[static_cast<std::size_t>(dfa.Start())];
  Dfa out;
  if (start_block == sink_block) {
    // Empty language: a single non-accepting state with no way out.
    out.transitions_.emplace_back();
    out.transitions_.back().fill(Dfa::kDead);
    out.accepting_.push_back(false);
    out.start_ = 0;
    out.ComputeLiveStates();
    return out;
  }
  std::vector<std::int32_t> renum(blocks.size(), -1);
  std::vector<std::int32_t> order{start_block};
  renum[static_cast<std::size_t>(start_block)] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::int32_t rep = blocks[static_cast<std::size_t>(order[i])][0];
    for (int b = 0; b < 256; ++b) {
      std::int32_t tb = block_of[static_cast<std::size_t>(next(rep, b))];
      if (tb == sink_block) continue;
      if (renum[static_cast<std::size_t>(tb)] == -1) {
        renum[static_cast<std::size_t>(tb)] = static_cast<std::int32_t>(order.size());
        order.push_back(tb);
      }
    }
  }
  for (std::int32_t ob : order) {
    std::int32_t rep = blocks[static_cast<std::size_t>(ob)][0];
    out.transitions_.emplace_back();
    auto& row = out.transitions_.back();
    for (int b = 0; b < 256; ++b) {
      std::int32_t tb = block_of[static_cast<std::size_t>(next(rep, b))];
      row[static_cast<std::size_t>(b)] =
          tb == sink_block ? Dfa::kDead : renum[static_cast<std::size_t>(tb)];
    }
    out.accepting_.push_back(dfa.IsAccepting(rep));
  }
  out.start_ = 0;
  out.ComputeLiveStates();
  return out;
}

}  // namespace xgr::fsa
