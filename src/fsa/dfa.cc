#include "fsa/dfa.h"

#include <algorithm>
#include <map>
#include <queue>

#include "support/logging.h"

namespace xgr::fsa {

std::int32_t Dfa::Run(const std::string& bytes) const {
  std::int32_t state = start_;
  for (char c : bytes) {
    state = Next(state, static_cast<std::uint8_t>(c));
    if (state == kDead) return kDead;
  }
  return state;
}

bool Dfa::Accepts(const std::string& bytes) const {
  std::int32_t state = Run(bytes);
  return state != kDead && IsAccepting(state);
}

void Dfa::ComputeLiveStates() {
  // Reverse reachability from accepting states.
  std::int32_t n = NumStates();
  std::vector<std::vector<std::int32_t>> reverse(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) {
    for (int b = 0; b < 256; ++b) {
      std::int32_t t = transitions_[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)];
      if (t != kDead) reverse[static_cast<std::size_t>(t)].push_back(s);
    }
  }
  live_.assign(static_cast<std::size_t>(n), false);
  std::queue<std::int32_t> queue;
  for (std::int32_t s = 0; s < n; ++s) {
    if (accepting_[static_cast<std::size_t>(s)]) {
      live_[static_cast<std::size_t>(s)] = true;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    std::int32_t s = queue.front();
    queue.pop();
    for (std::int32_t p : reverse[static_cast<std::size_t>(s)]) {
      if (!live_[static_cast<std::size_t>(p)]) {
        live_[static_cast<std::size_t>(p)] = true;
        queue.push(p);
      }
    }
  }
}

Dfa Determinize(const Fsa& nfa, std::int32_t max_states) {
  XGR_CHECK(IsPureByteFsa(nfa)) << "cannot determinize automaton with rule refs";

  // Epsilon closure helper over the NFA.
  auto close = [&nfa](std::vector<std::int32_t>* states) {
    std::vector<char> visited(static_cast<std::size_t>(nfa.NumStates()), 0);
    for (std::int32_t s : *states) visited[static_cast<std::size_t>(s)] = 1;
    for (std::size_t i = 0; i < states->size(); ++i) {
      for (const Edge& e : nfa.EdgesFrom((*states)[i])) {
        if (e.kind == EdgeKind::kEpsilon &&
            !visited[static_cast<std::size_t>(e.target)]) {
          visited[static_cast<std::size_t>(e.target)] = 1;
          states->push_back(e.target);
        }
      }
    }
    std::sort(states->begin(), states->end());
    states->erase(std::unique(states->begin(), states->end()), states->end());
  };

  Dfa dfa;
  std::map<std::vector<std::int32_t>, std::int32_t> subset_ids;
  std::vector<std::vector<std::int32_t>> subsets;

  auto intern = [&](std::vector<std::int32_t> subset) -> std::int32_t {
    auto [it, inserted] = subset_ids.try_emplace(subset, static_cast<std::int32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      dfa.transitions_.emplace_back();
      dfa.transitions_.back().fill(Dfa::kDead);
      bool accepting = false;
      for (std::int32_t s : subsets.back()) accepting = accepting || nfa.IsAccepting(s);
      dfa.accepting_.push_back(accepting);
      XGR_CHECK(static_cast<std::int32_t>(subsets.size()) <= max_states)
          << "DFA state explosion beyond " << max_states;
    }
    return it->second;
  };

  std::vector<std::int32_t> initial{nfa.Start()};
  close(&initial);
  dfa.start_ = intern(std::move(initial));

  for (std::size_t work = 0; work < subsets.size(); ++work) {
    // Gather the byte transition function of this subset. Instead of scanning
    // 256 bytes × edges, bucket edges by byte via boundary sweeping.
    const std::vector<std::int32_t> subset = subsets[work];  // copy: subsets grows
    struct Interval {
      std::int32_t lo, hi, target;
    };
    std::vector<Interval> intervals;
    for (std::int32_t s : subset) {
      for (const Edge& e : nfa.EdgesFrom(s)) {
        if (e.kind == EdgeKind::kByteRange) {
          intervals.push_back({e.min_byte, e.max_byte, e.target});
        }
      }
    }
    if (intervals.empty()) continue;
    // Boundary sweep: candidate cut points where the active target set changes.
    std::vector<std::int32_t> bounds;
    for (const Interval& iv : intervals) {
      bounds.push_back(iv.lo);
      bounds.push_back(iv.hi + 1);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (std::size_t bi = 0; bi + 1 <= bounds.size(); ++bi) {
      std::int32_t lo = bounds[bi];
      std::int32_t hi = (bi + 1 < bounds.size()) ? bounds[bi + 1] - 1 : 255;
      if (lo > 255) break;
      hi = std::min<std::int32_t>(hi, 255);
      std::vector<std::int32_t> next;
      for (const Interval& iv : intervals) {
        if (iv.lo <= lo && hi <= iv.hi) next.push_back(iv.target);
      }
      if (next.empty()) continue;
      close(&next);
      std::int32_t id = intern(std::move(next));
      for (std::int32_t b = lo; b <= hi; ++b) {
        dfa.transitions_[work][static_cast<std::size_t>(b)] = id;
      }
    }
  }

  dfa.ComputeLiveStates();
  return dfa;
}

}  // namespace xgr::fsa
