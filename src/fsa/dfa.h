// Deterministic automaton with dense byte transition tables.
//
// Used by the regex engine and the Outlines-like baseline: schemas convert to
// regexes, regexes to NFAs, and the NFA is determinized here so that the
// baseline can precompute a token-indexed transition table per DFA state
// (the strategy of Willard & Louf 2023).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fsa/fsa.h"

namespace xgr::fsa {

class Dfa {
 public:
  static constexpr std::int32_t kDead = -1;

  std::int32_t NumStates() const { return static_cast<std::int32_t>(accepting_.size()); }
  std::int32_t Start() const { return start_; }
  bool IsAccepting(std::int32_t state) const {
    return accepting_[static_cast<std::size_t>(state)];
  }
  // Next state on `byte`, or kDead.
  std::int32_t Next(std::int32_t state, std::uint8_t byte) const {
    return transitions_[static_cast<std::size_t>(state)][byte];
  }

  // Runs the DFA from the start; returns kDead if the input dies.
  std::int32_t Run(const std::string& bytes) const;
  bool Accepts(const std::string& bytes) const;

  // True if some accepting state is reachable from `state` (i.e. the prefix
  // leading here can still be extended to a match). Precomputed.
  bool CanReachAccept(std::int32_t state) const {
    return live_[static_cast<std::size_t>(state)];
  }

 private:
  friend Dfa Determinize(const Fsa& nfa, std::int32_t max_states);
  friend Dfa Minimize(const Dfa& dfa);
  void ComputeLiveStates();

  std::vector<std::array<std::int32_t, 256>> transitions_;
  std::vector<bool> accepting_;
  std::vector<bool> live_;
  std::int32_t start_ = 0;
};

// Subset construction. `nfa` must be a pure byte automaton (epsilon edges
// allowed). Throws if the DFA would exceed `max_states`.
Dfa Determinize(const Fsa& nfa, std::int32_t max_states = 1 << 20);

// Hopcroft minimization: returns the unique (up to renumbering) minimal DFA
// for the same language. Unreachable states are dropped; the result's state 0
// is the start. Partition refinement runs over an explicit sink state so the
// partial transition function (kDead) is handled exactly. Memory is
// O(256 · states) for the inverse transition table — intended for the
// modestly-sized DFAs the grammar optimizer produces, not for automata near
// Determinize's default state cap.
Dfa Minimize(const Dfa& dfa);

}  // namespace xgr::fsa
