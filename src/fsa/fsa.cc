#include "fsa/fsa.h"

#include <sstream>
#include <utility>

#include "support/logging.h"
#include "support/string_utils.h"

namespace xgr::fsa {

void Fsa::AddByteSeqPath(std::int32_t from, const ByteRangeSeq& seq,
                         std::int32_t to) {
  XGR_CHECK(!seq.empty()) << "empty byte-range sequence";
  std::int32_t current = from;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::int32_t next = (i + 1 == seq.size()) ? to : AddState();
    AddByteEdge(current, seq[i].lo, seq[i].hi, next);
    current = next;
  }
}

void Fsa::AddLiteralPath(std::int32_t from, const std::string& bytes,
                         std::int32_t to) {
  if (bytes.empty()) {
    AddEpsilonEdge(from, to);
    return;
  }
  std::int32_t current = from;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto b = static_cast<std::uint8_t>(bytes[i]);
    std::int32_t next = (i + 1 == bytes.size()) ? to : AddState();
    AddByteEdge(current, b, b, next);
    current = next;
  }
}

std::size_t Fsa::TotalEdges() const {
  if (frozen_) return flat_edges_.size();
  std::size_t total = 0;
  for (const auto& edges : edges_) total += edges.size();
  return total;
}

Fsa Fsa::FrozenView(support::ArrayRef<Edge> edges,
                    support::ArrayRef<std::int32_t> edge_offsets,
                    support::ArrayRef<std::uint8_t> accepting,
                    std::int32_t start) {
  auto num_states = static_cast<std::int32_t>(accepting.size());
  XGR_CHECK(num_states > 0) << "frozen automaton: no states";
  XGR_CHECK(edge_offsets.size() == accepting.size() + 1)
      << "frozen automaton: offset table size";
  XGR_CHECK(edge_offsets.front() == 0 &&
            edge_offsets.back() == static_cast<std::int32_t>(edges.size()))
      << "frozen automaton: offset table bounds";
  for (std::size_t i = 1; i < edge_offsets.size(); ++i) {
    XGR_CHECK(edge_offsets[i - 1] <= edge_offsets[i])
        << "frozen automaton: offset table not monotone";
  }
  for (const Edge& e : edges) {
    XGR_CHECK(static_cast<std::uint8_t>(e.kind) <=
              static_cast<std::uint8_t>(EdgeKind::kEpsilon))
        << "frozen automaton: unknown edge kind";
    XGR_CHECK(e.target >= 0 && e.target < num_states)
        << "frozen automaton: edge target out of range";
  }
  XGR_CHECK(start >= 0 && start < num_states)
      << "frozen automaton: start state out of range";
  Fsa fsa;
  fsa.frozen_ = true;
  fsa.num_states_ = num_states;
  fsa.flat_edges_ = std::move(edges);
  fsa.flat_offsets_ = std::move(edge_offsets);
  fsa.flat_accepting_ = std::move(accepting);
  fsa.start_ = start;
  return fsa;
}

std::int32_t Fsa::CheckState(std::int32_t state) const {
  XGR_DCHECK(state >= 0 && state < NumStates()) << "state out of range: " << state;
  return state;
}

std::string Fsa::DebugString() const {
  std::ostringstream out;
  for (std::int32_t s = 0; s < NumStates(); ++s) {
    out << s;
    if (s == start_) out << " (start)";
    if (IsAccepting(s)) out << " (accept)";
    out << ":\n";
    for (const Edge& e : EdgesFrom(s)) {
      switch (e.kind) {
        case EdgeKind::kByteRange:
          if (e.min_byte == e.max_byte) {
            out << "  --[" << EscapeBytes(std::string(1, static_cast<char>(e.min_byte)))
                << "]--> " << e.target << "\n";
          } else {
            out << "  --["
                << EscapeBytes(std::string(1, static_cast<char>(e.min_byte))) << "-"
                << EscapeBytes(std::string(1, static_cast<char>(e.max_byte)))
                << "]--> " << e.target << "\n";
          }
          break;
        case EdgeKind::kRuleRef:
          out << "  --<rule " << e.rule_ref << ">--> " << e.target << "\n";
          break;
        case EdgeKind::kEpsilon:
          out << "  --eps--> " << e.target << "\n";
          break;
      }
    }
  }
  return out.str();
}

bool IsPureByteFsa(const Fsa& fsa) {
  for (std::int32_t s = 0; s < fsa.NumStates(); ++s) {
    for (const Edge& e : fsa.EdgesFrom(s)) {
      if (e.kind == EdgeKind::kRuleRef) return false;
    }
  }
  return true;
}

NfaRunner::NfaRunner(const Fsa& fsa) : fsa_(fsa) {
  visited_.resize(static_cast<std::size_t>(fsa.NumStates()));
  Reset();
}

void NfaRunner::Reset() {
  states_.clear();
  states_.push_back(fsa_.Start());
  EpsilonClose(&states_);
}

void NfaRunner::SetStates(std::vector<std::int32_t> states) {
  states_ = std::move(states);
  EpsilonClose(&states_);
}

void NfaRunner::EpsilonClose(std::vector<std::int32_t>* states) const {
  std::fill(visited_.begin(), visited_.end(), 0);
  for (std::int32_t s : *states) visited_[static_cast<std::size_t>(s)] = 1;
  for (std::size_t i = 0; i < states->size(); ++i) {
    std::int32_t s = (*states)[i];
    for (const Edge& e : fsa_.EdgesFrom(s)) {
      if (e.kind == EdgeKind::kEpsilon && !visited_[static_cast<std::size_t>(e.target)]) {
        visited_[static_cast<std::size_t>(e.target)] = 1;
        states->push_back(e.target);
      }
    }
  }
}

bool NfaRunner::Advance(std::uint8_t byte) {
  std::vector<std::int32_t> next;
  std::fill(visited_.begin(), visited_.end(), 0);
  for (std::int32_t s : states_) {
    for (const Edge& e : fsa_.EdgesFrom(s)) {
      if (e.kind == EdgeKind::kByteRange && e.min_byte <= byte && byte <= e.max_byte) {
        if (!visited_[static_cast<std::size_t>(e.target)]) {
          visited_[static_cast<std::size_t>(e.target)] = 1;
          next.push_back(e.target);
        }
      }
    }
  }
  EpsilonClose(&next);
  states_ = std::move(next);
  return !states_.empty();
}

bool NfaRunner::InAcceptingState() const {
  for (std::int32_t s : states_) {
    if (fsa_.IsAccepting(s)) return true;
  }
  return false;
}

bool FsaAccepts(const Fsa& fsa, const std::string& bytes) {
  NfaRunner runner(fsa);
  for (char c : bytes) {
    if (!runner.Advance(static_cast<std::uint8_t>(c))) return false;
  }
  return runner.InAcceptingState();
}

bool FsaAcceptsPrefix(const Fsa& fsa, const std::string& bytes) {
  NfaRunner runner(fsa);
  for (char c : bytes) {
    if (!runner.Advance(static_cast<std::uint8_t>(c))) return false;
  }
  return true;
}

}  // namespace xgr::fsa
