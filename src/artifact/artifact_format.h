// Flat zero-copy artifact format ("XGR3").
//
// The serialize-v2 envelope ("XGRS"/"XGRK") heap-parses every array on load
// (~1 ms/schema); this format instead stores the adaptive mask cache exactly
// as its in-memory representation — PrefixTrieSlice arrays, stored/ctx token
// lists, bitset words — behind an offset table, so loading is mmap +
// validation + pointer fix-up into non-owning views (support::ArrayRef /
// FrozenBitset). N serving processes mapping the same file share one
// physical page set machine-wide.
//
// Layout (all section offsets 64-byte aligned, file padded to 64 bytes):
//
//   FlatHeader             128 bytes, magic "XGR3"
//   content key            raw bytes (registry content addressing; size 0 =
//                          unkeyed artifact, key check skipped)
//   pda section            FlatPdaHeader + CSR automata (12-byte edge
//                          records, offset tables, accepting bytes) viewed
//                          in place via fsa::Fsa::FrozenView; only the small
//                          grammar AST blob and the per-rule/per-node int32
//                          tables are heap-parsed/copied on load
//   FlatStats              fixed-size numeric CacheBuildStats snapshot
//   entry table            num_entries × FlatEntryRecord
//   data region            per-entry arrays; int32 arrays 4-byte aligned,
//                          bitset words 64-byte (cache-line) aligned
//
// Integrity: `header_checksum` covers the header (checksum fields zeroed);
// `payload_checksum` is a word-wise FNV-1a over [128, file_size). Offsets
// are validated for range + alignment before any view is formed, the vocab
// pin must match the serving tokenizer, and every ctx sub-trie passes the
// same structural validation as the v2 reader — a corrupt file classifies
// as StatusCode::kCorruptArtifact, never a crash.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace xgr::artifact {

inline constexpr char kFlatMagic[4] = {'X', 'G', 'R', '3'};
inline constexpr std::uint32_t kFlatVersion = 1;
inline constexpr std::uint64_t kEndianMarker = 0x0123456789ABCDEFull;
inline constexpr std::size_t kSectionAlign = 64;

// On-disk artifact families that can appear in a registry disk dir. The
// loader sniffs the magic and dispatches: kFlatV3 takes the mmap path,
// kDiskEnvelope the legacy serialize-v2 heap path (version-skew coexistence);
// kSerializeEnvelope is a bare "XGRS" envelope without the disk key wrapper.
enum class ArtifactFormat : std::uint8_t {
  kUnknown = 0,
  kSerializeEnvelope,  // "XGRS"
  kDiskEnvelope,       // "XGRK" (registry v2 disk tier)
  kFlatV3,             // "XGR3" (this format)
};

inline ArtifactFormat SniffArtifactFormat(std::string_view bytes) {
  if (bytes.size() < 4) return ArtifactFormat::kUnknown;
  if (std::memcmp(bytes.data(), kFlatMagic, 4) == 0) return ArtifactFormat::kFlatV3;
  if (std::memcmp(bytes.data(), "XGRK", 4) == 0) return ArtifactFormat::kDiskEnvelope;
  if (std::memcmp(bytes.data(), "XGRS", 4) == 0) return ArtifactFormat::kSerializeEnvelope;
  return ArtifactFormat::kUnknown;
}

struct FlatHeader {
  char magic[4];
  std::uint32_t version;
  std::uint64_t endian_marker;
  std::uint64_t file_size;
  std::uint64_t header_checksum;   // FNV over this struct, checksum fields = 0
  std::uint64_t payload_checksum;  // word-wise FNV over [sizeof(FlatHeader), file_size)
  std::uint64_t vocab_hash;        // serialize::VocabularyHash pin
  std::uint32_t vocab_size;        // bits per bitset entry
  std::uint32_t num_entries;       // == pda->NumNodes()
  std::uint64_t content_key_offset;
  std::uint64_t content_key_size;
  std::uint64_t pda_offset;
  std::uint64_t pda_size;
  std::uint64_t stats_offset;
  std::uint64_t entry_table_offset;
  std::uint8_t reserved[24];
};
static_assert(sizeof(FlatHeader) == 128, "FlatHeader must stay 2 cache lines");

// Header of the pda section (all offsets relative to the section start,
// which itself lands kSectionAlign-aligned in the file). The two automata —
// main and context-expansion — are stored CSR: an edge array of 12-byte
// records matching fsa::Edge's in-memory layout (padding byte zeroed for
// deterministic bytes), a (num_states+1)-entry int32 offset table, and one
// accepting byte per state. The grammar AST rides along as a nested
// serialize-v2 envelope (small), and the per-rule / per-node int32 tables
// are copied out on load (memcpy-cheap); everything else is viewed in place.
struct FlatPdaHeader {
  std::uint32_t num_states;
  std::uint32_t num_edges;
  std::uint32_t num_rules;
  std::uint32_t ctx_num_states;  // 0 when context expansion is disabled
  std::uint32_t ctx_num_edges;
  std::int32_t start_state;
  std::int32_t ctx_start_state;
  std::int32_t root_rule;
  std::uint64_t grammar_offset;  // serialize::SerializeGrammar envelope
  std::uint64_t grammar_size;
  std::uint64_t edges_offset;         // num_edges × sizeof(fsa::Edge)
  std::uint64_t edge_offsets_offset;  // (num_states + 1) × int32
  std::uint64_t accepting_offset;     // num_states × uint8
  std::uint64_t rule_starts_offset;   // num_rules × int32
  std::uint64_t node_rule_offset;     // num_states × int32
  std::uint64_t ctx_edges_offset;
  std::uint64_t ctx_edge_offsets_offset;
  std::uint64_t ctx_accepting_offset;
  std::uint64_t context_starts_offset;  // num_rules × int32; -1 = no suffix
  std::uint8_t has_context;
  // CompileOptions snapshot, same order as the serialize-v2 encoding:
  // rule_inlining, node_merging, context_expansion, then the 7 optimizer
  // pass switches; the 5 ints are the inline/fsa-minimization guards.
  std::uint8_t opt_flags[10];
  std::uint8_t pad;
  std::int32_t opt_ints[5];
  std::uint8_t reserved[8];
};
static_assert(sizeof(FlatPdaHeader) == 160, "FlatPdaHeader layout drifted");

// Offsets are absolute file offsets; a count/size of 0 means the array is
// absent and its offset must be 0.
struct FlatEntryRecord {
  std::uint32_t kind;  // cache::StorageKind
  std::uint32_t reserved;
  std::uint64_t stored_offset;
  std::uint64_t stored_count;
  std::uint64_t bits_offset;  // 64-byte aligned (SIMD word copies)
  std::uint64_t bits_words;
  std::uint64_t bits_size;  // in bits
  std::uint64_t ctx_offset;
  std::uint64_t ctx_count;
  std::uint64_t trie_edge_offset;  // edge_bytes, trie_nodes entries
  std::uint64_t trie_nodes;
  std::uint64_t trie_depths_offset;
  std::uint64_t trie_skips_offset;
  std::uint64_t trie_token_begins_offset;
  std::uint64_t trie_token_begins_count;
};
static_assert(sizeof(FlatEntryRecord) == 112, "FlatEntryRecord layout drifted");

// Fixed-size snapshot of cache::CacheBuildStats (minus the non-serialized
// measurement fields: build_seconds and optimizer_passes, which stay 0/empty
// on loaded artifacts so bytes are a pure function of content).
struct FlatStats {
  std::int64_t nodes;
  std::int64_t tokens_classified;
  std::int64_t ci_accepted;
  std::int64_t ci_rejected;
  std::int64_t context_dependent;
  std::int64_t max_ctx_dependent_per_node;
  std::int64_t bytes_checked;
  std::int64_t bytes_total;
  std::int64_t tokens_pruned;
  std::int64_t subtree_cutoffs;
  std::uint64_t memory_bytes;
  std::uint64_t full_bitset_bytes;
  std::int64_t storage_kind_counts[3];
};
static_assert(sizeof(FlatStats) == 120, "FlatStats layout drifted");

// Word-wise FNV-1a (8 bytes per step instead of 1): ~8× cheaper validation
// on load, which matters because checksum verification is the only O(bytes)
// work left on the mmap ready path. Only defined over whole words — the
// writer pads the file to kSectionAlign.
inline std::uint64_t FnvWords(const std::uint64_t* words, std::size_t count,
                              std::uint64_t seed = 0xCBF29CE484222325ull) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

inline std::uint64_t HeaderChecksum(const FlatHeader& header) {
  FlatHeader copy = header;
  copy.header_checksum = 0;
  copy.payload_checksum = 0;
  std::uint64_t words[sizeof(FlatHeader) / 8];
  std::memcpy(words, &copy, sizeof(copy));
  return FnvWords(words, sizeof(FlatHeader) / 8);
}

inline std::size_t AlignUp(std::size_t n, std::size_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

}  // namespace xgr::artifact
