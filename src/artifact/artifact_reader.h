// Flat "XGR3" artifact loader: mmap + validate + view fix-up. Zero-copy.
//
// Ready time is O(validation), not O(bytes parsed): the mask-cache arrays
// (95% of artifact bytes and of v2 deserialize time) are never copied — the
// returned AdaptiveTokenMaskCache's entries view the mapping directly, and
// the mapping is pinned by the cache's keep-alive (IsMapped() == true).
// Every process mapping the same file shares one physical page set.
//
// Every failure mode — wrong magic/version, truncation, checksum mismatch,
// misaligned or out-of-range offsets, vocab-pin or content-key mismatch,
// structurally invalid ctx tries — throws StatusError(kCorruptArtifact) so
// callers (the registry disk tier) classify and degrade to recompile.
// Fault sites: "artifact.load.open", "artifact.load.validate",
// "artifact.load.fixup".
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "artifact/mapped_file.h"
#include "cache/adaptive_cache.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::artifact {

struct LoadOptions {
  // Non-empty: the artifact's embedded content key must match exactly (the
  // registry's defense against hash-collision file names). Empty: unchecked.
  std::string expect_content_key;
  // Verify the word-wise payload checksum — the only O(bytes) step on the
  // ready path. Leave on except for measurement.
  bool verify_checksum = true;
  // Per-element content validation: every stored/ctx token id in vocabulary,
  // ctx-trie structural invariants, bitset padding bits, per-edge automaton
  // invariants — O(elements stored). Structural checks (header, bounds,
  // alignment, counts, vocab pin) always run regardless. Turn off only for a
  // trusted reopen of an artifact a process on this machine already loaded
  // with full verification (the checksum covers bit-rot; deep validation
  // covers writer logic, which cannot drift between two loads of one file).
  bool deep_validate = true;
};

// Trusted-reopen preset: structural validation only, no O(bytes) checksum and
// no O(elements) content scans. This is the steady-state attach path for the
// Nth process mapping an artifact the first process verified end to end.
inline LoadOptions TrustedReopen() {
  LoadOptions options;
  options.verify_checksum = false;
  options.deep_validate = false;
  return options;
}

// Content key embedded in a flat artifact's header (empty if unkeyed).
// Throws StatusError(kCorruptArtifact) unless `bytes` carries a well-formed
// flat header.
std::string_view PeekContentKey(std::string_view bytes);

// Loads from an existing mapping. The returned cache shares `file` as its
// keep-alive; dropping the cache unmaps (if last reference).
std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifact(
    std::shared_ptr<const MappedFile> file,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options = {});

// Loads from arbitrary bytes kept alive by `backing` (a heap buffer, a test
// string, a foreign mapping). `bytes` must stay valid for the lifetime of
// the returned cache — the views point straight into it.
std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifactBytes(
    std::shared_ptr<const void> backing, std::string_view bytes,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options = {});

// mmap(path) + LoadFlatArtifact. Missing/unmappable file throws
// StatusError(kCorruptArtifact) like any other invalid artifact.
std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifactFile(
    const std::string& path,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options = {});

}  // namespace xgr::artifact
