#include "artifact/flat_pda.h"

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "artifact/artifact_format.h"
#include "fsa/fsa.h"
#include "serialize/serialize.h"
#include "support/array_ref.h"
#include "support/logging.h"
#include "support/status.h"

namespace xgr::artifact_detail {

// The one gateway allowed to assemble a CompiledGrammar around borrowed
// storage (friend of the class).
struct PdaAccess {
  static std::shared_ptr<const pda::CompiledGrammar> Assemble(
      grammar::Grammar grammar,
      std::function<grammar::Grammar()> grammar_parser,
      pda::CompileOptions options, fsa::Fsa automaton,
      std::vector<std::int32_t> rule_starts,
      std::vector<grammar::RuleId> node_rule,
      std::unique_ptr<fsa::Fsa> context_automaton,
      std::vector<std::int32_t> context_starts, grammar::RuleId root_rule,
      std::shared_ptr<const void> backing) {
    auto compiled =
        std::shared_ptr<pda::CompiledGrammar>(new pda::CompiledGrammar());
    compiled->grammar_ = std::move(grammar);
    compiled->grammar_parser_ = std::move(grammar_parser);
    compiled->options_ = options;
    compiled->automaton_ = std::move(automaton);
    compiled->rule_starts_ = std::move(rule_starts);
    compiled->node_rule_ = std::move(node_rule);
    compiled->context_automaton_ = std::move(context_automaton);
    compiled->context_starts_ = std::move(context_starts);
    compiled->root_rule_ = root_rule;
    compiled->backing_ = std::move(backing);
    return compiled;
  }
};

}  // namespace xgr::artifact_detail

namespace xgr::artifact {

namespace {

// The edge records in the file ARE fsa::Edge objects (padding byte zeroed by
// the writer); the loader views them in place. Pin the layout.
static_assert(std::is_trivially_copyable_v<fsa::Edge>, "Edge must be a POD");
static_assert(sizeof(fsa::Edge) == 12, "Edge record layout drifted");
static_assert(offsetof(fsa::Edge, kind) == 0 &&
                  offsetof(fsa::Edge, min_byte) == 1 &&
                  offsetof(fsa::Edge, max_byte) == 2 &&
                  offsetof(fsa::Edge, rule_ref) == 4 &&
                  offsetof(fsa::Edge, target) == 8,
              "Edge record layout drifted");

[[noreturn]] void Corrupt(const std::string& detail) {
  throw StatusError(StatusCode::kCorruptArtifact,
                    "flat artifact: pda section: " + detail);
}

std::uint64_t AppendAligned(std::string* buf, const void* data,
                            std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) return 0;
  buf->resize(AlignUp(buf->size(), alignment), '\0');
  std::uint64_t offset = buf->size();
  buf->append(static_cast<const char*>(data), bytes);
  return offset;
}

// CSR-encodes one automaton: 12-byte edge records (padding zeroed for
// deterministic bytes), (n+1)-entry offset table, accepting bytes.
void AppendFsa(std::string* buf, const fsa::Fsa& fsa,
               std::uint64_t* edges_offset, std::uint64_t* offsets_offset,
               std::uint64_t* accepting_offset, std::uint32_t* num_edges_out) {
  const std::int32_t n = fsa.NumStates();
  std::string edge_bytes;
  std::vector<std::int32_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::uint8_t> accepting(static_cast<std::size_t>(n), 0);
  std::int32_t edge_count = 0;
  for (std::int32_t s = 0; s < n; ++s) {
    offsets[static_cast<std::size_t>(s)] = edge_count;
    for (const fsa::Edge& e : fsa.EdgesFrom(s)) {
      char rec[sizeof(fsa::Edge)] = {};
      rec[0] = static_cast<char>(static_cast<std::uint8_t>(e.kind));
      rec[1] = static_cast<char>(e.min_byte);
      rec[2] = static_cast<char>(e.max_byte);
      std::memcpy(rec + 4, &e.rule_ref, sizeof(e.rule_ref));
      std::memcpy(rec + 8, &e.target, sizeof(e.target));
      edge_bytes.append(rec, sizeof(rec));
      ++edge_count;
    }
    accepting[static_cast<std::size_t>(s)] = fsa.IsAccepting(s) ? 1 : 0;
  }
  offsets[static_cast<std::size_t>(n)] = edge_count;
  *edges_offset =
      AppendAligned(buf, edge_bytes.data(), edge_bytes.size(), kSectionAlign);
  *offsets_offset =
      AppendAligned(buf, offsets.data(),
                    offsets.size() * sizeof(std::int32_t), kSectionAlign);
  *accepting_offset =
      AppendAligned(buf, accepting.data(), accepting.size(), kSectionAlign);
  *num_edges_out = static_cast<std::uint32_t>(edge_count);
}

// Section-relative counterpart of the reader's RangeArray: in range, aligned,
// never aliasing the section header; zero-count arrays encode as offset 0.
template <typename T>
const T* Range(std::string_view bytes, std::uint64_t offset,
               std::uint64_t count, std::uint64_t alignment, const char* what) {
  if (count == 0) {
    if (offset != 0) Corrupt(std::string(what) + ": nonzero offset for empty array");
    return nullptr;
  }
  if (count > bytes.size() / sizeof(T)) {
    Corrupt(std::string(what) + ": count exceeds section");
  }
  std::uint64_t size = count * sizeof(T);
  if (offset < sizeof(FlatPdaHeader) || offset % alignment != 0 ||
      offset > bytes.size() || size > bytes.size() - offset) {
    Corrupt(std::string(what) + ": offset out of range or misaligned");
  }
  return reinterpret_cast<const T*>(bytes.data() + offset);
}

fsa::Fsa LoadFrozenFsa(std::string_view bytes, std::uint64_t edges_offset,
                       std::uint32_t num_edges,
                       std::uint64_t edge_offsets_offset,
                       std::uint64_t accepting_offset, std::uint32_t num_states,
                       std::int32_t start, const char* what) {
  const auto* edges =
      Range<fsa::Edge>(bytes, edges_offset, num_edges, 4, what);
  const auto* offsets = Range<std::int32_t>(
      bytes, edge_offsets_offset, std::uint64_t{num_states} + 1, 4, what);
  const auto* accepting =
      Range<std::uint8_t>(bytes, accepting_offset, num_states, 1, what);
  try {
    return fsa::Fsa::FrozenView(
        support::ArrayRef<fsa::Edge>::View(edges, num_edges),
        support::ArrayRef<std::int32_t>::View(
            offsets, static_cast<std::size_t>(num_states) + 1),
        support::ArrayRef<std::uint8_t>::View(accepting, num_states), start);
  } catch (const CheckError& e) {
    Corrupt(std::string(what) + ": " + e.what());
  }
}

}  // namespace

std::string BuildFlatPdaSection(const pda::CompiledGrammar& pda) {
  std::string grammar_blob = serialize::SerializeGrammar(pda.SourceGrammar());
  const std::int32_t num_rules = pda.NumRules();
  const std::int32_t num_states = pda.NumNodes();

  std::string buf(sizeof(FlatPdaHeader), '\0');
  FlatPdaHeader header{};
  header.num_states = static_cast<std::uint32_t>(num_states);
  header.num_rules = static_cast<std::uint32_t>(num_rules);
  header.start_state = pda.Automaton().Start();
  header.root_rule = pda.RootRule();

  header.grammar_offset = AppendAligned(&buf, grammar_blob.data(),
                                        grammar_blob.size(), kSectionAlign);
  header.grammar_size = grammar_blob.size();

  AppendFsa(&buf, pda.Automaton(), &header.edges_offset,
            &header.edge_offsets_offset, &header.accepting_offset,
            &header.num_edges);

  std::vector<std::int32_t> rule_starts(static_cast<std::size_t>(num_rules));
  for (std::int32_t r = 0; r < num_rules; ++r) {
    rule_starts[static_cast<std::size_t>(r)] = pda.RuleStartNode(r);
  }
  header.rule_starts_offset =
      AppendAligned(&buf, rule_starts.data(),
                    rule_starts.size() * sizeof(std::int32_t), kSectionAlign);

  std::vector<std::int32_t> node_rule(static_cast<std::size_t>(num_states));
  for (std::int32_t n = 0; n < num_states; ++n) {
    node_rule[static_cast<std::size_t>(n)] = pda.NodeRule(n);
  }
  header.node_rule_offset =
      AppendAligned(&buf, node_rule.data(),
                    node_rule.size() * sizeof(std::int32_t), kSectionAlign);

  if (pda.ContextAutomaton() != nullptr) {
    const fsa::Fsa& ctx = *pda.ContextAutomaton();
    header.has_context = 1;
    header.ctx_num_states = static_cast<std::uint32_t>(ctx.NumStates());
    header.ctx_start_state = ctx.Start();
    AppendFsa(&buf, ctx, &header.ctx_edges_offset,
              &header.ctx_edge_offsets_offset, &header.ctx_accepting_offset,
              &header.ctx_num_edges);
    std::vector<std::int32_t> ctx_starts(static_cast<std::size_t>(num_rules));
    for (std::int32_t r = 0; r < num_rules; ++r) {
      ctx_starts[static_cast<std::size_t>(r)] = pda.ContextStart(r);
    }
    header.context_starts_offset =
        AppendAligned(&buf, ctx_starts.data(),
                      ctx_starts.size() * sizeof(std::int32_t), kSectionAlign);
  }

  const pda::CompileOptions& o = pda.Options();
  const bool flags[10] = {o.rule_inlining,
                          o.node_merging,
                          o.context_expansion,
                          o.optimizer.normalize,
                          o.optimizer.epsilon_elimination,
                          o.optimizer.unit_rule_collapse,
                          o.optimizer.rule_inlining,
                          o.optimizer.atom_merging,
                          o.optimizer.fsa_minimization,
                          o.optimizer.dead_rule_elimination};
  for (int i = 0; i < 10; ++i) header.opt_flags[i] = flags[i] ? 1 : 0;
  header.opt_ints[0] = o.optimizer.inline_options.max_inlinee_atoms;
  header.opt_ints[1] = o.optimizer.inline_options.max_result_atoms;
  header.opt_ints[2] = o.optimizer.fsa_max_dfa_states;
  header.opt_ints[3] = o.optimizer.fsa_max_source_atoms;
  header.opt_ints[4] = o.optimizer.fsa_max_result_atoms;

  buf.resize(AlignUp(buf.size(), kSectionAlign), '\0');
  std::memcpy(buf.data(), &header, sizeof(header));
  return buf;
}

std::shared_ptr<const pda::CompiledGrammar> LoadFlatPdaSection(
    std::string_view bytes, std::shared_ptr<const void> backing,
    bool deep_validate) {
  if (bytes.size() < sizeof(FlatPdaHeader)) Corrupt("shorter than header");
  FlatPdaHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));

  const auto num_states = static_cast<std::int32_t>(header.num_states);
  const auto num_rules = static_cast<std::int32_t>(header.num_rules);
  if (num_states <= 0 || num_rules <= 0) Corrupt("empty automaton");
  if (header.root_rule < 0 || header.root_rule >= num_rules) {
    Corrupt("root rule out of range");
  }

  fsa::Fsa automaton = LoadFrozenFsa(
      bytes, header.edges_offset, header.num_edges, header.edge_offsets_offset,
      header.accepting_offset, header.num_states, header.start_state,
      "main automaton");
  if (deep_validate) {
    for (const fsa::Edge& e : support::ArrayRef<fsa::Edge>::View(
             Range<fsa::Edge>(bytes, header.edges_offset, header.num_edges, 4,
                              "main automaton"),
             header.num_edges)) {
      if (e.kind == fsa::EdgeKind::kRuleRef &&
          (e.rule_ref < 0 || e.rule_ref >= num_rules)) {
        Corrupt("rule-ref edge out of range");
      }
    }
  }

  const auto* rule_starts_data = Range<std::int32_t>(
      bytes, header.rule_starts_offset, header.num_rules, 4, "rule starts");
  std::vector<std::int32_t> rule_starts(rule_starts_data,
                                        rule_starts_data + num_rules);
  const auto* node_rule_data = Range<std::int32_t>(
      bytes, header.node_rule_offset, header.num_states, 4, "node-rule table");
  std::vector<grammar::RuleId> node_rule(node_rule_data,
                                         node_rule_data + num_states);
  if (deep_validate) {
    for (std::int32_t s : rule_starts) {
      if (s < 0 || s >= num_states) Corrupt("rule start out of range");
    }
    for (grammar::RuleId r : node_rule) {
      if (r < 0 || r >= num_rules) Corrupt("node rule out of range");
    }
  }

  std::unique_ptr<fsa::Fsa> context_automaton;
  std::vector<std::int32_t> context_starts;
  if (header.has_context != 0) {
    const auto ctx_states = static_cast<std::int32_t>(header.ctx_num_states);
    if (ctx_states <= 0) Corrupt("context automaton without states");
    context_automaton = std::make_unique<fsa::Fsa>(LoadFrozenFsa(
        bytes, header.ctx_edges_offset, header.ctx_num_edges,
        header.ctx_edge_offsets_offset, header.ctx_accepting_offset,
        header.ctx_num_states, header.ctx_start_state, "context automaton"));
    // NfaRunner simulation requires a pure byte/epsilon automaton.
    if (deep_validate) {
      for (const fsa::Edge& e : support::ArrayRef<fsa::Edge>::View(
               Range<fsa::Edge>(bytes, header.ctx_edges_offset,
                                header.ctx_num_edges, 4, "context automaton"),
               header.ctx_num_edges)) {
        if (e.kind == fsa::EdgeKind::kRuleRef) {
          Corrupt("rule-ref edge in context automaton");
        }
      }
    }
    const auto* starts_data =
        Range<std::int32_t>(bytes, header.context_starts_offset,
                            header.num_rules, 4, "context starts");
    context_starts.assign(starts_data, starts_data + num_rules);
    if (deep_validate) {
      for (std::int32_t s : context_starts) {
        if (s < -1 || s >= ctx_states) Corrupt("context start out of range");
      }
    }
  } else if (header.ctx_num_states != 0 || header.ctx_num_edges != 0 ||
             header.ctx_edges_offset != 0 || header.context_starts_offset != 0) {
    Corrupt("context fields set without context automaton");
  }

  const char* grammar_data = Range<char>(bytes, header.grammar_offset,
                                         header.grammar_size, 1, "grammar blob");
  const std::string_view grammar_blob(
      grammar_data == nullptr ? "" : grammar_data,
      static_cast<std::size_t>(header.grammar_size));
  grammar::Grammar grammar;
  std::function<grammar::Grammar()> grammar_parser;
  if (deep_validate) {
    try {
      grammar = serialize::DeserializeGrammar(grammar_blob);
    } catch (const CheckError& e) {
      Corrupt(std::string("grammar blob rejected: ") + e.what());
    }
    if (grammar.NumRules() != num_rules) {
      Corrupt("rule count disagrees with grammar");
    }
  } else {
    // Trusted reopen: the AST parse (the single largest cost left on the
    // ready path) is deferred to the first SourceGrammar() call. The lambda
    // owns the backing so the blob view outlives any caller ordering.
    grammar_parser = [backing, grammar_blob] {
      (void)backing;
      return serialize::DeserializeGrammar(grammar_blob);
    };
  }

  pda::CompileOptions options;
  options.rule_inlining = header.opt_flags[0] != 0;
  options.node_merging = header.opt_flags[1] != 0;
  options.context_expansion = header.opt_flags[2] != 0;
  options.optimizer.normalize = header.opt_flags[3] != 0;
  options.optimizer.epsilon_elimination = header.opt_flags[4] != 0;
  options.optimizer.unit_rule_collapse = header.opt_flags[5] != 0;
  options.optimizer.rule_inlining = header.opt_flags[6] != 0;
  options.optimizer.atom_merging = header.opt_flags[7] != 0;
  options.optimizer.fsa_minimization = header.opt_flags[8] != 0;
  options.optimizer.dead_rule_elimination = header.opt_flags[9] != 0;
  options.optimizer.inline_options.max_inlinee_atoms = header.opt_ints[0];
  options.optimizer.inline_options.max_result_atoms = header.opt_ints[1];
  options.optimizer.fsa_max_dfa_states = header.opt_ints[2];
  options.optimizer.fsa_max_source_atoms = header.opt_ints[3];
  options.optimizer.fsa_max_result_atoms = header.opt_ints[4];

  return artifact_detail::PdaAccess::Assemble(
      std::move(grammar), std::move(grammar_parser), options,
      std::move(automaton), std::move(rule_starts), std::move(node_rule),
      std::move(context_automaton), std::move(context_starts),
      header.root_rule, std::move(backing));
}

}  // namespace xgr::artifact
