// Flat (offset-based) encoding of a pda::CompiledGrammar for the "XGR3"
// artifact. The two automata are stored CSR and loaded as fsa::Fsa frozen
// views pointing straight into the backing bytes — no per-state allocations,
// no edge parsing. See FlatPdaHeader in artifact_format.h for the layout.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "pda/compiled_grammar.h"

namespace xgr::artifact {

// Deterministic bytes (padding zeroed); internal offsets keep every array
// 64-byte aligned relative to the section start.
std::string BuildFlatPdaSection(const pda::CompiledGrammar& pda);

// Validates and assembles a view-backed CompiledGrammar. `bytes` must stay
// valid for the lifetime of the result — `backing` is parked on it as the
// keep-alive. Structurally invalid input throws
// StatusError(kCorruptArtifact); it never crashes. `deep_validate=false`
// skips the O(edges + tables) per-element scans (trusted reopen, see
// LoadOptions::deep_validate); header/bounds/alignment checks always run.
std::shared_ptr<const pda::CompiledGrammar> LoadFlatPdaSection(
    std::string_view bytes, std::shared_ptr<const void> backing,
    bool deep_validate = true);

}  // namespace xgr::artifact
