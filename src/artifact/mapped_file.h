// Read-only shared memory mapping of a file (POSIX mmap, MAP_SHARED).
//
// The mapping is the machine-wide sharing primitive of the artifact layer:
// every process that maps the same artifact file references the same
// physical page set. A shared_ptr<const MappedFile> is stored as the
// keep-alive (`backing_`) of any AdaptiveTokenMaskCache whose arrays view
// the mapping, so the pages outlive every matcher that reads them.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace xgr::artifact {

class MappedFile {
 public:
  // Maps `path` read-only. Returns nullptr if the file cannot be opened,
  // stat-ed, or mapped (the caller decides whether that is a cache miss or
  // an error). A zero-length file maps successfully with data() == nullptr.
  static std::shared_ptr<const MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  std::size_t size() const { return size_; }
  std::string_view bytes() const { return {data(), size_}; }

 private:
  MappedFile(void* data, std::size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace xgr::artifact
