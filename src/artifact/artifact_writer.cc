#include "artifact/artifact_writer.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "artifact/artifact_format.h"
#include "artifact/flat_pda.h"
#include "serialize/serialize.h"
#include "support/fault_point.h"
#include "support/status.h"
#include "tokenizer/token_trie.h"

namespace xgr::artifact {

namespace {

// Appends `bytes` at the next `alignment` boundary (zero padding in between)
// and returns the absolute offset it landed at — 0 when `bytes` is empty, so
// absent arrays encode as {offset 0, count 0}.
std::uint64_t AppendAligned(std::string* buf, const void* data,
                            std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) return 0;
  buf->resize(AlignUp(buf->size(), alignment), '\0');
  std::uint64_t offset = buf->size();
  buf->append(static_cast<const char*>(data), bytes);
  return offset;
}

}  // namespace

std::string BuildFlatArtifact(const cache::AdaptiveTokenMaskCache& cache,
                              std::string_view content_key) {
  using TrieAccess = tokenizer::PrefixTrieSliceAccess;

  std::string pda_blob = BuildFlatPdaSection(cache.Pda());
  auto num_entries = static_cast<std::uint32_t>(cache.Pda().NumNodes());

  std::string buf(sizeof(FlatHeader), '\0');
  FlatHeader header{};
  std::memcpy(header.magic, kFlatMagic, sizeof(kFlatMagic));
  header.version = kFlatVersion;
  header.endian_marker = kEndianMarker;
  header.vocab_hash = serialize::VocabularyHash(cache.Tokenizer());
  header.vocab_size = static_cast<std::uint32_t>(cache.Tokenizer().VocabSize());
  header.num_entries = num_entries;

  header.content_key_offset = AppendAligned(&buf, content_key.data(),
                                            content_key.size(), kSectionAlign);
  header.content_key_size = content_key.size();
  header.pda_offset =
      AppendAligned(&buf, pda_blob.data(), pda_blob.size(), kSectionAlign);
  header.pda_size = pda_blob.size();

  const cache::CacheBuildStats& build = cache.Stats();
  FlatStats stats{};
  stats.nodes = build.nodes;
  stats.tokens_classified = build.tokens_classified;
  stats.ci_accepted = build.ci_accepted;
  stats.ci_rejected = build.ci_rejected;
  stats.context_dependent = build.context_dependent;
  stats.max_ctx_dependent_per_node = build.max_ctx_dependent_per_node;
  stats.bytes_checked = build.bytes_checked;
  stats.bytes_total = build.bytes_total;
  stats.tokens_pruned = build.tokens_pruned;
  stats.subtree_cutoffs = build.subtree_cutoffs;
  stats.memory_bytes = build.memory_bytes;
  stats.full_bitset_bytes = build.full_bitset_bytes;
  for (int i = 0; i < 3; ++i) {
    stats.storage_kind_counts[i] = build.storage_kind_counts[i];
  }
  header.stats_offset =
      AppendAligned(&buf, &stats, sizeof(stats), kSectionAlign);

  // Entry table: placeholder now, records filled after the data region
  // assigns every array its offset.
  buf.resize(AlignUp(buf.size(), kSectionAlign), '\0');
  header.entry_table_offset = buf.size();
  buf.resize(buf.size() + std::size_t{num_entries} * sizeof(FlatEntryRecord),
             '\0');

  std::vector<FlatEntryRecord> records(num_entries);
  for (std::uint32_t i = 0; i < num_entries; ++i) {
    const cache::NodeMaskEntry& entry =
        cache.Entry(static_cast<std::int32_t>(i));
    FlatEntryRecord& rec = records[i];
    rec.kind = static_cast<std::uint32_t>(entry.kind);
    rec.stored_offset =
        AppendAligned(&buf, entry.stored.data(),
                      entry.stored.size() * sizeof(std::int32_t), 4);
    rec.stored_count = entry.stored.size();
    rec.ctx_offset = AppendAligned(
        &buf, entry.context_dependent.data(),
        entry.context_dependent.size() * sizeof(std::int32_t), 4);
    rec.ctx_count = entry.context_dependent.size();
    const auto& edges = TrieAccess::EdgeBytes(entry.ctx_trie);
    const auto& depths = TrieAccess::Depths(entry.ctx_trie);
    const auto& skips = TrieAccess::Skips(entry.ctx_trie);
    const auto& begins = TrieAccess::TokenBegins(entry.ctx_trie);
    rec.trie_edge_offset = AppendAligned(&buf, edges.data(), edges.size(), 1);
    rec.trie_nodes = edges.size();
    rec.trie_depths_offset = AppendAligned(
        &buf, depths.data(), depths.size() * sizeof(std::int32_t), 4);
    rec.trie_skips_offset = AppendAligned(
        &buf, skips.data(), skips.size() * sizeof(std::int32_t), 4);
    rec.trie_token_begins_offset = AppendAligned(
        &buf, begins.data(), begins.size() * sizeof(std::int32_t), 4);
    rec.trie_token_begins_count = begins.size();
    // Bitset words last and cache-line aligned: the decode hot path copies
    // them with word/SIMD loops.
    rec.bits_offset = AppendAligned(
        &buf, entry.accepted_bits.Data(),
        entry.accepted_bits.WordCount() * sizeof(std::uint64_t), kSectionAlign);
    rec.bits_words = entry.accepted_bits.WordCount();
    rec.bits_size = entry.accepted_bits.Size();
  }
  std::memcpy(buf.data() + header.entry_table_offset, records.data(),
              records.size() * sizeof(FlatEntryRecord));

  buf.resize(AlignUp(buf.size(), kSectionAlign), '\0');
  header.file_size = buf.size();
  header.payload_checksum = FnvWords(
      reinterpret_cast<const std::uint64_t*>(buf.data() + sizeof(FlatHeader)),
      (buf.size() - sizeof(FlatHeader)) / 8);
  header.header_checksum = HeaderChecksum(header);
  std::memcpy(buf.data(), &header, sizeof(header));
  return buf;
}

void WriteFlatArtifactFile(const std::string& path,
                           const cache::AdaptiveTokenMaskCache& cache,
                           std::string_view content_key) {
  std::string bytes = BuildFlatArtifact(cache, content_key);
  static std::atomic<std::uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr || XGR_FAULT_HIT("artifact.write")) {
    if (f != nullptr) {
      std::fclose(f);
      std::remove(tmp.c_str());
    }
    throw StatusError(StatusCode::kInternal,
                      "artifact: cannot open temp file " + tmp);
  }
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fflush(f) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StatusError(StatusCode::kInternal,
                      "artifact: short write publishing " + path);
  }
}

}  // namespace xgr::artifact
