// Flat "XGR3" artifact writer (format: artifact_format.h).
//
// Output bytes are a pure function of (grammar, vocabulary, options,
// content_key) — no timestamps, no build-time measurements — so independent
// builds of the same content are bit-identical and the content-addressed
// disk tier can compare files byte-wise.
#pragma once

#include <string>
#include <string_view>

#include "cache/adaptive_cache.h"

namespace xgr::artifact {

// Assembles the flat artifact in memory. `content_key` is embedded for
// registry content addressing; empty produces an unkeyed artifact (loaders
// skip the key check).
std::string BuildFlatArtifact(const cache::AdaptiveTokenMaskCache& cache,
                              std::string_view content_key = {});

// Atomic publish: writes to `path + ".tmp.<pid>.<seq>"`, then rename(2)s
// onto `path`, so concurrent readers only ever see complete files. Throws
// StatusError(kInternal) on I/O failure. Fault site: "artifact.write".
void WriteFlatArtifactFile(const std::string& path,
                           const cache::AdaptiveTokenMaskCache& cache,
                           std::string_view content_key = {});

}  // namespace xgr::artifact
