#include "artifact/artifact_reader.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "artifact/artifact_format.h"
#include "artifact/flat_pda.h"
#include "serialize/serialize.h"
#include "support/fault_point.h"
#include "support/status.h"
#include "tokenizer/token_trie.h"

namespace xgr::artifact_detail {

// The one gateway allowed to assemble an AdaptiveTokenMaskCache around
// borrowed storage (friend of the cache class).
struct ArtifactAccess {
  static std::shared_ptr<const cache::AdaptiveTokenMaskCache> Assemble(
      std::shared_ptr<const pda::CompiledGrammar> pda,
      std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
      std::vector<cache::NodeMaskEntry> entries, cache::CacheBuildStats stats,
      std::shared_ptr<const void> backing) {
    auto cache = std::shared_ptr<cache::AdaptiveTokenMaskCache>(
        new cache::AdaptiveTokenMaskCache());
    cache->pda_ = std::move(pda);
    cache->tokenizer_ = std::move(tokenizer);
    cache->entries_ = std::move(entries);
    cache->stats_ = std::move(stats);
    cache->backing_ = std::move(backing);
    return cache;
  }
};

}  // namespace xgr::artifact_detail

namespace xgr::artifact {

namespace {

[[noreturn]] void Corrupt(const std::string& detail) {
  throw StatusError(StatusCode::kCorruptArtifact, "flat artifact: " + detail);
}

struct Bounds {
  const char* base;
  std::uint64_t size;
};

// Validates an offset table reference before any view is formed: in-range
// (overflow-safe), inside the body (never aliasing the header), and aligned.
// A zero-count array must encode as offset 0 and yields nullptr.
template <typename T>
const T* RangeArray(const Bounds& b, std::uint64_t offset, std::uint64_t count,
                    std::uint64_t alignment, const char* what) {
  if (count == 0) {
    if (offset != 0) Corrupt(std::string(what) + ": nonzero offset for empty array");
    return nullptr;
  }
  if (count > b.size / sizeof(T)) Corrupt(std::string(what) + ": count exceeds file");
  std::uint64_t bytes = count * sizeof(T);
  if (offset < sizeof(FlatHeader) || offset % alignment != 0 ||
      offset > b.size || bytes > b.size - offset) {
    Corrupt(std::string(what) + ": offset out of range or misaligned");
  }
  return reinterpret_cast<const T*>(b.base + offset);
}

FlatHeader ReadHeader(std::string_view bytes) {
  if (bytes.size() < sizeof(FlatHeader)) Corrupt("shorter than header");
  FlatHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kFlatMagic, sizeof(kFlatMagic)) != 0) {
    Corrupt("bad magic");
  }
  if (header.version != kFlatVersion) {
    Corrupt("unsupported version " + std::to_string(header.version));
  }
  if (header.endian_marker != kEndianMarker) Corrupt("endianness mismatch");
  if (header.header_checksum != HeaderChecksum(header)) {
    Corrupt("header checksum mismatch");
  }
  if (header.file_size != bytes.size() || bytes.size() % kSectionAlign != 0) {
    Corrupt("file size mismatch (truncated or padded)");
  }
  return header;
}

void CheckTokenIds(const support::ArrayRef<std::int32_t>& ids,
                   std::int32_t vocab_size, const char* what) {
  for (std::int32_t id : ids) {
    if (id < 0 || id >= vocab_size) {
      Corrupt(std::string(what) + ": token id out of vocabulary");
    }
  }
}

}  // namespace

std::string_view PeekContentKey(std::string_view bytes) {
  FlatHeader header = ReadHeader(bytes);
  Bounds bounds{bytes.data(), header.file_size};
  const char* key = RangeArray<char>(bounds, header.content_key_offset,
                                     header.content_key_size, 1, "content key");
  return key == nullptr
             ? std::string_view{}
             : std::string_view(key, static_cast<std::size_t>(header.content_key_size));
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifactBytes(
    std::shared_ptr<const void> backing, std::string_view bytes,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options) {
  FlatHeader header = ReadHeader(bytes);
  if (XGR_FAULT_HIT("artifact.load.validate")) {
    Corrupt("injected validation fault");
  }
  if (options.verify_checksum) {
    std::uint64_t checksum = FnvWords(
        reinterpret_cast<const std::uint64_t*>(bytes.data() + sizeof(FlatHeader)),
        (bytes.size() - sizeof(FlatHeader)) / 8);
    if (checksum != header.payload_checksum) Corrupt("payload checksum mismatch");
  }
  if (header.vocab_hash != serialize::VocabularyHash(*tokenizer) ||
      header.vocab_size !=
          static_cast<std::uint32_t>(tokenizer->VocabSize())) {
    Corrupt("vocabulary pin mismatch: artifact built for a different tokenizer");
  }
  Bounds bounds{bytes.data(), header.file_size};
  const char* key_data = RangeArray<char>(
      bounds, header.content_key_offset, header.content_key_size, 1, "content key");
  if (!options.expect_content_key.empty()) {
    std::string_view embedded(key_data == nullptr ? "" : key_data,
                              static_cast<std::size_t>(header.content_key_size));
    if (embedded != options.expect_content_key) Corrupt("content key mismatch");
  }

  const char* pda_data = RangeArray<char>(bounds, header.pda_offset,
                                          header.pda_size, kSectionAlign, "pda blob");
  // Frozen-view CompiledGrammar straight over the section bytes: the backing
  // keep-alive rides on the pda too, because it can be shared independently
  // of the mask cache that carried it in.
  std::shared_ptr<const pda::CompiledGrammar> pda = LoadFlatPdaSection(
      std::string_view(pda_data == nullptr ? "" : pda_data,
                       static_cast<std::size_t>(header.pda_size)),
      backing, options.deep_validate);
  if (static_cast<std::int32_t>(header.num_entries) != pda->NumNodes()) {
    Corrupt("entry count disagrees with pda node count");
  }

  const auto* stats_data = RangeArray<FlatStats>(bounds, header.stats_offset, 1,
                                                 kSectionAlign, "stats block");
  const auto* records = RangeArray<FlatEntryRecord>(
      bounds, header.entry_table_offset, header.num_entries, kSectionAlign,
      "entry table");
  if (XGR_FAULT_HIT("artifact.load.fixup")) {
    Corrupt("injected fix-up fault");
  }

  auto vocab_size = static_cast<std::int32_t>(header.vocab_size);
  std::vector<cache::NodeMaskEntry> entries(header.num_entries);
  using TrieAccess = tokenizer::PrefixTrieSliceAccess;
  for (std::uint32_t i = 0; i < header.num_entries; ++i) {
    const FlatEntryRecord& rec = records[i];
    cache::NodeMaskEntry& entry = entries[i];
    if (rec.kind > static_cast<std::uint32_t>(cache::StorageKind::kBitset)) {
      Corrupt("unknown storage kind");
    }
    entry.kind = static_cast<cache::StorageKind>(rec.kind);
    entry.stored = support::ArrayRef<std::int32_t>::View(
        RangeArray<std::int32_t>(bounds, rec.stored_offset, rec.stored_count, 4,
                                 "stored ids"),
        static_cast<std::size_t>(rec.stored_count));
    entry.context_dependent = support::ArrayRef<std::int32_t>::View(
        RangeArray<std::int32_t>(bounds, rec.ctx_offset, rec.ctx_count, 4,
                                 "ctx ids"),
        static_cast<std::size_t>(rec.ctx_count));
    if (options.deep_validate) {
      CheckTokenIds(entry.stored, vocab_size, "stored ids");
      CheckTokenIds(entry.context_dependent, vocab_size, "ctx ids");
    }

    if (rec.bits_size != 0 &&
        rec.bits_size != static_cast<std::uint64_t>(vocab_size)) {
      Corrupt("bitset size disagrees with vocabulary");
    }
    if (rec.bits_words != (rec.bits_size + 63) / 64) {
      Corrupt("bitset word count disagrees with bit size");
    }
    const auto* words = RangeArray<std::uint64_t>(
        bounds, rec.bits_offset, rec.bits_words, kSectionAlign, "bitset words");
    if (options.deep_validate && rec.bits_size % 64 != 0 && words != nullptr &&
        (words[rec.bits_words - 1] >> (rec.bits_size % 64)) != 0) {
      Corrupt("bitset padding bits set");
    }
    entry.accepted_bits = FrozenBitset::View(
        words, static_cast<std::size_t>(rec.bits_words),
        static_cast<std::size_t>(rec.bits_size));

    TrieAccess::EdgeBytes(entry.ctx_trie) = support::ArrayRef<std::uint8_t>::View(
        RangeArray<std::uint8_t>(bounds, rec.trie_edge_offset, rec.trie_nodes, 1,
                                 "trie edges"),
        static_cast<std::size_t>(rec.trie_nodes));
    TrieAccess::Depths(entry.ctx_trie) = support::ArrayRef<std::int32_t>::View(
        RangeArray<std::int32_t>(bounds, rec.trie_depths_offset, rec.trie_nodes,
                                 4, "trie depths"),
        static_cast<std::size_t>(rec.trie_nodes));
    TrieAccess::Skips(entry.ctx_trie) = support::ArrayRef<std::int32_t>::View(
        RangeArray<std::int32_t>(bounds, rec.trie_skips_offset, rec.trie_nodes,
                                 4, "trie skips"),
        static_cast<std::size_t>(rec.trie_nodes));
    TrieAccess::TokenBegins(entry.ctx_trie) = support::ArrayRef<std::int32_t>::View(
        RangeArray<std::int32_t>(bounds, rec.trie_token_begins_offset,
                                 rec.trie_token_begins_count, 4, "trie ranges"),
        static_cast<std::size_t>(rec.trie_token_begins_count));
    if (options.deep_validate) {
      try {
        serialize::ValidateCtxTrieEntry(entry);
      } catch (const CheckError& e) {
        Corrupt(std::string("ctx trie rejected: ") + e.what());
      }
    }
  }

  cache::CacheBuildStats stats;
  stats.nodes = stats_data->nodes;
  stats.tokens_classified = stats_data->tokens_classified;
  stats.ci_accepted = stats_data->ci_accepted;
  stats.ci_rejected = stats_data->ci_rejected;
  stats.context_dependent = stats_data->context_dependent;
  stats.max_ctx_dependent_per_node = stats_data->max_ctx_dependent_per_node;
  stats.bytes_checked = stats_data->bytes_checked;
  stats.bytes_total = stats_data->bytes_total;
  stats.tokens_pruned = stats_data->tokens_pruned;
  stats.subtree_cutoffs = stats_data->subtree_cutoffs;
  stats.memory_bytes = stats_data->memory_bytes;
  stats.full_bitset_bytes = stats_data->full_bitset_bytes;
  for (int k = 0; k < 3; ++k) {
    stats.storage_kind_counts[k] = stats_data->storage_kind_counts[k];
  }

  return artifact_detail::ArtifactAccess::Assemble(
      std::move(pda), std::move(tokenizer), std::move(entries), std::move(stats),
      std::move(backing));
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifact(
    std::shared_ptr<const MappedFile> file,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options) {
  if (file == nullptr || XGR_FAULT_HIT("artifact.load.open")) {
    Corrupt("cannot map file");
  }
  std::string_view bytes = file->bytes();
  return LoadFlatArtifactBytes(std::move(file), bytes, std::move(tokenizer),
                               options);
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadFlatArtifactFile(
    const std::string& path,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const LoadOptions& options) {
  return LoadFlatArtifact(MappedFile::Open(path), std::move(tokenizer), options);
}

}  // namespace xgr::artifact
