#include "artifact/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace xgr::artifact {

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto size = static_cast<std::size_t>(st.st_size);
  void* data = nullptr;
  if (size != 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return nullptr;
    }
  }
  // The mapping survives the close; the fd is only needed to establish it.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace xgr::artifact
