// Vocabulary persistence: load/save the token table in a simple JSON format.
//
// The adoption path for real tokenizers: export `tokenizer.json`-style data
// (id → token bytes, special ids) from any tokenizer library offline, then
// load it here and the whole engine — mask cache, serialization pinning,
// FFI — runs against the real vocabulary. Token byte strings are encoded
// with the GPT-2 byte↔unicode bijection (the same scheme HuggingFace
// byte-level BPE vocab files use), so arbitrary bytes — byte-fallback
// tokens, sub-UTF-8 pieces — round-trip exactly through valid JSON.
//
// Format:
//   {
//     "tokens": ["<pad>", "a", " the", ...],   // index = token id
//     "special_ids": [0, 1, 2],
//     "eos_id": 2,
//     "bos_id": 1
//   }
#pragma once

#include <string>

#include "tokenizer/vocabulary.h"

namespace xgr::tokenizer {

// Serializes `vocab` to the JSON format above (compact, deterministic).
std::string VocabularyToJson(const Vocabulary& vocab);

// Parses the JSON format. Throws xgr::CheckError on malformed input
// (bad JSON, missing fields, ids out of range).
Vocabulary VocabularyFromJson(const std::string& json_text);

// File convenience wrappers (throw xgr::CheckError on I/O failure).
void SaveVocabulary(const Vocabulary& vocab, const std::string& path);
Vocabulary LoadVocabulary(const std::string& path);

}  // namespace xgr::tokenizer
