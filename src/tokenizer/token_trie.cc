#include "tokenizer/token_trie.h"

#include <algorithm>

#include "support/logging.h"

namespace xgr::tokenizer {

TokenTrie::TokenTrie(const TokenizerInfo& info) {
  nodes_.emplace_back();
  // Inserting in sorted order makes child vectors naturally sorted.
  for (std::int32_t id : info.SortedTokenIds()) {
    const std::string& bytes = info.TokenBytes(id);
    std::int32_t node = 0;
    for (char c : bytes) {
      auto byte = static_cast<std::uint8_t>(c);
      std::int32_t child = Child(node, byte);
      if (child < 0) {
        child = static_cast<std::int32_t>(nodes_.size());
        nodes_[static_cast<std::size_t>(node)].children.emplace_back(byte, child);
        nodes_.emplace_back();
      }
      node = child;
    }
    nodes_[static_cast<std::size_t>(node)].token_ids.push_back(id);
  }
}

std::int32_t TokenTrie::LongestMatch(std::string_view text, std::size_t pos,
                                     std::size_t* match_length) const {
  std::int32_t node = 0;
  std::int32_t best_token = -1;
  std::size_t best_length = 0;
  std::size_t length = 0;
  while (pos + length < text.size()) {
    node = Child(node, static_cast<std::uint8_t>(text[pos + length]));
    if (node < 0) break;
    ++length;
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (!n.token_ids.empty()) {
      best_token = n.token_ids.front();
      best_length = length;
    }
  }
  *match_length = best_length;
  return best_token;
}

std::vector<std::int32_t> GreedyTokenize(const TokenTrie& trie,
                                         std::string_view text) {
  std::vector<std::int32_t> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t length = 0;
    std::int32_t token = trie.LongestMatch(text, pos, &length);
    if (token < 0) break;  // unreachable with byte-fallback vocabularies
    ids.push_back(token);
    pos += length;
  }
  return ids;
}

namespace {

// Recursive preorder emitter for PrefixTrieSlice::Build. `lo`/`hi` bound the
// tokens whose bytes all share the current node's path (length `depth`);
// terminals sort first, then children group by their byte at `depth`.
struct SliceBuilder {
  const TokenizerInfo& info;
  const std::int32_t* tokens;
  std::vector<std::uint8_t> edge_bytes;
  std::vector<std::int32_t> depths;
  std::vector<std::int32_t> skips;
  std::vector<std::int32_t> token_begins;

  void EmitChildren(std::size_t lo, std::size_t hi, std::size_t depth) {
    while (lo < hi && info.TokenBytes(tokens[lo]).size() == depth) ++lo;
    while (lo < hi) {
      auto byte = static_cast<std::uint8_t>(info.TokenBytes(tokens[lo])[depth]);
      std::size_t group_end = lo + 1;
      while (group_end < hi &&
             static_cast<std::uint8_t>(info.TokenBytes(tokens[group_end])[depth]) ==
                 byte) {
        ++group_end;
      }
      std::size_t node = edge_bytes.size();
      edge_bytes.push_back(byte);
      depths.push_back(static_cast<std::int32_t>(depth) + 1);
      skips.push_back(0);  // patched after the subtree is emitted
      token_begins.push_back(static_cast<std::int32_t>(lo));
      EmitChildren(lo, group_end, depth + 1);
      skips[node] = static_cast<std::int32_t>(edge_bytes.size());
      lo = group_end;
    }
  }
};

}  // namespace

PrefixTrieSlice PrefixTrieSlice::Build(const TokenizerInfo& info,
                                       const std::int32_t* token_ids,
                                       std::size_t num_tokens) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < num_tokens; ++i) {
    XGR_DCHECK(info.TokenBytes(token_ids[i - 1]) <= info.TokenBytes(token_ids[i]))
        << "PrefixTrieSlice input must be in lexicographic byte order";
  }
#endif
  PrefixTrieSlice slice;
  if (num_tokens == 0) return slice;
  SliceBuilder builder{info, token_ids, {}, {}, {}, {}};
  // Root-terminal (empty-byte) tokens land in [0, token_begins.front()); the
  // first stored node's token_begin is their count.
  builder.EmitChildren(0, num_tokens, 0);
  builder.token_begins.push_back(static_cast<std::int32_t>(num_tokens));
  slice.edge_bytes_ = support::ArrayRef<std::uint8_t>(std::move(builder.edge_bytes));
  slice.depths_ = support::ArrayRef<std::int32_t>(std::move(builder.depths));
  slice.skips_ = support::ArrayRef<std::int32_t>(std::move(builder.skips));
  slice.token_begins_ = support::ArrayRef<std::int32_t>(std::move(builder.token_begins));
  return slice;
}

std::int32_t TokenTrie::Child(std::int32_t node, std::uint8_t byte) const {
  const auto& children = nodes_[static_cast<std::size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), byte,
      [](const std::pair<std::uint8_t, std::int32_t>& entry, std::uint8_t b) {
        return entry.first < b;
      });
  if (it != children.end() && it->first == byte) return it->second;
  return -1;
}

}  // namespace xgr::tokenizer
