#include "tokenizer/token_trie.h"

#include <algorithm>

namespace xgr::tokenizer {

TokenTrie::TokenTrie(const TokenizerInfo& info) {
  nodes_.emplace_back();
  // Inserting in sorted order makes child vectors naturally sorted.
  for (std::int32_t id : info.SortedTokenIds()) {
    const std::string& bytes = info.TokenBytes(id);
    std::int32_t node = 0;
    for (char c : bytes) {
      auto byte = static_cast<std::uint8_t>(c);
      std::int32_t child = Child(node, byte);
      if (child < 0) {
        child = static_cast<std::int32_t>(nodes_.size());
        nodes_[static_cast<std::size_t>(node)].children.emplace_back(byte, child);
        nodes_.emplace_back();
      }
      node = child;
    }
    nodes_[static_cast<std::size_t>(node)].token_ids.push_back(id);
  }
}

std::int32_t TokenTrie::LongestMatch(std::string_view text, std::size_t pos,
                                     std::size_t* match_length) const {
  std::int32_t node = 0;
  std::int32_t best_token = -1;
  std::size_t best_length = 0;
  std::size_t length = 0;
  while (pos + length < text.size()) {
    node = Child(node, static_cast<std::uint8_t>(text[pos + length]));
    if (node < 0) break;
    ++length;
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (!n.token_ids.empty()) {
      best_token = n.token_ids.front();
      best_length = length;
    }
  }
  *match_length = best_length;
  return best_token;
}

std::vector<std::int32_t> GreedyTokenize(const TokenTrie& trie,
                                         std::string_view text) {
  std::vector<std::int32_t> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t length = 0;
    std::int32_t token = trie.LongestMatch(text, pos, &length);
    if (token < 0) break;  // unreachable with byte-fallback vocabularies
    ids.push_back(token);
    pos += length;
  }
  return ids;
}

std::int32_t TokenTrie::Child(std::int32_t node, std::uint8_t byte) const {
  const auto& children = nodes_[static_cast<std::size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), byte,
      [](const std::pair<std::uint8_t, std::int32_t>& entry, std::uint8_t b) {
        return entry.first < b;
      });
  if (it != children.end() && it->first == byte) return it->second;
  return -1;
}

}  // namespace xgr::tokenizer
