#include "tokenizer/synthetic_vocab.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"
#include "support/utf8.h"

namespace xgr::tokenizer {

namespace {

const char* const kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",  "k",
                               "l",  "m",  "n",  "p",  "r",  "s",  "t",  "v",
                               "w",  "z",  "st", "tr", "ch", "sh", "th", "pl",
                               "br", "gr", "cl", "fr", "sp", "qu"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou", "io", "ee"};
const char* const kCodas[] = {"",   "n",  "r",  "s",  "t",  "l",  "m",  "d",
                              "ck", "ng", "st", "nt", "rd", "ss", "x",  "p"};

// Frequent code / JSON / prose fragments seen in real BPE vocabularies.
const char* const kFragments[] = {
    "\": \"", "\":",    "\",",   "\"}",    "},",    "}]",     "[{",    "{\"",
    "()",     "();",    "())",   " = ",    " == ",  " != ",   " => ",  "->",
    "://",    ".com",   ".org",  "\n\n",   "\n\t",  " {",     " }",    " [",
    " ]",     "',",     "':",    " (",     ");",    "//",     "/*",    "*/",
    " +",     " -",     " /",    ",\"",    ":\"",   "e\",",   "s\",",  "\\\"",
    " \"",    "==",     "!=",    "<=",     ">=",    "&&",     "||",    "+=",
    " if",    " else",  " for",  " while", " return", " true", " false",
    " null",  "true",   "false", "null",   "None",  "True",   "False"};

void AddToken(std::unordered_set<std::string>* seen,
              std::vector<std::string>* tokens, const std::string& token,
              std::int32_t limit) {
  if (static_cast<std::int32_t>(tokens->size()) >= limit) return;
  if (token.empty()) return;
  if (seen->insert(token).second) tokens->push_back(token);
}

std::string MakeSyllable(Rng& rng) {
  std::string s;
  s += kOnsets[rng.NextBounded(std::size(kOnsets))];
  s += kVowels[rng.NextBounded(std::size(kVowels))];
  s += kCodas[rng.NextBounded(std::size(kCodas))];
  return s;
}

std::string MakeWord(Rng& rng) {
  // Zipf-ish syllable count: mostly 1-2 syllables.
  double roll = rng.NextDouble();
  int syllables = roll < 0.55 ? 1 : roll < 0.9 ? 2 : 3;
  std::string word;
  for (int i = 0; i < syllables; ++i) word += MakeSyllable(rng);
  return word;
}

}  // namespace

Vocabulary BuildSyntheticVocab(const SyntheticVocabOptions& options) {
  XGR_CHECK(options.size >= 1000) << "synthetic vocab should be >= 1000 tokens";
  Rng rng(options.seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(options.size));
  // Reserve room for the special tokens appended at the end.
  const std::int32_t limit = options.size - 2;

  // 1. Byte-fallback tokens: every single byte.
  for (int b = 0; b < 256; ++b) {
    AddToken(&seen, &tokens, std::string(1, static_cast<char>(b)), limit);
  }
  // 2. Whitespace runs (Llama-3 has many, used heavily by code).
  for (int n = 2; n <= 16; ++n) {
    AddToken(&seen, &tokens, std::string(static_cast<std::size_t>(n), ' '), limit);
  }
  for (int n = 2; n <= 4; ++n) {
    AddToken(&seen, &tokens, std::string(static_cast<std::size_t>(n), '\n'), limit);
    AddToken(&seen, &tokens, std::string(static_cast<std::size_t>(n), '\t'), limit);
  }
  // 3. Digit groups: all 2- and 3-digit strings (Llama-3 groups digits).
  for (int d = 0; d <= 99; ++d) {
    AddToken(&seen, &tokens, std::to_string(d / 10) + std::to_string(d % 10), limit);
  }
  for (int d = 0; d <= 999; ++d) {
    std::string s = std::to_string(d);
    while (s.size() < 3) s.insert(s.begin(), '0');
    AddToken(&seen, &tokens, s, limit);
  }
  // 4. Operator / fragment tokens.
  for (const char* fragment : kFragments) {
    AddToken(&seen, &tokens, fragment, limit);
  }
  // 5. Multi-byte UTF-8 tokens: accented latin, CJK, and a few emoji; plus
  //    sub-UTF8 pieces (leading bytes without continuation) that force the
  //    byte-level automaton to handle split characters.
  for (int i = 0; i < 600 && static_cast<std::int32_t>(tokens.size()) < limit; ++i) {
    std::string s;
    std::uint32_t cp;
    double kind = rng.NextDouble();
    if (kind < 0.4) {
      cp = 0x4E00 + static_cast<std::uint32_t>(rng.NextBounded(0x51A5));  // CJK
    } else if (kind < 0.8) {
      cp = 0xC0 + static_cast<std::uint32_t>(rng.NextBounded(0x250));  // accented
    } else {
      cp = 0x1F300 + static_cast<std::uint32_t>(rng.NextBounded(0x200));  // emoji
    }
    AppendUtf8(cp, &s);
    if (rng.NextDouble() < 0.15 && s.size() > 1) {
      s.pop_back();  // sub-UTF8 piece
    }
    if (rng.NextDouble() < 0.3) s.insert(0, " ");
    AddToken(&seen, &tokens, s, limit);
  }
  // 6. English-like words: the bulk of the vocabulary. Each word may appear
  //    bare, with leading space, capitalized, and with attached punctuation —
  //    mirroring real BPE inventories.
  while (static_cast<std::int32_t>(tokens.size()) < limit) {
    std::string word = MakeWord(rng);
    AddToken(&seen, &tokens, word, limit);
    AddToken(&seen, &tokens, " " + word, limit);
    if (rng.NextDouble() < 0.35) {
      std::string capitalized = word;
      capitalized[0] = static_cast<char>(std::toupper(capitalized[0]));
      AddToken(&seen, &tokens, capitalized, limit);
      AddToken(&seen, &tokens, " " + capitalized, limit);
    }
    if (rng.NextDouble() < 0.1) {
      AddToken(&seen, &tokens, word + ",", limit);
      AddToken(&seen, &tokens, word + ".", limit);
      AddToken(&seen, &tokens, word + "\"", limit);
    }
  }

  Vocabulary vocab;
  vocab.tokens = std::move(tokens);
  vocab.bos_id = vocab.Size();
  vocab.tokens.push_back("<|begin_of_text|>");
  vocab.eos_id = vocab.Size();
  vocab.tokens.push_back("<|end_of_text|>");
  vocab.special_ids = {vocab.bos_id, vocab.eos_id};
  XGR_CHECK(vocab.Size() == options.size);
  return vocab;
}

}  // namespace xgr::tokenizer
