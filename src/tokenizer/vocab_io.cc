#include "tokenizer/vocab_io.h"

#include <array>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "json/json.h"
#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::tokenizer {

namespace {

// GPT-2 byte → unicode bijection: printable bytes map to themselves, the
// rest to codepoints 0x100, 0x101, ... in byte order. Identical to the
// `bytes_to_unicode` table in the GPT-2 reference code and HuggingFace
// byte-level tokenizers.
std::array<std::uint32_t, 256> ByteToUnicodeTable() {
  std::array<std::uint32_t, 256> table{};
  auto printable = [](int b) {
    return (b >= '!' && b <= '~') || (b >= 0xA1 && b <= 0xAC) ||
           (b >= 0xAE && b <= 0xFF);
  };
  std::uint32_t next = 256;
  for (int b = 0; b < 256; ++b) {
    table[static_cast<std::size_t>(b)] =
        printable(b) ? static_cast<std::uint32_t>(b) : next++;
  }
  return table;
}

const std::array<std::uint32_t, 256>& ByteToUnicode() {
  static const std::array<std::uint32_t, 256> table = ByteToUnicodeTable();
  return table;
}

const std::unordered_map<std::uint32_t, std::uint8_t>& UnicodeToByte() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::uint32_t, std::uint8_t>();
    const auto& table = ByteToUnicode();
    for (int b = 0; b < 256; ++b) {
      m->emplace(table[static_cast<std::size_t>(b)],
                 static_cast<std::uint8_t>(b));
    }
    return m;
  }();
  return *map;
}

std::string EncodeTokenBytes(const std::string& bytes) {
  std::string out;
  for (char c : bytes) {
    AppendUtf8(ByteToUnicode()[static_cast<std::uint8_t>(c)], &out);
  }
  return out;
}

std::string DecodeTokenBytes(const std::string& encoded) {
  std::string out;
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    DecodedChar decoded = DecodeUtf8(encoded, pos);
    XGR_CHECK(decoded.ok) << "invalid UTF-8 in encoded token";
    auto it = UnicodeToByte().find(decoded.codepoint);
    XGR_CHECK(it != UnicodeToByte().end())
        << "codepoint U+" << decoded.codepoint
        << " is not in the byte-level alphabet";
    out.push_back(static_cast<char>(it->second));
    pos += static_cast<std::size_t>(decoded.length);
  }
  return out;
}

}  // namespace

std::string VocabularyToJson(const Vocabulary& vocab) {
  json::Array tokens;
  tokens.reserve(vocab.tokens.size());
  for (const std::string& bytes : vocab.tokens) {
    tokens.emplace_back(EncodeTokenBytes(bytes));
  }
  json::Array special;
  for (std::int32_t id : vocab.special_ids) {
    special.emplace_back(static_cast<std::int64_t>(id));
  }
  json::Value doc(json::Object{
      {"tokens", json::Value(std::move(tokens))},
      {"special_ids", json::Value(std::move(special))},
      {"eos_id", json::Value(static_cast<std::int64_t>(vocab.eos_id))},
      {"bos_id", json::Value(static_cast<std::int64_t>(vocab.bos_id))},
  });
  return doc.Dump();
}

Vocabulary VocabularyFromJson(const std::string& json_text) {
  json::ParseResult parsed = json::Parse(json_text);
  XGR_CHECK(parsed.ok()) << "vocabulary JSON: " << parsed.error;
  const json::Value& doc = *parsed.value;
  XGR_CHECK(doc.IsObject()) << "vocabulary JSON must be an object";

  const json::Value* tokens = doc.Find("tokens");
  XGR_CHECK(tokens != nullptr && tokens->IsArray()) << "missing 'tokens'";
  Vocabulary vocab;
  vocab.tokens.reserve(tokens->AsArray().size());
  for (const json::Value& token : tokens->AsArray()) {
    XGR_CHECK(token.IsString()) << "token entries must be strings";
    vocab.tokens.push_back(DecodeTokenBytes(token.AsString()));
  }
  XGR_CHECK(!vocab.tokens.empty()) << "empty vocabulary";

  auto id_in_range = [&](std::int64_t id) {
    return id >= 0 && id < static_cast<std::int64_t>(vocab.tokens.size());
  };
  if (const json::Value* special = doc.Find("special_ids")) {
    for (const json::Value& id : special->AsArray()) {
      XGR_CHECK(id.IsInteger() && id_in_range(id.AsInteger()))
          << "special id out of range";
      vocab.special_ids.push_back(static_cast<std::int32_t>(id.AsInteger()));
    }
  }
  if (const json::Value* eos = doc.Find("eos_id")) {
    XGR_CHECK(eos->IsInteger() && id_in_range(eos->AsInteger()))
        << "eos_id out of range";
    vocab.eos_id = static_cast<std::int32_t>(eos->AsInteger());
  }
  if (const json::Value* bos = doc.Find("bos_id")) {
    if (bos->AsInteger() >= 0) {
      XGR_CHECK(id_in_range(bos->AsInteger())) << "bos_id out of range";
    }
    vocab.bos_id = static_cast<std::int32_t>(bos->AsInteger());
  }
  return vocab;
}

void SaveVocabulary(const Vocabulary& vocab, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  XGR_CHECK(file.good()) << "cannot open for writing: " << path;
  file << VocabularyToJson(vocab);
  XGR_CHECK(file.good()) << "write failed: " << path;
}

Vocabulary LoadVocabulary(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  XGR_CHECK(file.good()) << "cannot open: " << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return VocabularyFromJson(buffer.str());
}

}  // namespace xgr::tokenizer
