// Vocabulary: token id -> decoded byte string, plus special-token metadata.
//
// The engine is tokenizer-agnostic: any vocabulary whose entries are byte
// strings works (byte-fallback tokens are just 1-byte entries, and tokens
// that split UTF-8 characters are ordinary byte strings). Special/control
// tokens take no part in grammar matching: the mask always disables them,
// except EOS which is enabled exactly when the grammar can terminate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xgr::tokenizer {

struct Vocabulary {
  std::vector<std::string> tokens;          // id -> raw bytes
  std::vector<std::int32_t> special_ids;    // control tokens (includes eos)
  std::int32_t eos_id = -1;
  std::int32_t bos_id = -1;

  std::int32_t Size() const { return static_cast<std::int32_t>(tokens.size()); }
};

}  // namespace xgr::tokenizer
