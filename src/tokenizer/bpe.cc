#include "tokenizer/bpe.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace xgr::tokenizer {

namespace {

// GPT-style pre-tokenization: words keep their leading space. "a b" ->
// ["a", " b"]. Newlines and punctuation stay inside words; good enough for
// the synthetic corpora used here.
std::vector<std::string> PreTokenize(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (c == ' ' && !current.empty()) {
      words.push_back(current);
      current.clear();
    }
    current.push_back(c);
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

}  // namespace

BpeModel BpeModel::Train(const std::string& corpus, std::int32_t vocab_size) {
  XGR_CHECK(vocab_size >= 256) << "vocab must include the 256 byte tokens";
  BpeModel model;
  model.token_bytes_.reserve(static_cast<std::size_t>(vocab_size));
  for (int b = 0; b < 256; ++b) {
    model.token_bytes_.push_back(std::string(1, static_cast<char>(b)));
  }

  // Unique words with frequencies; each word is a symbol sequence.
  std::unordered_map<std::string, std::int64_t> word_freq;
  for (const std::string& word : PreTokenize(corpus)) ++word_freq[word];
  struct Word {
    std::vector<std::int32_t> symbols;
    std::int64_t freq;
  };
  std::vector<Word> words;
  words.reserve(word_freq.size());
  for (const auto& [text, freq] : word_freq) {
    Word w;
    w.freq = freq;
    w.symbols.reserve(text.size());
    for (char c : text) w.symbols.push_back(static_cast<std::uint8_t>(c));
    words.push_back(std::move(w));
  }

  while (model.VocabSize() < vocab_size) {
    // Count adjacent pairs. (Recounted per merge: simple and fast enough for
    // the corpus sizes used in tests/benchmarks.)
    std::unordered_map<std::uint64_t, std::int64_t> pair_freq;
    for (const Word& word : words) {
      for (std::size_t i = 0; i + 1 < word.symbols.size(); ++i) {
        pair_freq[PairKey(word.symbols[i], word.symbols[i + 1])] += word.freq;
      }
    }
    if (pair_freq.empty()) break;
    // Deterministic argmax: highest frequency, then lowest key.
    std::uint64_t best_key = 0;
    std::int64_t best_freq = -1;
    for (const auto& [key, freq] : pair_freq) {
      if (freq > best_freq || (freq == best_freq && key < best_key)) {
        best_key = key;
        best_freq = freq;
      }
    }
    if (best_freq < 2) break;  // nothing left worth merging
    auto left = static_cast<std::int32_t>(best_key >> 32);
    auto right = static_cast<std::int32_t>(best_key & 0xFFFFFFFFu);
    std::int32_t result = model.VocabSize();
    model.token_bytes_.push_back(model.token_bytes_[static_cast<std::size_t>(left)] +
                                 model.token_bytes_[static_cast<std::size_t>(right)]);
    model.merge_rank_.emplace(best_key, static_cast<std::int32_t>(model.merges_.size()));
    model.merges_.push_back(Merge{left, right, result});
    // Apply the merge to every word.
    for (Word& word : words) {
      std::vector<std::int32_t>& s = word.symbols;
      std::size_t write = 0;
      for (std::size_t read = 0; read < s.size(); ++read) {
        if (read + 1 < s.size() && s[read] == left && s[read + 1] == right) {
          s[write++] = result;
          ++read;
        } else {
          s[write++] = s[read];
        }
      }
      s.resize(write);
    }
  }
  return model;
}

std::vector<std::int32_t> BpeModel::EncodeWord(const std::string& word) const {
  std::vector<std::int32_t> symbols;
  symbols.reserve(word.size());
  for (char c : word) symbols.push_back(static_cast<std::uint8_t>(c));
  // Repeatedly apply the lowest-rank applicable merge.
  while (symbols.size() >= 2) {
    std::int32_t best_rank = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = merge_rank_.find(PairKey(symbols[i], symbols[i + 1]));
      if (it != merge_rank_.end() && (best_rank == -1 || it->second < best_rank)) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == -1) break;
    symbols[best_pos] = merges_[static_cast<std::size_t>(best_rank)].result;
    symbols.erase(symbols.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::int32_t> BpeModel::Encode(const std::string& text) const {
  std::vector<std::int32_t> ids;
  for (const std::string& word : PreTokenize(text)) {
    std::vector<std::int32_t> word_ids = EncodeWord(word);
    ids.insert(ids.end(), word_ids.begin(), word_ids.end());
  }
  return ids;
}

std::string BpeModel::Decode(const std::vector<std::int32_t>& ids) const {
  std::string out;
  for (std::int32_t id : ids) {
    XGR_CHECK(id >= 0 && id < VocabSize()) << "token id out of range";
    out += token_bytes_[static_cast<std::size_t>(id)];
  }
  return out;
}

Vocabulary BpeModel::ToVocabulary() const {
  Vocabulary vocab;
  vocab.tokens = token_bytes_;
  vocab.bos_id = vocab.Size();
  vocab.tokens.push_back("<|begin_of_text|>");
  vocab.eos_id = vocab.Size();
  vocab.tokens.push_back("<|end_of_text|>");
  vocab.special_ids = {vocab.bos_id, vocab.eos_id};
  return vocab;
}

}  // namespace xgr::tokenizer
