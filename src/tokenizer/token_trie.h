// Byte tries over the vocabulary.
//
// TokenTrie: pointer-style trie used by the llama.cpp-grammar and
// lm-format-enforcer baseline strategies, which walk the vocabulary as a
// trie: shared prefixes are matched once and the automaton state branches
// per trie edge.
//
// PrefixTrieSlice: the compact, flattened form XGrammar's own engine uses
// for trie-pruned token checking (§3.3). Nodes are laid out in preorder with
// an explicit `skip` pointer per node (the preorder index of the first node
// outside the node's subtree), so a depth-first walk needs no child lookup
// and no heap stack: advancing to `pos + 1` descends/continues, jumping to
// `skip[pos]` prunes the entire subtree in one step. Because the source
// token list is in lexicographic byte order, preorder node order equals
// token order and the per-node token ranges tile the input list — a failed
// byte at node `pos` rejects exactly the contiguous token range
// [TokenBegin(pos), SubtreeTokenEnd(pos)) at once.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>
#include <vector>

#include "support/array_ref.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::tokenizer {

class TokenTrie {
 public:
  struct Node {
    // Token ids that end exactly at this node (duplicates share nodes).
    std::vector<std::int32_t> token_ids;
    // Sorted (byte, child) pairs.
    std::vector<std::pair<std::uint8_t, std::int32_t>> children;
  };

  // Builds the trie over all non-special tokens.
  explicit TokenTrie(const TokenizerInfo& info);

  std::int32_t Root() const { return 0; }
  const Node& GetNode(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t NumNodes() const { return nodes_.size(); }

  // Child on `byte` or -1.
  std::int32_t Child(std::int32_t node, std::uint8_t byte) const;

  // Longest token that is a prefix of `text` starting at `pos` (-1 if none;
  // cannot happen when the vocabulary contains all single bytes).
  std::int32_t LongestMatch(std::string_view text, std::size_t pos,
                            std::size_t* match_length) const;

 private:
  std::vector<Node> nodes_;
};

// Greedy longest-match tokenization against the trie. With byte-fallback
// vocabularies this always succeeds. Used by the mock LLM's target scripts
// and by jump-forward retokenization.
std::vector<std::int32_t> GreedyTokenize(const TokenTrie& trie,
                                         std::string_view text);

// Preorder-flattened byte trie over a lexicographically ordered token list
// (see the file comment). Immutable after Build; owned by cache entries
// (per-entry context-dependent sub-tries) and by the cache builder (one
// vocabulary-wide instance). All state lives in four flat arrays held as
// support::ArrayRef, so the structure serializes as-is, MemoryBytes() is
// exact, and an mmap-loaded artifact can alias file pages with no copy
// (src/artifact).
class PrefixTrieSlice {
 public:
  PrefixTrieSlice() = default;

  // `token_ids` must be sorted by token bytes (ties adjacent, any order);
  // this is the order TokenizerInfo::SortedTokenIds and
  // NodeMaskEntry::context_dependent already maintain. Token index `t`
  // throughout this class refers to a position in that input list.
  static PrefixTrieSlice Build(const TokenizerInfo& info,
                               const std::int32_t* token_ids,
                               std::size_t num_tokens);
  static PrefixTrieSlice Build(const TokenizerInfo& info,
                               const std::vector<std::int32_t>& token_ids) {
    return Build(info, token_ids.data(), token_ids.size());
  }

  std::int32_t NumNodes() const { return static_cast<std::int32_t>(edge_bytes_.size()); }
  bool Empty() const { return edge_bytes_.empty(); }

  // Byte labeling the edge into node `pos`.
  std::uint8_t EdgeByte(std::int32_t pos) const {
    return edge_bytes_[static_cast<std::size_t>(pos)];
  }
  // 1-based byte depth of node `pos` (the root, depth 0, is not stored).
  std::int32_t Depth(std::int32_t pos) const {
    return depths_[static_cast<std::size_t>(pos)];
  }
  // Preorder index of the first node outside `pos`'s subtree (== NumNodes()
  // for the last subtree).
  std::int32_t Skip(std::int32_t pos) const {
    return skips_[static_cast<std::size_t>(pos)];
  }
  // Token range of `pos`'s whole subtree: [TokenBegin(pos), SubtreeTokenEnd(pos)).
  std::int32_t TokenBegin(std::int32_t pos) const {
    return token_begins_[static_cast<std::size_t>(pos)];
  }
  std::int32_t SubtreeTokenEnd(std::int32_t pos) const {
    return token_begins_[static_cast<std::size_t>(skips_[static_cast<std::size_t>(pos)])];
  }
  // Tokens whose bytes end exactly at `pos` (a prefix of the subtree range:
  // shorter strings sort first, so terminals precede descendants).
  std::int32_t TerminalTokenEnd(std::int32_t pos) const {
    return token_begins_[static_cast<std::size_t>(pos) + 1];
  }
  // Zero-length tokens terminate at the (unstored) root: range [0, RootTokenEnd).
  std::int32_t RootTokenEnd() const {
    return token_begins_.empty() ? 0 : token_begins_.front();
  }
  std::int32_t NumTokens() const {
    return token_begins_.empty() ? 0 : token_begins_.back();
  }

  std::size_t MemoryBytes() const {
    return edge_bytes_.size() * sizeof(std::uint8_t) +
           (depths_.size() + skips_.size() + token_begins_.size()) *
               sizeof(std::int32_t);
  }

  friend bool operator==(const PrefixTrieSlice& a, const PrefixTrieSlice& b) {
    return a.edge_bytes_ == b.edge_bytes_ && a.depths_ == b.depths_ &&
           a.skips_ == b.skips_ && a.token_begins_ == b.token_begins_;
  }

 private:
  friend struct PrefixTrieSliceAccess;  // serialization (src/serialize, src/artifact)

  support::ArrayRef<std::uint8_t> edge_bytes_;  // per node: incoming edge label
  support::ArrayRef<std::int32_t> depths_;      // per node: 1-based byte depth
  support::ArrayRef<std::int32_t> skips_;       // per node: preorder subtree end
  // Per node: first input-list token in the subtree, preceded by the count of
  // root-terminal (empty) tokens and followed by a total-count sentinel —
  // size NumNodes() + 1, monotone, tiling [0, NumTokens()). Empty when the
  // input list is empty.
  support::ArrayRef<std::int32_t> token_begins_;
};

// Serialization gateway: the only code outside PrefixTrieSlice that touches
// the raw arrays (kept out of the public API so the flat layout can change
// without breaking callers).
struct PrefixTrieSliceAccess {
  static support::ArrayRef<std::uint8_t>& EdgeBytes(PrefixTrieSlice& t) { return t.edge_bytes_; }
  static support::ArrayRef<std::int32_t>& Depths(PrefixTrieSlice& t) { return t.depths_; }
  static support::ArrayRef<std::int32_t>& Skips(PrefixTrieSlice& t) { return t.skips_; }
  static support::ArrayRef<std::int32_t>& TokenBegins(PrefixTrieSlice& t) { return t.token_begins_; }
  static const support::ArrayRef<std::uint8_t>& EdgeBytes(const PrefixTrieSlice& t) { return t.edge_bytes_; }
  static const support::ArrayRef<std::int32_t>& Depths(const PrefixTrieSlice& t) { return t.depths_; }
  static const support::ArrayRef<std::int32_t>& Skips(const PrefixTrieSlice& t) { return t.skips_; }
  static const support::ArrayRef<std::int32_t>& TokenBegins(const PrefixTrieSlice& t) { return t.token_begins_; }
};

}  // namespace xgr::tokenizer
