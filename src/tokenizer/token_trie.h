// Byte trie over the vocabulary.
//
// The llama.cpp-grammar and lm-format-enforcer baseline strategies walk the
// vocabulary as a trie: shared prefixes are matched once and the automaton
// state branches per trie edge. (XGrammar itself uses sorted-order traversal
// with persistent-stack rollback instead; both are provided so the Figure 9
// comparison runs each engine's real algorithm.)
#pragma once

#include <cstdint>
#include <vector>

#include "tokenizer/tokenizer_info.h"

namespace xgr::tokenizer {

class TokenTrie {
 public:
  struct Node {
    // Token ids that end exactly at this node (duplicates share nodes).
    std::vector<std::int32_t> token_ids;
    // Sorted (byte, child) pairs.
    std::vector<std::pair<std::uint8_t, std::int32_t>> children;
  };

  // Builds the trie over all non-special tokens.
  explicit TokenTrie(const TokenizerInfo& info);

  std::int32_t Root() const { return 0; }
  const Node& GetNode(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t NumNodes() const { return nodes_.size(); }

  // Child on `byte` or -1.
  std::int32_t Child(std::int32_t node, std::uint8_t byte) const;

  // Longest token that is a prefix of `text` starting at `pos` (-1 if none;
  // cannot happen when the vocabulary contains all single bytes).
  std::int32_t LongestMatch(std::string_view text, std::size_t pos,
                            std::size_t* match_length) const;

 private:
  std::vector<Node> nodes_;
};

// Greedy longest-match tokenization against the trie. With byte-fallback
// vocabularies this always succeeds. Used by the mock LLM's target scripts
// and by jump-forward retokenization.
std::vector<std::int32_t> GreedyTokenize(const TokenTrie& trie,
                                         std::string_view text);

}  // namespace xgr::tokenizer
