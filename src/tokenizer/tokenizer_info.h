// Preprocessed tokenizer metadata used by mask generation.
//
// The adaptive token-mask cache checks the whole vocabulary in lexicographic
// order so that the persistent stack can roll back to the longest common
// prefix between consecutive tokens (§3.3: only ~30% of bytes need to be
// re-checked). This class precomputes that ordering and the common-prefix
// table once per vocabulary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tokenizer/vocabulary.h"

namespace xgr::tokenizer {

class TokenizerInfo {
 public:
  explicit TokenizerInfo(Vocabulary vocabulary);

  std::int32_t VocabSize() const { return vocabulary_.Size(); }
  const Vocabulary& Vocab() const { return vocabulary_; }
  const std::string& TokenBytes(std::int32_t id) const {
    return vocabulary_.tokens[static_cast<std::size_t>(id)];
  }
  bool IsSpecial(std::int32_t id) const {
    return is_special_[static_cast<std::size_t>(id)];
  }
  std::int32_t EosId() const { return vocabulary_.eos_id; }

  // Non-special token ids sorted by token bytes (ties by id).
  const std::vector<std::int32_t>& SortedTokenIds() const { return sorted_ids_; }
  // prefix_lengths[i] = longest common prefix of sorted token i and i-1
  // (0 for i == 0).
  const std::vector<std::int32_t>& SortedCommonPrefixLengths() const {
    return prefix_lengths_;
  }

  // Sum of byte lengths over non-special tokens, and the bytes remaining
  // after common-prefix skipping — the §3.3 "30% of characters" statistic.
  std::uint64_t TotalTokenBytes() const { return total_bytes_; }
  std::uint64_t BytesAfterPrefixSkip() const { return bytes_after_skip_; }

  // FNV-1a over every token's bytes + special flag, in id order — the
  // vocabulary pin embedded in serialized artifacts. Precomputed here so
  // artifact loads compare one u64 instead of rehashing the vocabulary
  // (O(vocab) would dominate the zero-copy mmap ready path).
  std::uint64_t ContentHash() const { return content_hash_; }

 private:
  Vocabulary vocabulary_;
  std::vector<bool> is_special_;
  std::vector<std::int32_t> sorted_ids_;
  std::vector<std::int32_t> prefix_lengths_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t bytes_after_skip_ = 0;
  std::uint64_t content_hash_ = 0;
};

}  // namespace xgr::tokenizer
