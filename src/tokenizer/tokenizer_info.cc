#include "tokenizer/tokenizer_info.h"

#include <algorithm>

#include "support/string_utils.h"

namespace xgr::tokenizer {

TokenizerInfo::TokenizerInfo(Vocabulary vocabulary)
    : vocabulary_(std::move(vocabulary)) {
  is_special_.assign(static_cast<std::size_t>(vocabulary_.Size()), false);
  for (std::int32_t id : vocabulary_.special_ids) {
    is_special_[static_cast<std::size_t>(id)] = true;
  }
  sorted_ids_.reserve(static_cast<std::size_t>(vocabulary_.Size()));
  for (std::int32_t id = 0; id < vocabulary_.Size(); ++id) {
    if (!is_special_[static_cast<std::size_t>(id)]) sorted_ids_.push_back(id);
  }
  std::sort(sorted_ids_.begin(), sorted_ids_.end(),
            [this](std::int32_t a, std::int32_t b) {
              const std::string& ta = vocabulary_.tokens[static_cast<std::size_t>(a)];
              const std::string& tb = vocabulary_.tokens[static_cast<std::size_t>(b)];
              return ta != tb ? ta < tb : a < b;
            });
  prefix_lengths_.resize(sorted_ids_.size(), 0);
  for (std::size_t i = 0; i < sorted_ids_.size(); ++i) {
    const std::string& token = vocabulary_.tokens[static_cast<std::size_t>(sorted_ids_[i])];
    total_bytes_ += token.size();
    if (i > 0) {
      const std::string& prev =
          vocabulary_.tokens[static_cast<std::size_t>(sorted_ids_[i - 1])];
      prefix_lengths_[i] = static_cast<std::int32_t>(CommonPrefixLength(prev, token));
    }
    bytes_after_skip_ += token.size() - static_cast<std::size_t>(prefix_lengths_[i]);
  }
  // Must byte-for-byte match what serialize::VocabularyHash historically
  // computed — this value is pinned inside committed artifacts.
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint8_t>(data[i]);
      h *= 0x100000001B3ull;
    }
  };
  for (std::int32_t id = 0; id < vocabulary_.Size(); ++id) {
    const std::string& token = TokenBytes(id);
    mix(token.data(), token.size());
    mix(IsSpecial(id) ? "\x01" : "\x00", 1);
  }
  content_hash_ = h;
}

}  // namespace xgr::tokenizer
