// Byte-level byte-pair encoding: trainer + encoder.
//
// Substrate replacing the Llama tokenizer data files (unavailable offline):
// tests and examples train small BPE vocabularies on synthetic corpora, and
// the encoder is used by jump-forward decoding to retokenize forced text.
// Training is the standard word-based algorithm: pre-tokenize into
// space-attached words, then iteratively merge the most frequent adjacent
// symbol pair.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tokenizer/vocabulary.h"

namespace xgr::tokenizer {

class BpeModel {
 public:
  // Trains merges until the vocabulary reaches `vocab_size` (includes the
  // 256 byte tokens; special tokens are appended on top afterwards).
  static BpeModel Train(const std::string& corpus, std::int32_t vocab_size);

  // Encodes text into token ids (merge-rank order, standard BPE semantics).
  std::vector<std::int32_t> Encode(const std::string& text) const;
  // Concatenates token byte strings.
  std::string Decode(const std::vector<std::int32_t>& ids) const;

  std::int32_t VocabSize() const { return static_cast<std::int32_t>(token_bytes_.size()); }
  const std::string& TokenBytes(std::int32_t id) const {
    return token_bytes_[static_cast<std::size_t>(id)];
  }

  // Converts to a Vocabulary with BOS/EOS special tokens appended.
  Vocabulary ToVocabulary() const;

 private:
  struct Merge {
    std::int32_t left;
    std::int32_t right;
    std::int32_t result;
  };

  std::vector<std::string> token_bytes_;      // id -> bytes (0..255 = bytes)
  std::vector<Merge> merges_;                 // in rank order
  std::unordered_map<std::uint64_t, std::int32_t> merge_rank_;  // pair -> rank

  static std::uint64_t PairKey(std::int32_t a, std::int32_t b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  std::vector<std::int32_t> EncodeWord(const std::string& word) const;
};

}  // namespace xgr::tokenizer
