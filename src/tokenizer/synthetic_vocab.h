// Synthetic Llama-3.1-like vocabulary builder.
//
// The paper's experiments run on the Llama-3.1 tokenizer (128k byte-level BPE
// vocabulary); its data files are not available offline, so this builder
// produces a vocabulary with matched statistics instead (see DESIGN.md §1):
//   * the 256 single-byte fallback tokens,
//   * English-like words via syllable composition, with leading-space and
//     capitalized variants (the bulk of real BPE vocabs),
//   * digit groups, whitespace runs, punctuation clusters and code/JSON
//     operator fragments (": ", "},", "():", ...),
//   * multi-byte UTF-8 tokens (CJK, accented latin) and tokens that split
//     UTF-8 characters (sub-UTF8 pieces, §3's byte-level motivation),
// Deterministic for a given (size, seed).
#pragma once

#include <cstdint>

#include "tokenizer/vocabulary.h"

namespace xgr::tokenizer {

struct SyntheticVocabOptions {
  std::int32_t size = 128000;
  std::uint64_t seed = 2024;
};

Vocabulary BuildSyntheticVocab(const SyntheticVocabOptions& options = {});

}  // namespace xgr::tokenizer
