#include "regex/regex.h"

#include <algorithm>

#include "support/logging.h"
#include "support/utf8.h"

namespace xgr::regex {

namespace {

// --- Parser ----------------------------------------------------------------

class RegexParser {
 public:
  explicit RegexParser(const std::string& pattern) : pattern_(pattern) {}

  RegexParseResult Run() {
    RegexParseResult result;
    auto root = ParseAlternate();
    if (!error_.empty()) {
      result.error = error_;
      return result;
    }
    if (pos_ != pattern_.size()) {
      result.error = Fail("unexpected character '" + std::string(1, pattern_[pos_]) + "'");
      return result;
    }
    result.root = std::move(root);
    return result;
  }

 private:
  std::string Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "regex error at offset " + std::to_string(pos_) + ": " + message;
    }
    return error_;
  }

  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  std::unique_ptr<RegexNode> MakeNode(NodeType type) {
    auto node = std::make_unique<RegexNode>();
    node->type = type;
    return node;
  }

  std::unique_ptr<RegexNode> ParseAlternate() {
    auto first = ParseConcat();
    if (!error_.empty()) return nullptr;
    if (AtEnd() || Peek() != '|') return first;
    auto alt = MakeNode(NodeType::kAlternate);
    alt->children.push_back(std::move(first));
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      auto next = ParseConcat();
      if (!error_.empty()) return nullptr;
      alt->children.push_back(std::move(next));
    }
    return alt;
  }

  std::unique_ptr<RegexNode> ParseConcat() {
    auto concat = MakeNode(NodeType::kConcat);
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto atom = ParseRepeat();
      if (!error_.empty()) return nullptr;
      if (atom != nullptr) concat->children.push_back(std::move(atom));
    }
    if (concat->children.empty()) return MakeNode(NodeType::kEmpty);
    if (concat->children.size() == 1) return std::move(concat->children[0]);
    return concat;
  }

  // Parses an atom with optional quantifier. Returns nullptr (without error)
  // for ignored anchors.
  std::unique_ptr<RegexNode> ParseRepeat() {
    if (Peek() == '^' || Peek() == '$') {
      ++pos_;  // full-match semantics: anchors are no-ops
      return nullptr;
    }
    auto atom = ParseAtom();
    if (!error_.empty()) return nullptr;
    while (!AtEnd()) {
      char c = Peek();
      int min_repeat;
      int max_repeat;
      if (c == '*') {
        min_repeat = 0;
        max_repeat = -1;
        ++pos_;
      } else if (c == '+') {
        min_repeat = 1;
        max_repeat = -1;
        ++pos_;
      } else if (c == '?') {
        min_repeat = 0;
        max_repeat = 1;
        ++pos_;
      } else if (c == '{') {
        std::size_t saved = pos_;
        if (!ParseBounds(&min_repeat, &max_repeat)) {
          if (!error_.empty()) return nullptr;  // well-formed but invalid
          pos_ = saved;  // not bounds-shaped: literal '{'
          break;
        }
      } else {
        break;
      }
      auto repeat = MakeNode(NodeType::kRepeat);
      repeat->min_repeat = min_repeat;
      repeat->max_repeat = max_repeat;
      repeat->children.push_back(std::move(atom));
      atom = std::move(repeat);
    }
    return atom;
  }

  bool ParseBounds(int* min_repeat, int* max_repeat) {
    XGR_DCHECK(Peek() == '{');
    ++pos_;
    std::size_t digits_start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (pos_ == digits_start) return false;
    *min_repeat = std::stoi(pattern_.substr(digits_start, pos_ - digits_start));
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *max_repeat = *min_repeat;
      return true;
    }
    if (AtEnd() || Peek() != ',') return false;
    ++pos_;
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *max_repeat = -1;
      return true;
    }
    digits_start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (pos_ == digits_start || AtEnd() || Peek() != '}') return false;
    *max_repeat = std::stoi(pattern_.substr(digits_start, pos_ - digits_start));
    ++pos_;
    if (*max_repeat < *min_repeat) {
      // {3,1} is bounds-shaped but inverted: an error (as in PCRE/Python),
      // not a literal-brace fallback.
      error_ = "numbers out of order in {} quantifier";
      return false;
    }
    return true;
  }

  std::unique_ptr<RegexNode> ParseAtom() {
    if (AtEnd()) {
      Fail("unexpected end of pattern");
      return nullptr;
    }
    char c = Peek();
    if (c == '(') {
      ++pos_;
      // Non-capturing group marker is accepted and ignored.
      if (pos_ + 1 < pattern_.size() && Peek() == '?' && pattern_[pos_ + 1] == ':') {
        pos_ += 2;
      }
      auto inner = ParseAlternate();
      if (!error_.empty()) return nullptr;
      if (AtEnd() || Peek() != ')') {
        Fail("')' expected");
        return nullptr;
      }
      ++pos_;
      return inner;
    }
    if (c == '[') return ParseCharClass();
    if (c == '.') {
      ++pos_;
      auto node = MakeNode(NodeType::kAnyChar);
      return node;
    }
    if (c == '*' || c == '+' || c == '?' || c == ')') {
      Fail("misplaced quantifier or ')'");
      return nullptr;
    }
    if (c == '\\') return ParseEscape(/*in_class=*/false);
    // Plain literal (possibly multi-byte UTF-8).
    DecodedChar decoded = DecodeUtf8(pattern_, pos_);
    if (!decoded.ok) {
      Fail("invalid UTF-8 in pattern");
      return nullptr;
    }
    pos_ += static_cast<std::size_t>(decoded.length);
    auto node = MakeNode(NodeType::kLiteral);
    node->literal = decoded.codepoint;
    return node;
  }

  // Builds a char-class node for \d \w \s (negated variants included), or a
  // literal node for escaped metacharacters.
  std::unique_ptr<RegexNode> ParseEscape(bool in_class) {
    XGR_DCHECK(Peek() == '\\');
    ++pos_;
    if (AtEnd()) {
      Fail("dangling backslash");
      return nullptr;
    }
    char c = pattern_[pos_++];
    auto char_class = [&](std::vector<CodepointRange> ranges, bool negated) {
      auto node = MakeNode(NodeType::kCharClass);
      node->ranges = NormalizeRanges(std::move(ranges), negated);
      return node;
    };
    switch (c) {
      case 'd': return char_class({{'0', '9'}}, false);
      case 'D': return char_class({{'0', '9'}}, true);
      case 'w': return char_class({{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}, false);
      case 'W': return char_class({{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}, true);
      case 's':
        return char_class({{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}, {'\f', '\f'}, {0x0B, 0x0B}}, false);
      case 'S':
        return char_class({{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}, {'\f', '\f'}, {0x0B, 0x0B}}, true);
      default: {
        std::uint32_t cp = 0;
        if (!DecodeEscapedChar(c, in_class, &cp)) return nullptr;
        auto node = MakeNode(NodeType::kLiteral);
        node->literal = cp;
        return node;
      }
    }
  }

  // Decodes single-character escapes shared by atoms and classes.
  bool DecodeEscapedChar(char c, bool in_class, std::uint32_t* out) {
    switch (c) {
      case 'n': *out = '\n'; return true;
      case 't': *out = '\t'; return true;
      case 'r': *out = '\r'; return true;
      case 'f': *out = '\f'; return true;
      case 'v': *out = 0x0B; return true;
      case '0': *out = 0; return true;
      case 'x': {
        if (pos_ + 2 > pattern_.size()) {
          Fail("truncated \\x escape");
          return false;
        }
        int value = 0;
        for (int i = 0; i < 2; ++i) {
          int digit = HexDigit(pattern_[pos_]);
          if (digit < 0) {
            Fail("invalid hex digit");
            return false;
          }
          value = value * 16 + digit;
          ++pos_;
        }
        *out = static_cast<std::uint32_t>(value);
        return true;
      }
      case 'u': {
        // \uXXXX or \u{X...}
        if (!AtEnd() && Peek() == '{') {
          ++pos_;
          std::uint32_t value = 0;
          bool any = false;
          while (!AtEnd() && Peek() != '}') {
            int digit = HexDigit(Peek());
            if (digit < 0) {
              Fail("invalid hex digit in \\u{...}");
              return false;
            }
            value = value * 16 + static_cast<std::uint32_t>(digit);
            any = true;
            ++pos_;
          }
          if (!any || AtEnd()) {
            Fail("malformed \\u{...}");
            return false;
          }
          ++pos_;  // '}'
          *out = value;
          return true;
        }
        if (pos_ + 4 > pattern_.size()) {
          Fail("truncated \\u escape");
          return false;
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
          int digit = HexDigit(pattern_[pos_]);
          if (digit < 0) {
            Fail("invalid hex digit");
            return false;
          }
          value = value * 16 + static_cast<std::uint32_t>(digit);
          ++pos_;
        }
        *out = value;
        return true;
      }
      default:
        // Escaped metacharacter or punctuation: take literally.
        (void)in_class;
        *out = static_cast<unsigned char>(c);
        return true;
    }
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  std::unique_ptr<RegexNode> ParseCharClass() {
    XGR_DCHECK(Peek() == '[');
    ++pos_;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      negated = true;
      ++pos_;
    }
    std::vector<CodepointRange> ranges;
    bool first = true;
    while (true) {
      if (AtEnd()) {
        Fail("unterminated character class");
        return nullptr;
      }
      if (Peek() == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      // One class item: literal char / escape / perl class.
      std::uint32_t lo;
      if (Peek() == '\\') {
        std::size_t saved = pos_;
        ++pos_;
        if (AtEnd()) {
          Fail("dangling backslash in class");
          return nullptr;
        }
        char c = pattern_[pos_];
        if (c == 'd' || c == 'w' || c == 's' || c == 'D' || c == 'W' || c == 'S') {
          pos_ = saved;
          auto sub = ParseEscape(/*in_class=*/true);
          if (sub == nullptr) return nullptr;
          for (const CodepointRange& r : sub->ranges) ranges.push_back(r);
          continue;
        }
        ++pos_;
        if (!DecodeEscapedChar(c, /*in_class=*/true, &lo)) return nullptr;
      } else {
        DecodedChar decoded = DecodeUtf8(pattern_, pos_);
        if (!decoded.ok) {
          Fail("invalid UTF-8 in character class");
          return nullptr;
        }
        lo = decoded.codepoint;
        pos_ += static_cast<std::size_t>(decoded.length);
      }
      std::uint32_t hi = lo;
      // Range "a-z" (a trailing '-' is a literal).
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() && pattern_[pos_ + 1] != ']') {
        ++pos_;
        if (Peek() == '\\') {
          ++pos_;
          if (AtEnd()) {
            Fail("dangling backslash in class range");
            return nullptr;
          }
          char c = pattern_[pos_++];
          if (!DecodeEscapedChar(c, /*in_class=*/true, &hi)) return nullptr;
        } else {
          DecodedChar decoded = DecodeUtf8(pattern_, pos_);
          if (!decoded.ok) {
            Fail("invalid UTF-8 in character class");
            return nullptr;
          }
          hi = decoded.codepoint;
          pos_ += static_cast<std::size_t>(decoded.length);
        }
        if (hi < lo) {
          Fail("inverted range in character class");
          return nullptr;
        }
      }
      ranges.push_back({lo, hi});
    }
    auto node = MakeNode(NodeType::kCharClass);
    node->negated = negated;
    node->ranges = NormalizeRanges(std::move(ranges), negated);
    return node;
  }

  const std::string& pattern_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- Compiler ---------------------------------------------------------------

// Thompson construction: returns (entry, exit) pair of states in `fsa`.
struct Fragment {
  std::int32_t entry;
  std::int32_t exit;
};

class RegexCompiler {
 public:
  explicit RegexCompiler(fsa::Fsa* fsa) : fsa_(fsa) {}

  Fragment Compile(const RegexNode& node) {
    switch (node.type) {
      case NodeType::kEmpty: {
        std::int32_t s = fsa_->AddState();
        return {s, s};
      }
      case NodeType::kLiteral: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        AddCodepointRangesPath(fsa_, entry, exit, {{node.literal, node.literal}});
        return {entry, exit};
      }
      case NodeType::kAnyChar: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        AddCodepointRangesPath(fsa_, entry, exit,
                               NormalizeRanges({{'\n', '\n'}}, /*negated=*/true));
        return {entry, exit};
      }
      case NodeType::kCharClass: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        AddCodepointRangesPath(fsa_, entry, exit, node.ranges);
        return {entry, exit};
      }
      case NodeType::kConcat: {
        XGR_CHECK(!node.children.empty());
        Fragment result = Compile(*node.children[0]);
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = Compile(*node.children[i]);
          fsa_->AddEpsilonEdge(result.exit, next.entry);
          result.exit = next.exit;
        }
        return result;
      }
      case NodeType::kAlternate: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        for (const auto& child : node.children) {
          Fragment f = Compile(*child);
          fsa_->AddEpsilonEdge(entry, f.entry);
          fsa_->AddEpsilonEdge(f.exit, exit);
        }
        return {entry, exit};
      }
      case NodeType::kRepeat:
        return CompileRepeat(node);
    }
    XGR_UNREACHABLE();
  }

 private:
  Fragment CompileRepeat(const RegexNode& node) {
    const RegexNode& child = *node.children[0];
    std::int32_t entry = fsa_->AddState();
    std::int32_t current = entry;
    // Mandatory prefix: min copies.
    for (int i = 0; i < node.min_repeat; ++i) {
      Fragment f = Compile(child);
      fsa_->AddEpsilonEdge(current, f.entry);
      current = f.exit;
    }
    if (node.max_repeat < 0) {
      // Kleene tail.
      std::int32_t loop = fsa_->AddState();
      std::int32_t exit = fsa_->AddState();
      fsa_->AddEpsilonEdge(current, loop);
      Fragment f = Compile(child);
      fsa_->AddEpsilonEdge(loop, f.entry);
      fsa_->AddEpsilonEdge(f.exit, loop);
      fsa_->AddEpsilonEdge(loop, exit);
      return {entry, exit};
    }
    // Bounded optional tail: (child?){max-min} unrolled.
    std::int32_t exit = fsa_->AddState();
    fsa_->AddEpsilonEdge(current, exit);
    for (int i = node.min_repeat; i < node.max_repeat; ++i) {
      Fragment f = Compile(child);
      fsa_->AddEpsilonEdge(current, f.entry);
      fsa_->AddEpsilonEdge(f.exit, exit);
      current = f.exit;
    }
    return {entry, exit};
  }

  fsa::Fsa* fsa_;
};

}  // namespace

std::vector<CodepointRange> NormalizeRanges(std::vector<CodepointRange> ranges,
                                            bool negated) {
  std::sort(ranges.begin(), ranges.end(),
            [](const CodepointRange& a, const CodepointRange& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  std::vector<CodepointRange> merged;
  for (const CodepointRange& r : ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1 &&
        merged.back().hi != kMaxCodepoint) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else if (!merged.empty() && r.lo <= merged.back().hi) {
      // overlap at the very top of the codepoint space
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  if (!negated) return merged;
  std::vector<CodepointRange> complement;
  std::uint32_t cursor = 0;
  for (const CodepointRange& r : merged) {
    if (r.lo > cursor) complement.push_back({cursor, r.lo - 1});
    cursor = r.hi == kMaxCodepoint ? kMaxCodepoint : r.hi + 1;
    if (r.hi == kMaxCodepoint) return complement;
  }
  if (cursor <= kMaxCodepoint) complement.push_back({cursor, kMaxCodepoint});
  return complement;
}

void AddCodepointRangesPath(fsa::Fsa* fsa, std::int32_t from, std::int32_t to,
                            const std::vector<CodepointRange>& ranges) {
  for (const CodepointRange& r : ranges) {
    // Surrogates are excluded by the UTF-8 compiler.
    for (const ByteRangeSeq& seq : CompileCodepointRange(r.lo, r.hi)) {
      fsa->AddByteSeqPath(from, seq, to);
    }
  }
}

RegexParseResult ParseRegex(const std::string& pattern) {
  return RegexParser(pattern).Run();
}

fsa::Fsa CompileRegexToFsa(const RegexNode& root) {
  fsa::Fsa fsa;
  RegexCompiler compiler(&fsa);
  Fragment f = compiler.Compile(root);
  fsa.SetStart(f.entry);
  fsa.SetAccepting(f.exit, true);
  return fsa;
}

fsa::Fsa CompileRegex(const std::string& pattern) {
  RegexParseResult parsed = ParseRegex(pattern);
  XGR_CHECK(parsed.ok()) << parsed.error;
  fsa::Fsa nfa = CompileRegexToFsa(*parsed.root);
  std::vector<std::int32_t> roots{nfa.Start()};
  fsa::Fsa result = EliminateEpsilon(nfa, &roots);
  result.SetStart(roots[0]);
  return result;
}

fsa::Dfa CompileRegexToDfa(const std::string& pattern) {
  return fsa::Determinize(CompileRegex(pattern));
}

}  // namespace xgr::regex
