// A self-contained regular-expression engine (parse + compile to byte FSA).
//
// Scope: the subset needed for JSON-Schema string patterns and for building
// the Outlines-like baseline (Willard & Louf 2023), which converts JSON
// Schemas into one big regex:
//   literals, '.', character classes [...] with ranges/negation and \d \w \s
//   escapes, grouping (...), alternation |, quantifiers * + ? {m} {m,} {m,n},
//   and Unicode literals (compiled byte-level via UTF-8 range splitting).
// Anchors ^/$ are accepted and ignored: matching is always full-match.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fsa/dfa.h"
#include "fsa/fsa.h"

namespace xgr::regex {

// --- AST -------------------------------------------------------------------

enum class NodeType : std::uint8_t {
  kEmpty,      // matches ""
  kLiteral,    // a single codepoint
  kAnyChar,    // '.' = any codepoint except '\n'
  kCharClass,  // [..] over codepoints
  kConcat,
  kAlternate,
  kRepeat,  // {min, max}, max = -1 for unbounded
};

struct CodepointRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  friend bool operator==(const CodepointRange&, const CodepointRange&) = default;
};

struct RegexNode {
  NodeType type = NodeType::kEmpty;
  std::uint32_t literal = 0;                // kLiteral
  std::vector<CodepointRange> ranges;       // kCharClass (normalized, sorted)
  bool negated = false;                     // kCharClass
  std::vector<std::unique_ptr<RegexNode>> children;
  int min_repeat = 0;                       // kRepeat
  int max_repeat = -1;                      // kRepeat; -1 = unbounded
};

// --- API -------------------------------------------------------------------

struct RegexParseResult {
  std::unique_ptr<RegexNode> root;  // null on error
  std::string error;
  bool ok() const { return root != nullptr; }
};

RegexParseResult ParseRegex(const std::string& pattern);

// Compiles the AST into a byte-level NFA (with epsilon edges).
fsa::Fsa CompileRegexToFsa(const RegexNode& root);

// One-step convenience: parse + compile + epsilon-eliminate. Throws
// xgr::CheckError on parse failure.
fsa::Fsa CompileRegex(const std::string& pattern);

// Parse + compile + determinize.
fsa::Dfa CompileRegexToDfa(const std::string& pattern);

// Normalizes a list of codepoint ranges: sort, merge overlaps. If `negated`,
// complements against [0, 0x10FFFF].
std::vector<CodepointRange> NormalizeRanges(std::vector<CodepointRange> ranges,
                                            bool negated);

// Adds FSA states/edges matching one codepoint from `ranges` between two
// existing states (shared with the grammar compiler's character classes).
void AddCodepointRangesPath(fsa::Fsa* fsa, std::int32_t from, std::int32_t to,
                            const std::vector<CodepointRange>& ranges);

}  // namespace xgr::regex
