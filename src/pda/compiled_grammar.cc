#include "pda/compiled_grammar.h"

#include <mutex>
#include <sstream>

#include "support/logging.h"

namespace xgr::pda {

namespace {

using grammar::Expr;
using grammar::ExprId;
using grammar::ExprType;
using grammar::Grammar;
using grammar::RuleId;

struct Fragment {
  std::int32_t entry;
  std::int32_t exit;
};

// Thompson-style construction of grammar expressions into the shared
// automaton. Produces epsilon edges freely; they are removed afterwards.
class ExprCompiler {
 public:
  ExprCompiler(const Grammar& g, fsa::Fsa* fsa) : grammar_(g), fsa_(fsa) {}

  Fragment Compile(ExprId expr_id) {  // NOLINT(misc-no-recursion)
    const Expr& expr = grammar_.GetExpr(expr_id);
    switch (expr.type) {
      case ExprType::kEmpty: {
        std::int32_t s = fsa_->AddState();
        return {s, s};
      }
      case ExprType::kByteString: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        fsa_->AddLiteralPath(entry, expr.bytes, exit);
        return {entry, exit};
      }
      case ExprType::kCharClass: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        regex::AddCodepointRangesPath(fsa_, entry, exit, expr.ranges);
        return {entry, exit};
      }
      case ExprType::kRuleRef: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        fsa_->AddRuleEdge(entry, expr.rule_ref, exit);
        return {entry, exit};
      }
      case ExprType::kSequence: {
        Fragment result = Compile(expr.children[0]);
        for (std::size_t i = 1; i < expr.children.size(); ++i) {
          Fragment next = Compile(expr.children[i]);
          fsa_->AddEpsilonEdge(result.exit, next.entry);
          result.exit = next.exit;
        }
        return result;
      }
      case ExprType::kChoice: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t exit = fsa_->AddState();
        for (ExprId child : expr.children) {
          Fragment f = Compile(child);
          fsa_->AddEpsilonEdge(entry, f.entry);
          fsa_->AddEpsilonEdge(f.exit, exit);
        }
        return {entry, exit};
      }
      case ExprType::kRepeat: {
        std::int32_t entry = fsa_->AddState();
        std::int32_t current = entry;
        for (std::int32_t i = 0; i < expr.min_repeat; ++i) {
          Fragment f = Compile(expr.children[0]);
          fsa_->AddEpsilonEdge(current, f.entry);
          current = f.exit;
        }
        if (expr.max_repeat == -1) {
          std::int32_t loop = fsa_->AddState();
          std::int32_t exit = fsa_->AddState();
          fsa_->AddEpsilonEdge(current, loop);
          Fragment f = Compile(expr.children[0]);
          fsa_->AddEpsilonEdge(loop, f.entry);
          fsa_->AddEpsilonEdge(f.exit, loop);
          fsa_->AddEpsilonEdge(loop, exit);
          return {entry, exit};
        }
        std::int32_t exit = fsa_->AddState();
        fsa_->AddEpsilonEdge(current, exit);
        for (std::int32_t i = expr.min_repeat; i < expr.max_repeat; ++i) {
          Fragment f = Compile(expr.children[0]);
          fsa_->AddEpsilonEdge(current, f.entry);
          fsa_->AddEpsilonEdge(f.exit, exit);
          current = f.exit;
        }
        return {entry, exit};
      }
    }
    XGR_UNREACHABLE();
  }

 private:
  const Grammar& grammar_;
  fsa::Fsa* fsa_;
};

// Assigns each node to the rule whose subgraph contains it. Rule subgraphs
// never share nodes (edges do not cross rules; rule-ref edges point to return
// positions within the same rule).
std::vector<RuleId> AssignNodeRules(const fsa::Fsa& fsa,
                                    const std::vector<std::int32_t>& rule_starts) {
  std::vector<RuleId> node_rule(static_cast<std::size_t>(fsa.NumStates()),
                                grammar::kInvalidRule);
  for (std::size_t r = 0; r < rule_starts.size(); ++r) {
    std::vector<std::int32_t> queue{rule_starts[r]};
    while (!queue.empty()) {
      std::int32_t node = queue.back();
      queue.pop_back();
      if (node_rule[static_cast<std::size_t>(node)] != grammar::kInvalidRule) continue;
      node_rule[static_cast<std::size_t>(node)] = static_cast<RuleId>(r);
      for (const fsa::Edge& e : fsa.EdgesFrom(node)) queue.push_back(e.target);
    }
  }
  return node_rule;
}

}  // namespace

fsa::Fsa ExtractContextFsa(const fsa::Fsa& automaton,
                           const std::vector<std::int32_t>& rule_starts,
                           RuleId rule) {
  // Algorithm 2: for every edge s --<rule>--> t, DFS from t over character
  // edges only; stop (and mark final) at accepting nodes or nodes owning
  // rule-reference edges. Merge all extracted subgraphs by union.
  fsa::Fsa result;  // starts empty: no states => empty language
  bool any = false;
  for (std::int32_t s = 0; s < automaton.NumStates(); ++s) {
    for (const fsa::Edge& ref_edge : automaton.EdgesFrom(s)) {
      if (ref_edge.kind != fsa::EdgeKind::kRuleRef || ref_edge.rule_ref != rule) {
        continue;
      }
      // EXTRACT_ONE from the return position t.
      fsa::Fsa delta;
      std::unordered_map<std::int32_t, std::int32_t> visited;  // old -> delta id
      struct StackItem {
        std::int32_t old_node;
      };
      std::vector<std::int32_t> stack{ref_edge.target};
      auto intern = [&](std::int32_t old_node) {
        auto it = visited.find(old_node);
        if (it != visited.end()) return it->second;
        std::int32_t id = delta.AddState();
        visited.emplace(old_node, id);
        return id;
      };
      delta.SetStart(intern(ref_edge.target));
      while (!stack.empty()) {
        std::int32_t old_node = stack.back();
        stack.pop_back();
        std::int32_t delta_node = intern(old_node);
        bool has_rule_edge = false;
        for (const fsa::Edge& e : automaton.EdgesFrom(old_node)) {
          if (e.kind == fsa::EdgeKind::kRuleRef) has_rule_edge = true;
        }
        if (automaton.IsAccepting(old_node) || has_rule_edge) {
          // Matching may continue into a child rule or pop further; the
          // extracted context stops here.
          delta.SetAccepting(delta_node, true);
          continue;
        }
        for (const fsa::Edge& e : automaton.EdgesFrom(old_node)) {
          XGR_DCHECK(e.kind == fsa::EdgeKind::kByteRange);
          bool seen = visited.count(e.target) != 0;
          std::int32_t target = intern(e.target);
          delta.AddByteEdge(delta_node, e.min_byte, e.max_byte, target);
          if (!seen) stack.push_back(e.target);
        }
      }
      result = any ? fsa::UnionFsa(result, delta) : std::move(delta);
      any = true;
    }
  }
  (void)rule_starts;
  if (!any) {
    // Rule is never referenced (typically the root): nothing may follow it.
    fsa::Fsa empty;
    std::int32_t s = empty.AddState();
    empty.SetStart(s);  // non-accepting, no edges: empty language
    return empty;
  }
  std::vector<std::int32_t> roots{result.Start()};
  fsa::Fsa cleaned = fsa::EliminateEpsilon(result, &roots);
  cleaned.SetStart(roots[0]);
  return cleaned;
}

std::shared_ptr<const CompiledGrammar> CompiledGrammar::Compile(
    const grammar::Grammar& input, const CompileOptions& options) {
  auto result = std::shared_ptr<CompiledGrammar>(new CompiledGrammar());
  result->options_ = options;
  result->grammar_ = input;  // private copy we may transform
  Grammar& g = result->grammar_;
  // Grammar optimizer pipeline (§3.4). The historical top-level
  // `rule_inlining` toggle wins over the optimizer's own flag so that the
  // Table-3 ablation rows keep their meaning.
  grammar::OptimizerOptions optimizer = options.optimizer;
  optimizer.rule_inlining = options.rule_inlining;
  grammar::OptimizeGrammar(&g, optimizer, &result->pass_stats_);
  g.Validate();

  // Thompson construction: one automaton, one start state per rule.
  fsa::Fsa fsa;
  std::vector<std::int32_t> rule_starts;
  rule_starts.reserve(static_cast<std::size_t>(g.NumRules()));
  ExprCompiler compiler(g, &fsa);
  for (RuleId r = 0; r < g.NumRules(); ++r) {
    std::int32_t start = fsa.AddState();
    rule_starts.push_back(start);
    Fragment body = compiler.Compile(g.GetRule(r).body);
    fsa.AddEpsilonEdge(start, body.entry);
    fsa.SetAccepting(body.exit, true);
  }

  fsa = fsa::EliminateEpsilon(fsa, &rule_starts);
  if (options.node_merging) {
    fsa = fsa::MergeEquivalentNodes(fsa, &rule_starts);
  }

  result->automaton_ = std::move(fsa);
  result->rule_starts_ = std::move(rule_starts);
  result->root_rule_ = g.RootRule();
  result->node_rule_ = AssignNodeRules(result->automaton_, result->rule_starts_);

  if (options.context_expansion) {
    result->context_automaton_ = std::make_unique<fsa::Fsa>(
        BuildGlobalContextAutomaton(result->automaton_, result->node_rule_,
                                    g.NumRules(), &result->context_starts_));
  }
  return result;
}

fsa::Fsa BuildGlobalContextAutomaton(const fsa::Fsa& automaton,
                                     const std::vector<RuleId>& node_rule,
                                     std::int32_t num_rules,
                                     std::vector<std::int32_t>* starts) {
  fsa::Fsa ctx;
  // Per-rule entry states. The root (or any unreferenced rule) keeps a dead
  // entry: once it completes, generation is over and no byte may follow.
  starts->assign(static_cast<std::size_t>(num_rules), -1);
  for (std::int32_t r = 0; r < num_rules; ++r) {
    (*starts)[static_cast<std::size_t>(r)] = ctx.AddState();
  }
  // Mirror state for each PDA node that participates in some suffix subgraph,
  // created on demand.
  std::vector<std::int32_t> mirror(static_cast<std::size_t>(automaton.NumStates()), -1);
  std::vector<std::int32_t> worklist;
  auto mirror_of = [&](std::int32_t node) {
    std::int32_t& m = mirror[static_cast<std::size_t>(node)];
    if (m == -1) {
      m = ctx.AddState();
      worklist.push_back(node);
    }
    return m;
  };

  // Seed: every rule-reference edge s --<R>--> t contributes "what can follow
  // R" starting at t's mirror.
  for (std::int32_t s = 0; s < automaton.NumStates(); ++s) {
    for (const fsa::Edge& e : automaton.EdgesFrom(s)) {
      if (e.kind != fsa::EdgeKind::kRuleRef) continue;
      ctx.AddEpsilonEdge((*starts)[static_cast<std::size_t>(e.rule_ref)],
                         mirror_of(e.target));
    }
  }

  // Expand mirrors: copy character edges; a node owning rule-reference edges
  // is an opaque frontier (mark accepting: anything beyond is unknown); a
  // node accepting in its own rule splices into that rule's suffix language.
  while (!worklist.empty()) {
    std::int32_t node = worklist.back();
    worklist.pop_back();
    std::int32_t m = mirror[static_cast<std::size_t>(node)];
    bool has_rule_edge = false;
    for (const fsa::Edge& e : automaton.EdgesFrom(node)) {
      if (e.kind == fsa::EdgeKind::kRuleRef) {
        has_rule_edge = true;
      } else if (e.kind == fsa::EdgeKind::kByteRange) {
        ctx.AddByteEdge(m, e.min_byte, e.max_byte, mirror_of(e.target));
      }
    }
    if (has_rule_edge) ctx.SetAccepting(m, true);
    if (automaton.IsAccepting(node)) {
      RuleId owner = node_rule[static_cast<std::size_t>(node)];
      ctx.AddEpsilonEdge(m, (*starts)[static_cast<std::size_t>(owner)]);
    }
  }
  return ctx;
}

const grammar::Grammar& CompiledGrammar::SourceGrammar() const {
  if (!grammar_parser_) return grammar_;
  // A single global mutex is enough: the parse runs at most once per loaded
  // artifact, and callers of the AST (re-serialization, debug names, tests)
  // are far off the decode hot path.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (lazy_grammar_ == nullptr) {
    lazy_grammar_ = std::make_shared<const grammar::Grammar>(grammar_parser_());
  }
  return *lazy_grammar_;
}

std::string CompiledGrammar::StatsString() const {
  std::ostringstream out;
  out << "rules=" << NumRules() << " nodes=" << NumNodes()
      << " edges=" << automaton_.TotalEdges();
  if (context_automaton_ != nullptr) {
    out << " ctx_fsa_states=" << context_automaton_->NumStates();
  }
  return out.str();
}

}  // namespace xgr::pda
