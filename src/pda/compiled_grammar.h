// Compiled pushdown automaton for a grammar (the PDA variant of Appendix A).
//
// Every rule is compiled into a byte-level finite automaton; all rule
// automata share one dense node-id space. Edges are byte ranges or rule
// references. The compile pipeline applies, in order and under option flags
// (each is a row of the paper's Table 3 ablation):
//   1. grammar optimizer pass pipeline                  (§3.4,
//      grammar_optimizer.h: normalize, eps-elim, unit-collapse, inline,
//      atom-merge, fsa-minimize, dead-compact)
//   2. Thompson construction (byte level, UTF-8 aware)  (§3)
//   3. epsilon elimination
//   4. node merging                                     (§3.4)
//   5. context expansion: expanded-suffix FSA per rule  (§3.2, Algorithm 2)
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fsa/fsa.h"
#include "grammar/grammar.h"
#include "grammar/grammar_optimizer.h"

namespace xgr::serialize_detail {
struct CompiledGrammarAccess;  // binary (de)serialization, src/serialize
}  // namespace xgr::serialize_detail

namespace xgr::artifact_detail {
struct PdaAccess;  // zero-copy flat-artifact assembly, src/artifact
}  // namespace xgr::artifact_detail

namespace xgr::pda {

struct CompileOptions {
  // `rule_inlining` is the historical Table-3 toggle; it overrides
  // `optimizer.rule_inlining` so `AllDisabled()` + `rule_inlining = true`
  // keeps meaning "inlining only". The remaining grammar passes are switched
  // through `optimizer` (see grammar_optimizer.h for the pass list).
  bool rule_inlining = true;
  bool node_merging = true;
  bool context_expansion = true;
  grammar::OptimizerOptions optimizer;

  static CompileOptions AllDisabled() {
    CompileOptions o;
    o.rule_inlining = false;
    o.node_merging = false;
    o.context_expansion = false;
    o.optimizer = grammar::OptimizerOptions::AllDisabled();
    return o;
  }
};

class CompiledGrammar {
 public:
  // Compiles a copy of `g`. The returned object is immutable and shareable
  // across matchers/threads.
  static std::shared_ptr<const CompiledGrammar> Compile(
      const grammar::Grammar& g, const CompileOptions& options = {});

  const fsa::Fsa& Automaton() const { return automaton_; }
  std::int32_t NumNodes() const { return automaton_.NumStates(); }
  std::int32_t NumRules() const { return static_cast<std::int32_t>(rule_starts_.size()); }
  grammar::RuleId RootRule() const { return root_rule_; }
  std::int32_t RuleStartNode(grammar::RuleId rule) const {
    return rule_starts_[static_cast<std::size_t>(rule)];
  }
  // The rule whose automaton contains `node`.
  grammar::RuleId NodeRule(std::int32_t node) const {
    return node_rule_[static_cast<std::size_t>(node)];
  }
  // Global expanded-suffix automaton (context expansion, §3.2). One shared
  // automaton holds every rule's suffix language; ContextStart(rule) is the
  // entry state for "strings that may legally follow a completed `rule`".
  // When a parent rule completes in turn, an epsilon edge splices into that
  // parent's own suffix language (our sound extension of Algorithm 2: the
  // paper stops at final states and keeps such tokens context-dependent; we
  // follow the pop upward, which rejects strictly more tokens and is what
  // yields the ~90% context-dependent reduction on JSON). Accepting states
  // mark positions where a child rule begins: beyond them the expansion
  // cannot see, so any remaining bytes stay context-dependent.
  // nullptr when context expansion is disabled.
  const fsa::Fsa* ContextAutomaton() const { return context_automaton_.get(); }
  std::int32_t ContextStart(grammar::RuleId rule) const {
    return context_starts_[static_cast<std::size_t>(rule)];
  }

  // The transformed grammar the automaton was built from (post optimizer).
  // On trusted flat-artifact loads the AST parse is deferred to the first
  // call (the decode path never needs it); thread-safe, may throw
  // StatusError if the deferred blob is corrupt.
  const grammar::Grammar& SourceGrammar() const;
  const CompileOptions& Options() const { return options_; }
  // Per-pass before/after stats from the grammar optimizer pipeline that ran
  // inside Compile. Empty on deserialized artifacts (stats are measurements,
  // not grammar content, and artifacts stay bit-identical across runs).
  const std::vector<grammar::PassStats>& PassStats() const {
    return pass_stats_;
  }
  const std::string& RuleName(grammar::RuleId rule) const {
    return SourceGrammar().GetRule(rule).name;
  }

  std::string StatsString() const;

 private:
  friend struct xgr::serialize_detail::CompiledGrammarAccess;
  friend struct xgr::artifact_detail::PdaAccess;

  CompiledGrammar() = default;

  grammar::Grammar grammar_;
  // Set only by the flat-artifact loader on trusted reopens: parses the
  // embedded grammar blob on demand (it owns whatever keeps the blob alive).
  // When set, `grammar_` is an empty placeholder and `lazy_grammar_` caches
  // the parse, installed with atomic shared_ptr ops (racing parsers are
  // benign — first store wins, the loser's copy is dropped).
  std::function<grammar::Grammar()> grammar_parser_;
  mutable std::shared_ptr<const grammar::Grammar> lazy_grammar_;
  CompileOptions options_;
  std::vector<grammar::PassStats> pass_stats_;
  fsa::Fsa automaton_;
  std::vector<std::int32_t> rule_starts_;
  std::vector<grammar::RuleId> node_rule_;
  std::unique_ptr<fsa::Fsa> context_automaton_;
  std::vector<std::int32_t> context_starts_;
  grammar::RuleId root_rule_ = grammar::kInvalidRule;
  // Keep-alive for frozen-view automata (the mmap'd artifact the edges point
  // into); null on compiled/deserialized instances.
  std::shared_ptr<const void> backing_;
};

// Algorithm 2 exactly as printed in the paper (single-rule, stop at final
// states): extracts the expanded-suffix FSA of `rule`. Kept for unit tests
// and for comparing against the spliced variant the compiler uses.
fsa::Fsa ExtractContextFsa(const fsa::Fsa& automaton,
                           const std::vector<std::int32_t>& rule_starts,
                           grammar::RuleId rule);

// The spliced global variant used by CompiledGrammar (see ContextAutomaton).
// Writes the per-rule entry states into `starts`.
fsa::Fsa BuildGlobalContextAutomaton(const fsa::Fsa& automaton,
                                     const std::vector<grammar::RuleId>& node_rule,
                                     std::int32_t num_rules,
                                     std::vector<std::int32_t>* starts);

}  // namespace xgr::pda
