// Structural-tag function calling: free prose with schema-constrained tool
// calls embedded at trigger markers (the reference implementation's
// "structural tag" grammar source).
//
//   $ ./build/examples/function_calling
//
// The model may explain itself in free text, but the moment it emits the
// trigger "<function=" it must complete a registered tool call — the full
// begin marker, a body conforming to that tool's JSON schema, then the end
// marker — after which prose may resume. Unconstrained, the flaky mock model
// produces calls a dispatcher cannot parse; with the structural-tag grammar
// every call dispatches.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "engine/serving_engine.h"
#include "grammar/structural_tag.h"
#include "json/json.h"
#include "tokenizer/synthetic_vocab.h"

namespace {

// Extracts the body of the first "<function=name>...</function>" call;
// returns false when no complete call is present.
bool ExtractCall(const std::string& text, std::string* name, std::string* body) {
  std::size_t begin = text.find("<function=");
  if (begin == std::string::npos) return false;
  std::size_t name_end = text.find('>', begin);
  std::size_t end = text.find("</function>", begin);
  if (name_end == std::string::npos || end == std::string::npos) return false;
  *name = text.substr(begin + 10, name_end - begin - 10);
  *body = text.substr(name_end + 1, end - name_end - 1);
  return true;
}

}  // namespace

int main() {
  using namespace xgr;  // NOLINT

  // Two registered tools with distinct signatures.
  std::vector<grammar::StructuralTag> tags = {
      {"<function=get_weather>",
       R"({"type":"object","properties":{
            "city":{"type":"string"},
            "unit":{"enum":["celsius","fahrenheit"]}},
          "required":["city","unit"],"additionalProperties":false})",
       "</function>"},
      {"<function=get_time>",
       R"({"type":"object","properties":{"tz":{"type":"string"}},
          "required":["tz"],"additionalProperties":false})",
       "</function>"},
  };
  grammar::Grammar tag_grammar =
      grammar::BuildStructuralTagGrammar(tags, {"<function="});

  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));

  // Part 1 — free-text mode: prose around the call is legal. A faithful
  // model's natural transcript (explanation + call + closing remark) passes
  // the grammar untouched; the call still dispatches.
  {
    std::printf("=== free-text mode (faithful model) ===\n");
    const std::string intended =
        "Let me check that for you. <function=get_weather>"
        R"({"city":"Santa Clara","unit":"celsius"})"
        "</function> Report coming up.";
    engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 99});
    baselines::DecoderFactory factory(baselines::EngineKind::kXGrammar, info);
    factory.PrepareGrammar(tag_grammar);

    engine::EngineOptions options;
    options.schedule = engine::GrammarSchedule::kOverlap;
    options.time_scale = 0.0;
    options.max_new_tokens = 160;
    engine::ServingEngine eng(options, llm);
    engine::EngineRequest request;
    request.decoder = factory.NewDecoder();
    request.target_text = intended;
    auto result = eng.RunBatch({request});
    const std::string& out = result.requests[0].output_text;
    std::string tool;
    std::string body;
    bool ok = ExtractCall(out, &tool, &body) && json::Parse(body).ok();
    std::printf("  output: %s\n  -> %s\n\n", out.c_str(),
                ok ? ("dispatched " + tool + " with " + body).c_str()
                   : "NO DISPATCHABLE CALL");
  }

  // Part 2 — strict mode (allow_free_text = false, require_invocation): the
  // output must be exactly a sequence of tool calls. A flaky model (15%
  // chance per step of drifting into prose) produces undispatchable text
  // unconstrained; under the tag grammar the prose tokens are masked away
  // and every attempt dispatches.
  grammar::StructuralTagOptions strict;
  strict.allow_free_text = false;
  strict.require_invocation = true;
  strict.max_invocations = 1;
  grammar::Grammar strict_grammar =
      grammar::BuildStructuralTagGrammar(tags, {"<function="}, strict);

  const std::string intended_call =
      "<function=get_time>"
      R"({"tz":"America/Los_Angeles"})"
      "</function>";
  engine::MockLlm llm(info, {.derail_probability = 0.15, .seed = 99});
  baselines::DecoderFactory factory(baselines::EngineKind::kXGrammar, info);
  factory.PrepareGrammar(strict_grammar);

  for (bool constrained : {false, true}) {
    std::printf("=== strict mode, %s (flaky model) ===\n",
                constrained ? "with structural tags" : "unconstrained");
    int dispatched = 0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      engine::EngineOptions options;
      options.schedule = constrained ? engine::GrammarSchedule::kOverlap
                                     : engine::GrammarSchedule::kNone;
      options.time_scale = 0.0;
      options.max_new_tokens = 128;
      engine::ServingEngine eng(options, llm);
      engine::EngineRequest request;
      if (constrained) request.decoder = factory.NewDecoder();
      request.target_text = intended_call;
      request.seed = static_cast<std::uint64_t>(attempt) * 31 + 7;
      auto result = eng.RunBatch({request});
      const std::string& out = result.requests[0].output_text;

      std::string tool;
      std::string body;
      bool ok = ExtractCall(out, &tool, &body) && json::Parse(body).ok();
      dispatched += ok ? 1 : 0;
      std::printf("  attempt %d: %-56s -> %s\n", attempt,
                  out.substr(0, 56).c_str(),
                  ok ? ("dispatch " + tool).c_str() : "NO DISPATCHABLE CALL");
    }
    std::printf("  dispatchable calls: %d/5\n\n", dispatched);
  }
  return 0;
}
