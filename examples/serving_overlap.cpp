// Serving co-design demo (§3.5): the same batch served three ways —
// unconstrained, grammar-serial, and grammar-overlapped — showing that
// overlapping mask generation with the (simulated) GPU forward pass makes
// structured generation effectively free, while serializing it does not.
//
//   $ ./build/examples/serving_overlap
#include <cstdio>

#include "baselines/factory.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "tokenizer/synthetic_vocab.h"

int main() {
  using namespace xgr;  // NOLINT

  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 8}));
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 21});
  auto tasks = datasets::GenerateSchemaTasks(1, 77);
  const int batch = 8;

  struct Mode {
    const char* label;
    engine::GrammarSchedule schedule;
    baselines::EngineKind kind;
  };
  const Mode modes[] = {
      {"unconstrained", engine::GrammarSchedule::kNone, baselines::EngineKind::kXGrammar},
      {"grammar, serial (vLLM-style)", engine::GrammarSchedule::kSerial,
       baselines::EngineKind::kLlamaCpp},
      {"grammar, overlapped (XGrammar)", engine::GrammarSchedule::kOverlap,
       baselines::EngineKind::kXGrammar},
  };

  std::printf("Serving one batch of %d requests, Llama-3.1-8B (H100) profile\n\n",
              batch);
  std::printf("%-34s %10s %12s %10s\n", "mode", "TPOT(ms)", "decode(ms)", "steps");
  for (const Mode& mode : modes) {
    engine::EngineOptions options;
    options.profile = engine::ModelProfile::Llama31_8B_H100();
    options.schedule = mode.schedule;
    options.max_new_tokens = 24;
    engine::ServingEngine eng(options, llm);

    baselines::DecoderFactory factory(mode.kind, info);
    factory.PrepareSchema(tasks[0].schema);
    std::vector<engine::EngineRequest> requests(batch);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (mode.schedule != engine::GrammarSchedule::kNone) {
        requests[i].decoder = factory.NewDecoder();
      }
      requests[i].target_text = tasks[0].canonical_answer.Dump();
      requests[i].seed = i + 1;
    }
    auto result = eng.RunBatch(requests);
    std::printf("%-34s %10.2f %12.1f %10lld\n", mode.label, result.TpotMs(),
                result.decode_wall_ms, static_cast<long long>(result.decode_steps));
  }
  std::printf(
      "\nThe overlapped engine hides mask generation behind the forward pass\n"
      "(Figure 8); the serial baseline pays it on the critical path.\n");
  return 0;
}
