// The engine through its C ABI — the integration surface for WASM/JS and
// mobile bindings (Appendix C). Everything below is plain C89-style usage:
// opaque handles, status codes, caller-owned buffers. (The file compiles as
// C++ only because the build is; no C++ constructs are used.)
//
//   $ ./build/examples/c_api_quickstart
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "ffi/c_api.h"

static void die(const char* where) {
  char message[256];
  xgr_last_error(message, sizeof(message));
  fprintf(stderr, "%s: %s\n", where, message);
  exit(1);
}

int main(void) {
  /* 1. Tokenizer (here: the synthetic benchmark vocabulary). */
  xgr_tokenizer* tok = xgr_tokenizer_create_synthetic(16000, 3);
  if (!tok) die("tokenizer");
  printf("vocab=%d eos=%d\n", xgr_tokenizer_vocab_size(tok),
         xgr_tokenizer_eos_id(tok));

  /* 2. Compile a grammar (EBNF; JSON Schema / regex / builtin JSON work the
   * same way). Compilation bundles the PDA build and the token-mask cache. */
  xgr_grammar* grammar = xgr_grammar_compile_ebnf(
      "root ::= \"move(\" (\"north\" | \"south\") \",\" [1-9] [0-9]* \")\"",
      "root", tok);
  if (!grammar) die("grammar");

  /* 3. Matcher + mask buffer. */
  xgr_matcher* matcher = xgr_matcher_create(grammar);
  if (!matcher) die("matcher");
  size_t words = xgr_matcher_mask_words(matcher);
  uint64_t* mask = (uint64_t*)malloc(words * sizeof(uint64_t));

  /* 4. Greedy constrained generation: at each step take the first allowed
   * token (a real integration samples from masked logits instead). */
  char text[128];
  size_t text_len = 0;
  int32_t eos = xgr_tokenizer_eos_id(tok);
  for (int step = 0; step < 32; ++step) {
    /* Forced spans can be appended wholesale (jump-forward, Appendix B). */
    char forced[64];
    xgr_matcher_find_jump_forward_string(matcher, forced, sizeof(forced));
    if (xgr_matcher_can_terminate(matcher)) break;

    if (xgr_matcher_fill_next_token_bitmask(matcher, mask, words) != XGR_OK) {
      die("mask");
    }
    int32_t pick = -1;
    for (int32_t id = 0; id < xgr_tokenizer_vocab_size(tok); ++id) {
      if (id != eos && ((mask[(size_t)id / 64] >> ((size_t)id % 64)) & 1u)) {
        pick = id;
        break;
      }
    }
    if (pick < 0) break;
    if (xgr_matcher_accept_token(matcher, pick) != 1) die("accept");
    (void)text_len;
    printf("step %2d: forced='%s' accepted token %d\n", step, forced, pick);
  }
  printf("terminated legally: %s\n",
         xgr_matcher_can_terminate(matcher) ? "yes" : "no");
  (void)text;

  /* 5. Branch: a fork explores an alternative continuation while the trunk
   * stays put (Section 3.3's speculative/tree decoding). */
  xgr_matcher* fork = xgr_matcher_fork(matcher);
  if (!fork) die("fork");
  printf("fork can terminate too: %s\n",
         xgr_matcher_can_terminate(fork) ? "yes" : "no");

  xgr_matcher_destroy(fork);
  free(mask);
  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
  xgr_tokenizer_destroy(tok);
  return 0;
}
