// Developer tool: compile a grammar from any source and inspect the result —
// automaton and cache statistics, memory, and interactive acceptance checks.
//
//   $ ./build/examples/grammar_inspector ebnf   'root ::= "a" | "b" root'
//   $ ./build/examples/grammar_inspector regex  '-?[0-9]+([.][0-9]+)?'
//   $ ./build/examples/grammar_inspector schema '{"type":"integer"}'
//   $ ./build/examples/grammar_inspector json           # builtin grammars
//   $ ./build/examples/grammar_inspector sql
//
// A probe string per input line on stdin is matched against the grammar;
// "<prefix>..." marks inputs that are a live prefix but not yet complete.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "grammar/regex_to_grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"

namespace {

xgr::grammar::Grammar FromArgs(int argc, char** argv) {
  using namespace xgr::grammar;  // NOLINT
  const std::string kind = argc > 1 ? argv[1] : "json";
  if (kind == "json") return BuiltinJsonGrammar();
  if (kind == "xml") return BuiltinXmlGrammar();
  if (kind == "python") return BuiltinPythonDslGrammar();
  if (kind == "sql") return BuiltinSqlGrammar();
  XGR_CHECK(argc > 2) << "usage: grammar_inspector <ebnf|regex|schema|json|"
                         "xml|python|sql> [source]";
  const std::string source = argv[2];
  if (kind == "ebnf") return ParseEbnfOrThrow(source);
  if (kind == "regex") return RegexToGrammar(source);
  if (kind == "schema") return JsonSchemaTextToGrammar(source);
  XGR_CHECK(false) << "unknown grammar kind '" << kind << "'";
  XGR_UNREACHABLE();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xgr;  // NOLINT
  try {
    grammar::Grammar g = FromArgs(argc, argv);
    std::printf("=== grammar (normalized) ===\n%s\n", g.ToString().c_str());

    auto pda = pda::CompiledGrammar::Compile(g);
    std::printf("=== compiled automaton ===\n%s\n", pda->StatsString().c_str());

    auto info = std::make_shared<tokenizer::TokenizerInfo>(
        tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));
    auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
    std::printf("=== token mask cache (vocab %d) ===\n%s\n", info->VocabSize(),
                cache->StatsString().c_str());

    if (isatty(0) == 0 || argc > 3) {
      // Probe strings from stdin (non-interactive when piped).
      std::string line;
      while (std::getline(std::cin, line)) {
        matcher::GrammarMatcher m(pda);
        bool prefix_ok = m.AcceptString(line);
        bool complete = prefix_ok && m.CanTerminate();
        std::string forced = prefix_ok ? m.FindJumpForwardString() : "";
        std::printf("%-40s %s%s\n", line.c_str(),
                    complete  ? "match"
                    : prefix_ok ? "prefix..."
                                : "no match",
                    forced.empty() ? "" : ("  (forced next: '" + forced + "')").c_str());
      }
    }
    return 0;
  } catch (const CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
