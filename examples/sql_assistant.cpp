// Text-to-SQL assistant: constrain generation to the builtin SQL grammar
// (the paper's introduction names SQL as a core structured-generation
// target alongside JSON and DSLs).
//
//   $ ./build/examples/sql_assistant
//
// The mock model is asked to translate a request into SQL. Unconstrained it
// drifts into prose ("Sure, here is the query you asked for...") that no
// database will execute; under the SQL grammar every output parses. The
// example also shows jump-forward decoding filling in forced keywords.
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/factory.h"
#include "engine/serving_engine.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "tokenizer/synthetic_vocab.h"

int main() {
  using namespace xgr;  // NOLINT

  auto sql_pda = pda::CompiledGrammar::Compile(grammar::BuiltinSqlGrammar());
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));

  auto executes = [&](const std::string& statement) {
    matcher::GrammarMatcher m(sql_pda);
    return m.AcceptString(statement) && m.CanTerminate();
  };

  // The queries the model intends to produce for three user requests.
  const char* intended[3] = {
      "SELECT name, email FROM users WHERE active = TRUE ORDER BY name ASC",
      "SELECT city, COUNT(*) AS n FROM users GROUP BY city HAVING COUNT(*) > 10",
      "UPDATE orders SET status = 'shipped' WHERE id = 1042",
  };

  engine::MockLlm llm(info, {.derail_probability = 0.12, .seed = 7});
  baselines::DecoderFactory factory(baselines::EngineKind::kXGrammar, info);
  factory.PrepareGrammar(grammar::BuiltinSqlGrammar());

  for (bool constrained : {false, true}) {
    std::printf("=== %s ===\n",
                constrained ? "with XGrammar (SQL grammar)" : "unconstrained");
    int executable = 0;
    for (int i = 0; i < 3; ++i) {
      engine::EngineOptions options;
      options.schedule = constrained ? engine::GrammarSchedule::kOverlap
                                     : engine::GrammarSchedule::kNone;
      options.time_scale = 0.0;
      options.max_new_tokens = 96;
      engine::ServingEngine eng(options, llm);
      engine::EngineRequest request;
      if (constrained) request.decoder = factory.NewDecoder();
      request.target_text = intended[i];
      request.seed = static_cast<std::uint64_t>(i) * 977 + 13;
      auto result = eng.RunBatch({request});
      const std::string& out = result.requests[0].output_text;
      bool ok = executes(out);
      executable += ok ? 1 : 0;
      std::printf("  query %d: %-64s -> %s\n", i, out.substr(0, 64).c_str(),
                  ok ? "executes" : "SYNTAX ERROR");
    }
    std::printf("  executable: %d/3\n\n", executable);
  }

  // Jump-forward: after forced prefixes the grammar dictates whole keywords;
  // the engine can append them without spending decode steps (Appendix B).
  std::printf("=== jump-forward probes ===\n");
  for (const char* prefix : {"DELETE ", "INSERT ", "SELECT * FROM t ORDER "}) {
    matcher::GrammarMatcher m(sql_pda);
    if (!m.AcceptString(prefix)) continue;
    std::printf("  after %-24s -> forced continuation %s\n",
                ("'" + std::string(prefix) + "'").c_str(),
                ("'" + m.FindJumpForwardString() + "'").c_str());
  }
  return 0;
}
