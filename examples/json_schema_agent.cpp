// Function-calling agent scenario: constrain an LLM to a JSON-Schema tool
// signature (the paper's headline application, §4.4).
//
//   $ ./build/examples/json_schema_agent
//
// A mock "weather agent" model is asked to call a tool; without constraints
// it sometimes wraps the call in prose, with XGrammar the output is always a
// schema-conforming JSON object that a dispatcher can parse directly.
#include <cstdio>

#include "baselines/factory.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "tokenizer/synthetic_vocab.h"

int main() {
  using namespace xgr;  // NOLINT

  const char* tool_schema = R"({
    "type": "object",
    "properties": {
      "tool": {"enum": ["get_weather", "get_forecast"]},
      "location": {"type": "string"},
      "unit": {"enum": ["celsius", "fahrenheit"]},
      "days": {"type": "integer"}
    },
    "required": ["tool", "location"],
    "additionalProperties": false
  })";
  json::ParseResult schema = json::Parse(tool_schema);
  if (!schema.ok()) {
    std::printf("schema parse error: %s\n", schema.error.c_str());
    return 1;
  }

  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));

  // The canonical tool call the model intends to make.
  json::Value intended(json::Object{
      {"tool", json::Value("get_weather")},
      {"location", json::Value("Santa Clara")},
      {"unit", json::Value("celsius")},
  });

  // A flaky model: 10% chance per step of drifting into prose.
  engine::MockLlm llm(info, {.derail_probability = 0.10, .seed = 1234});

  baselines::DecoderFactory factory(baselines::EngineKind::kXGrammar, info);
  factory.PrepareSchema(*schema.value);

  for (bool constrained : {false, true}) {
    std::printf("=== %s ===\n", constrained ? "with XGrammar" : "unconstrained");
    int parsed_ok = 0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      engine::EngineOptions options;
      options.schedule = constrained ? engine::GrammarSchedule::kOverlap
                                     : engine::GrammarSchedule::kNone;
      options.time_scale = 0.0;  // no GPU simulation needed here
      options.max_new_tokens = 96;
      engine::ServingEngine eng(options, llm);
      engine::EngineRequest request;
      if (constrained) request.decoder = factory.NewDecoder();
      request.target_text = intended.Dump();
      request.seed = static_cast<std::uint64_t>(attempt) * 101 + 5;
      auto result = eng.RunBatch({request});
      const std::string& out = result.requests[0].output_text;
      json::ParseResult call = json::Parse(out);
      bool ok = call.ok();
      parsed_ok += ok ? 1 : 0;
      std::printf("  attempt %d: %-60s -> %s\n", attempt,
                  out.substr(0, 60).c_str(), ok ? "dispatched" : "PARSE ERROR");
    }
    std::printf("  dispatchable: %d/5\n\n", parsed_ok);
  }
  return 0;
}
