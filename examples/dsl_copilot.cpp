// Embodied-agent / DSL copilot scenario: constrain generation to a Python-like
// control DSL (the paper motivates robotic control and code agents, §1).
//
//   $ ./build/examples/dsl_copilot
//
// Shows CFG capabilities beyond regex: recursive expressions, nested control
// flow. Also demonstrates state branching for tree-of-thought style search:
// the persistent stack lets us fork the matcher cheaply per candidate branch
// (§3.3 "LLM applications that generate in a tree structure").
#include <cstdio>

#include "cache/mask_generator.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/string_utils.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

int main() {
  using namespace xgr;  // NOLINT

  grammar::Grammar dsl = grammar::BuiltinPythonDslGrammar();
  auto pda = pda::CompiledGrammar::Compile(dsl);
  std::printf("Python-DSL PDA: %s\n\n", pda->StatsString().c_str());

  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 5}));
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  cache::MaskGenerator generator(cache);
  tokenizer::TokenTrie trie(*info);

  // A program the copilot has produced so far.
  const std::string prefix = "total = 0\nfor item in rows: total += item\n";
  matcher::GrammarMatcher matcher(pda);
  if (!matcher.AcceptString(prefix)) {
    std::printf("prefix rejected?!\n");
    return 1;
  }
  std::printf("Accepted prefix:\n%s\n", prefix.c_str());

  // Tree-of-thought style branching: try three candidate continuations from
  // the same state. Each probe is cheap: the persistent stack shares all
  // frames; rollback restores the branch point in O(1).
  const char* candidates[] = {
      "if total > 100: big = True\n",
      "while total < 5: total = total + 1\n",
      "return total * 0.5\n",
  };
  std::int32_t branch_point = matcher.NumConsumedBytes();
  for (const char* candidate : candidates) {
    bool ok = matcher.AcceptString(candidate);
    std::printf("  branch %-42s -> %s (stacks=%zu, pool=%zu frames)\n",
                EscapeBytes(candidate).c_str(),
                ok ? "valid" : "invalid",
                matcher.CurrentStacks().size(), matcher.Pool().Size());
    matcher.RollbackToDepth(branch_point);
  }

  // And a mask at the branch point: what token classes may come next?
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  generator.FillNextTokenBitmask(&matcher, &mask);
  std::printf("\nAt the branch point the mask allows %zu of %d tokens.\n",
              mask.Count(), info->VocabSize());
  std::printf("A few allowed continuations: ");
  int shown = 0;
  for (std::int64_t t = mask.FindNext(0); t >= 0 && shown < 8;
       t = mask.FindNext(static_cast<std::size_t>(t) + 1)) {
    const std::string& bytes = info->TokenBytes(static_cast<std::int32_t>(t));
    if (bytes.size() >= 3) {
      std::printf("'%s' ", EscapeBytes(bytes).c_str());
      ++shown;
    }
  }
  std::printf("\n");
  return 0;
}
