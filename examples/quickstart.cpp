// Quickstart: compile a grammar, build the token mask cache, and constrain a
// generation step by step.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface:
//   1. parse an EBNF grammar (or convert a JSON Schema),
//   2. compile it to a byte-level pushdown automaton,
//   3. build the adaptive token mask cache for a tokenizer,
//   4. run a GrammarMatcher + MaskGenerator loop: inspect masks, feed tokens,
//      roll back, and probe jump-forward strings.
#include <cstdio>

#include "cache/mask_generator.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/string_utils.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

int main() {
  using namespace xgr;  // NOLINT

  // 1. A grammar: a tiny command language.
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"EBNF(
    root ::= command (" " command)*
    command ::= "move(" direction "," steps ")" | "turn(" direction ")" | "stop()"
    direction ::= "north" | "south" | "east" | "west"
    steps ::= [1-9] [0-9]*
  )EBNF");
  std::printf("Grammar (%d rules):\n%s\n", g.NumRules(), g.ToString().c_str());

  // 2. Compile: normalization, rule inlining, node merging, context expansion.
  auto pda = pda::CompiledGrammar::Compile(g);
  std::printf("Compiled PDA: %s\n\n", pda->StatsString().c_str());

  // 3. A tokenizer (here: a synthetic 16k-entry byte-level BPE-like vocab)
  //    and the adaptive token mask cache (parallel preprocessing).
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 1}));
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  std::printf("Mask cache: %s\n\n", cache->StatsString().c_str());

  // 4. Constrained decoding loop.
  matcher::GrammarMatcher matcher(pda);
  cache::MaskGenerator generator(cache);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));

  tokenizer::TokenTrie trie(*info);
  const std::string text = "move(north,42) turn(east) stop()";
  std::printf("Feeding: %s\n", text.c_str());
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, text)) {
    generator.FillNextTokenBitmask(&matcher, &mask);
    bool allowed = mask.Test(static_cast<std::size_t>(token));
    std::printf("  mask allows %6zu tokens | next token %5d '%s' %s\n",
                mask.Count(), token, EscapeBytes(info->TokenBytes(token)).c_str(),
                allowed ? "(allowed)" : "(REJECTED?)");
    if (!matcher.AcceptString(info->TokenBytes(token))) {
      std::printf("  token rejected by matcher — stopping\n");
      return 1;
    }
    matcher.PushTokenCheckpoint();
  }
  std::printf("Grammar can terminate here: %s\n",
              matcher.CanTerminate() ? "yes (EOS legal)" : "no");

  // Rollback: undo the last 2 tokens (persistent stack, O(1) restore).
  matcher.RollbackTokens(2);
  std::printf("After rolling back 2 tokens, jump-forward probe: \"%s\"\n",
              EscapeBytes(matcher.FindJumpForwardString()).c_str());
  return 0;
}
