// Grammar-constrained speculative decoding (§3.3's branching application,
// SpecInfer-style) on the transactional multi-token protocol: a cheap draft
// model proposes a k-token chunk, one VerifyDraft call walks the whole chunk
// against the grammar in a single transaction (no per-token mask fills, no
// forks), and CommitDraft keeps exactly the prefix the target model also
// agrees with — the rest rolls back through the O(1) checkpoint restore of
// the persistent execution stack.
//
//   $ ./build/examples/speculative_decoding
//
// Compare with the pre-protocol version of this example, which forked the
// trunk decoder per branch and re-verified token by token with one
// FillNextTokenBitmask per proposal: the verify/commit API is the same
// sequential semantics, one call per round instead of k.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

int main() {
  using namespace xgr;  // NOLINT

  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  tokenizer::TokenTrie trie(*info);

  // The target model's intended output: a JSON document. Tokenized once, the
  // "target model" deterministically emits target_tokens in order.
  const std::string document = datasets::GenerateJsonValue(42, 4).Dump();
  std::vector<std::int32_t> target_tokens =
      tokenizer::GreedyTokenize(trie, document);
  std::printf("target document (%zu tokens): %s\n\n", target_tokens.size(),
              document.substr(0, 72).c_str());

  constexpr int kChunk = 6;            // draft tokens per round
  constexpr double kDraftNoise = 0.2;  // per-token draft error rate
  Rng rng(7);

  baselines::XGrammarDecoder trunk(cache);
  std::vector<std::int32_t> draft(kChunk);

  std::size_t position = 0;  // tokens committed so far
  std::int64_t drafted = 0;
  std::int64_t accepted = 0;
  int rounds = 0;

  while (position < target_tokens.size()) {
    ++rounds;
    // The draft model proposes the next chunk, with noise. `agree` is the
    // prefix the target model would also emit — what a real engine learns
    // from the verify forward pass.
    std::int32_t chunk = 0;
    std::int32_t agree = 0;
    bool agreeing = true;
    while (chunk < kChunk &&
           position + static_cast<std::size_t>(chunk) < target_tokens.size()) {
      std::int32_t truth = target_tokens[position + static_cast<std::size_t>(chunk)];
      std::int32_t proposal = truth;
      if (rng.NextBool(kDraftNoise)) {
        proposal = static_cast<std::int32_t>(
            rng.NextBounded(static_cast<std::uint64_t>(info->VocabSize())));
      }
      draft[static_cast<std::size_t>(chunk++)] = proposal;
      ++drafted;
      if (agreeing && proposal == truth) {
        ++agree;
      } else {
        agreeing = false;
      }
    }

    // One transaction verifies the whole chunk against the grammar — the
    // trunk advances to the grammar-accepted prefix with the transaction
    // open. CommitDraft keeps the grammar- AND model-agreed prefix; a
    // flipped token that happened to be grammar-legal rolls back here.
    baselines::DraftVerifyResult verify;
    trunk.VerifyDraft(draft.data(), chunk, &verify, nullptr);
    std::int32_t keep = std::min(verify.accepted, agree);
    if (!trunk.CommitDraft(keep)) {
      std::printf("FATAL: partial commit failed\n");
      return 1;
    }
    accepted += keep;
    position += static_cast<std::size_t>(keep);

    // Plus the one "free" token a real speculative verifier gets from the
    // target pass (the correction token at the divergence point).
    if (keep < chunk && position < target_tokens.size()) {
      if (!trunk.AcceptToken(target_tokens[position])) {
        std::printf("FATAL: trunk rejected a target token\n");
        return 1;
      }
      ++position;
    }
  }

  bool valid = trunk.CanTerminate();
  std::printf("rounds            : %d\n", rounds);
  std::printf("tokens drafted    : %lld\n", static_cast<long long>(drafted));
  std::printf("tokens committed  : %lld\n", static_cast<long long>(accepted));
  std::printf("acceptance rate   : %.1f%%\n",
              100.0 * static_cast<double>(accepted) / static_cast<double>(drafted));
  std::printf("steps saved       : %zu of %zu (%.1f%%)\n",
              target_tokens.size() - static_cast<std::size_t>(rounds),
              target_tokens.size(),
              100.0 *
                  static_cast<double>(target_tokens.size() -
                                      static_cast<std::size_t>(rounds)) /
                  static_cast<double>(target_tokens.size()));
  std::printf("grammar-valid     : %s\n", valid ? "yes" : "NO");
  return valid ? 0 : 1;
}
