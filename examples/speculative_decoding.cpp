// Grammar-constrained speculative decoding (§3.3's branching application,
// SpecInfer-style): a cheap draft model proposes token chunks, the target
// model verifies them, and the grammar state follows every speculative
// branch through O(1) forks of the persistent execution stack instead of
// re-parsing the context per branch.
//
//   $ ./build/examples/speculative_decoding
//
// Per round: two draft branches are forked from the trunk decoder; each
// proposes a chunk (the draft model is noisy, so proposals contain wrong
// tokens); verification walks each branch, accepting tokens while they agree
// with the target model AND satisfy the grammar mask. The better branch's
// accepted prefix is committed to the trunk; the forks are dropped. Rollback
// never touches the trunk — branches are independent by construction.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

int main() {
  using namespace xgr;  // NOLINT

  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 3}));
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  tokenizer::TokenTrie trie(*info);

  // The target model's intended output: a JSON document. Tokenized once, the
  // "target model" deterministically emits target_tokens in order.
  const std::string document = datasets::GenerateJsonValue(42, 4).Dump();
  std::vector<std::int32_t> target_tokens =
      tokenizer::GreedyTokenize(trie, document);
  std::printf("target document (%zu tokens): %s\n\n", target_tokens.size(),
              document.substr(0, 72).c_str());

  constexpr int kChunk = 6;          // draft tokens per round
  constexpr double kDraftNoise = 0.2;  // per-token draft error rate
  Rng rng(7);

  baselines::XGrammarDecoder trunk(cache);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));

  std::size_t position = 0;  // tokens committed so far
  std::int64_t drafted = 0;
  std::int64_t accepted = 0;
  int rounds = 0;

  while (position < target_tokens.size()) {
    ++rounds;
    // Draft two speculative branches from the trunk state. Each proposes the
    // next kChunk tokens, with noise.
    std::size_t best_len = 0;
    for (int branch = 0; branch < 2; ++branch) {
      auto fork = trunk.Fork();
      std::size_t len = 0;
      for (int i = 0; i < kChunk && position + len < target_tokens.size(); ++i) {
        std::int32_t true_token = target_tokens[position + len];
        std::int32_t proposal = true_token;
        if (rng.NextBool(kDraftNoise)) {
          proposal = static_cast<std::int32_t>(
              rng.NextBounded(static_cast<std::uint64_t>(info->VocabSize())));
        }
        ++drafted;
        // Verification: the proposal must match the target model's choice and
        // pass the grammar mask maintained by this branch's decoder.
        if (proposal != true_token) break;
        fork->FillNextTokenBitmask(&mask);
        if (!mask.Test(static_cast<std::size_t>(proposal))) break;
        if (!fork->AcceptToken(proposal)) break;
        ++len;
      }
      best_len = std::max(best_len, len);
    }
    // Commit the winning branch's accepted prefix to the trunk (plus the one
    // "free" token a real speculative verifier gets from the target pass).
    std::size_t commit = std::max<std::size_t>(best_len, 1);
    commit = std::min(commit, target_tokens.size() - position);
    for (std::size_t i = 0; i < commit; ++i) {
      if (!trunk.AcceptToken(target_tokens[position + i])) {
        std::printf("FATAL: trunk rejected a target token\n");
        return 1;
      }
      ++accepted;
    }
    position += commit;
  }

  bool valid = trunk.CanTerminate();
  std::printf("rounds            : %d\n", rounds);
  std::printf("tokens drafted    : %lld\n", static_cast<long long>(drafted));
  std::printf("tokens committed  : %lld\n", static_cast<long long>(accepted));
  std::printf("acceptance rate   : %.1f%%\n",
              100.0 * static_cast<double>(accepted) / static_cast<double>(drafted));
  std::printf("steps saved       : %zu of %zu (%.1f%%)\n",
              target_tokens.size() - static_cast<std::size_t>(rounds),
              target_tokens.size(),
              100.0 *
                  static_cast<double>(target_tokens.size() -
                                      static_cast<std::size_t>(rounds)) /
                  static_cast<double>(target_tokens.size()));
  std::printf("grammar-valid     : %s\n", valid ? "yes" : "NO");
  return valid ? 0 : 1;
}
